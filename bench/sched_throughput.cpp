// SCHED-THROUGHPUT — race throughput and latency of the kThread backend
// (one OS thread per alternative) vs the kPool backend (alternatives as
// tasks on the shared work-stealing scheduler), as the number of
// *concurrent* races grows.
//
// The workload is the scheduler's design case: each race has one fast
// alternative marked likely to win (priority 1.0) and k-1 slow siblings
// (priority 0.0) that burn CPU until cancelled. The thread backend pays a
// thread spawn per alternative and lets every loser run until the winner's
// cancellation lands; the pool runs the promising alternative first and
// revokes the still-queued siblings at sync time — their bodies never run
// and their worlds copy zero pages.
//
// Sweeps concurrency (driver threads issuing races back-to-back) over
// {minconc … maxconc} ×4 and reports races/sec plus per-race latency
// percentiles for both backends. With --check the binary exits non-zero
// unless (a) pool throughput is at least `factor`× thread throughput at 64
// concurrent races (the headline scheduling claim) and (b) a traced pool
// run shows revoked siblings with *zero* copied pages (the pruning
// guarantee, via SpecProfile).
//
//   $ sched_throughput [--minconc=1] [--maxconc=256] [--races=1024]
//                      [--alts=3] [--work_us=20] [--factor=2] [--check]
//                      [--json=BENCH_sched_throughput.json]
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "trace/spec_profile.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace mw;

namespace {

// One k-way race: alternative 0 computes briefly and syncs; the others
// grind compute/checkpoint slices until cancellation unwinds them (with a
// generous self-abort bound so a lost cancellation cannot wedge the bench).
std::vector<Alternative> make_race(std::size_t alts, VDuration work_us) {
  std::vector<Alternative> race;
  race.reserve(alts);
  race.push_back(Alternative{
      "fast", nullptr,
      [work_us](AltContext& ctx) {
        ctx.compute(work_us);
        const std::uint64_t v = ctx.index();
        ctx.space().store(0, v);
        std::uint8_t buf[sizeof(v)];
        std::memcpy(buf, &v, sizeof(v));
        ctx.set_result(std::span<const std::uint8_t>(buf, sizeof(v)));
      },
      nullptr, /*priority=*/1.0});
  for (std::size_t i = 1; i < alts; ++i) {
    race.push_back(Alternative{
        "slow" + std::to_string(i), nullptr,
        [work_us](AltContext& ctx) {
          for (int spin = 0; spin < 1000; ++spin) {
            ctx.compute(work_us);
            ctx.checkpoint();  // cancellation lands here once a sibling wins
          }
          ctx.fail("never won");
        },
        nullptr, /*priority=*/0.0});
  }
  return race;
}

struct Row {
  std::size_t conc = 0;
  double races_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
};

// `conc` driver threads issue `total / conc` races each, back-to-back,
// against one shared Runtime; wall clock over the whole batch gives the
// throughput, per-race stopwatches the latency distribution.
Row run_level(AltBackend backend, std::size_t conc, std::size_t total,
              std::size_t alts, VDuration work_us) {
  RuntimeConfig cfg;
  cfg.backend = backend;
  cfg.page_size = 256;
  cfg.num_pages = 16;
  Runtime rt(cfg);
  if (backend == AltBackend::kPool) rt.scheduler();  // exclude worker spawn

  const std::size_t per_driver = std::max<std::size_t>(1, total / conc);
  std::vector<std::vector<double>> lat(conc);
  std::vector<std::thread> drivers;
  drivers.reserve(conc);
  Stopwatch wall;
  for (std::size_t d = 0; d < conc; ++d) {
    drivers.emplace_back([&, d] {
      const std::vector<Alternative> race = make_race(alts, work_us);
      World parent = rt.make_root("drv" + std::to_string(d));
      AltOptions opts;
      opts.reap_deadline = 2'000'000;  // 2 s: stragglers can't stall a level
      lat[d].reserve(per_driver);
      for (std::size_t r = 0; r < per_driver; ++r) {
        Stopwatch sw;
        const AltOutcome out = run_alternatives(rt, parent, race, opts);
        lat[d].push_back(sw.elapsed_ms() * 1000.0);
        (void)out;
      }
    });
  }
  for (auto& t : drivers) t.join();
  const double secs = wall.elapsed_ms() / 1000.0;

  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  const Summary s = summarize(all);
  Row row;
  row.conc = conc;
  row.races_per_sec = static_cast<double>(all.size()) / secs;
  row.p50_us = s.median;
  row.p99_us = s.p99;
  return row;
}

// The pruning guarantee, checked on a traced pool run: some siblings were
// revoked while still queued, and those siblings copied zero COW pages.
struct RevokeCheck {
  std::size_t revoked = 0;
  std::uint64_t revoked_pages = 0;
};

RevokeCheck traced_pool_run(std::size_t races, std::size_t alts,
                            VDuration work_us) {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kPool;
  cfg.page_size = 256;
  cfg.num_pages = 16;
  Runtime rt(cfg);
  trace::reset();
  trace::Scope traced(true);
  const std::vector<Alternative> race = make_race(alts, work_us);
  World parent = rt.make_root("traced");
  for (std::size_t r = 0; r < races; ++r)
    (void)run_alternatives(rt, parent, race, {});
  const trace::SpecProfile prof =
      trace::build_spec_profile(trace::collect(), 0);
  return RevokeCheck{prof.worlds_revoked(), prof.revoked_pages()};
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t minconc =
      static_cast<std::size_t>(cli.get_int("minconc", 1));
  const std::size_t maxconc =
      static_cast<std::size_t>(cli.get_int("maxconc", 256));
  const std::size_t races = static_cast<std::size_t>(cli.get_int("races", 1024));
  const std::size_t alts = static_cast<std::size_t>(cli.get_int("alts", 3));
  const VDuration work_us = cli.get_int("work_us", 20);
  const double factor = cli.get_double("factor", 2.0);
  const bool check = cli.has("check");
  const std::string json_path = cli.get("json", "");

  std::cout << "Concurrent-race throughput: kThread (thread per alternative)"
               " vs kPool (work-stealing tasks)\n"
            << alts << "-way races, fast alternative " << work_us
            << " us, " << races << " races per level\n";
  TablePrinter table({"conc", "thr_races_s", "thr_p99_us", "pool_races_s",
                      "pool_p99_us", "speedup"});

  std::vector<Row> thr_rows, pool_rows;
  for (std::size_t conc = minconc; conc <= maxconc; conc *= 4) {
    const Row t = run_level(AltBackend::kThread, conc, races, alts, work_us);
    const Row p = run_level(AltBackend::kPool, conc, races, alts, work_us);
    thr_rows.push_back(t);
    pool_rows.push_back(p);
    table.add_row({TablePrinter::num(static_cast<std::int64_t>(conc)),
                   TablePrinter::num(t.races_per_sec, 0),
                   TablePrinter::num(t.p99_us, 0),
                   TablePrinter::num(p.races_per_sec, 0),
                   TablePrinter::num(p.p99_us, 0),
                   TablePrinter::num(p.races_per_sec / t.races_per_sec, 2)});
  }
  table.print(std::cout);
  std::cout << "(shape to verify: the pool's advantage grows with "
               "concurrency — it never spawns a thread per alternative and "
               "revokes queued losers for free, while the thread backend "
               "pays spawn + loser burn on every race)\n";

  const RevokeCheck rc = traced_pool_run(/*races=*/200, alts, work_us);
  std::cout << "\ntraced pool run: " << rc.revoked
            << " siblings revoked before running, " << rc.revoked_pages
            << " pages copied by revoked siblings\n";

  // The check level: 64 concurrent races if swept, else the highest level.
  double speedup = 0.0;
  std::size_t check_conc = 0;
  for (std::size_t i = 0; i < pool_rows.size(); ++i) {
    check_conc = pool_rows[i].conc;
    speedup = pool_rows[i].races_per_sec / thr_rows[i].races_per_sec;
    if (check_conc == 64) break;
  }
  bool pass = true;
  if (check) {
    const bool speed_ok = speedup >= factor;
    const bool revoke_ok = rc.revoked > 0 && rc.revoked_pages == 0;
    pass = speed_ok && revoke_ok;
    std::cout << "check: pool/thread speedup at conc=" << check_conc << " is "
              << speedup << " (need >= " << factor << "): "
              << (speed_ok ? "PASS" : "FAIL") << "\n"
              << "check: revoked siblings " << rc.revoked
              << " > 0 with 0 copied pages (got " << rc.revoked_pages
              << "): " << (revoke_ok ? "PASS" : "FAIL") << "\n";
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"sched_throughput\",\n"
        << "  \"alts\": " << alts << ",\n  \"work_us\": " << work_us
        << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < thr_rows.size(); ++i) {
      out << "    {\"conc\": " << thr_rows[i].conc
          << ", \"thread_races_per_sec\": " << thr_rows[i].races_per_sec
          << ", \"thread_p50_us\": " << thr_rows[i].p50_us
          << ", \"thread_p99_us\": " << thr_rows[i].p99_us
          << ", \"pool_races_per_sec\": " << pool_rows[i].races_per_sec
          << ", \"pool_p50_us\": " << pool_rows[i].p50_us
          << ", \"pool_p99_us\": " << pool_rows[i].p99_us << "}"
          << (i + 1 < thr_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"check\": {\"enabled\": " << (check ? "true" : "false")
        << ", \"conc\": " << check_conc << ", \"speedup\": " << speedup
        << ", \"factor\": " << factor
        << ", \"revoked\": " << rc.revoked
        << ", \"revoked_pages\": " << rc.revoked_pages
        << ", \"pass\": " << (pass ? "true" : "false") << "}\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return pass ? 0 : 1;
}
