// ABL-COW — §2.3's design claim: copy-on-write page-map inheritance
// "maximizes sharing" and beats eager copying. This ablation forks worlds
// of growing resident size under varying write fractions and measures:
// wall time of fork+writes with lazy COW vs an eager deep copy, and the
// fraction of pages whose copy the COW scheme avoided entirely.
//
//   $ ablation_cow_vs_eager [--trials=5]
#include <iostream>

#include "pagestore/page_table.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace mw;

namespace {

PageTable make_parent(std::size_t pages) {
  PageTable t(4096, pages);
  std::vector<std::uint8_t> payload(64, 0xAB);
  for (std::size_t p = 0; p < pages; ++p) t.write(p * 4096, payload);
  return t;
}

/// Fork + write `k` pages, COW style.
double cow_us(const PageTable& parent, std::size_t k) {
  std::vector<std::uint8_t> one{1};
  Stopwatch sw;
  PageTable child = parent.fork();
  for (std::size_t p = 0; p < k; ++p) child.write(p * 4096, one);
  return sw.elapsed_us();
}

/// Eager: deep-copy every resident page at fork time, then write.
double eager_us(const PageTable& parent, std::size_t k) {
  std::vector<std::uint8_t> one{1};
  Stopwatch sw;
  PageTable child = parent.fork();
  // Touch every page to force the copy immediately (what a non-COW fork
  // does in one memcpy storm).
  for (std::size_t p = 0; p < parent.num_pages(); ++p)
    child.write_page(p);
  for (std::size_t p = 0; p < k; ++p) child.write(p * 4096, one);
  return sw.elapsed_us();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 5));

  std::cout << "COW vs eager world forks (4 KiB pages, medians over "
            << trials << " trials)\n";
  TablePrinter table({"pages", "write_frac", "cow_us", "eager_us",
                      "speedup", "copies_avoided"});
  for (std::size_t pages : {64u, 256u, 1024u}) {
    PageTable parent = make_parent(pages);
    for (double frac : {0.0, 0.2, 0.5, 1.0}) {
      const auto k = static_cast<std::size_t>(frac * static_cast<double>(pages));
      std::vector<double> cow, eager;
      for (int t = 0; t < trials; ++t) {
        cow.push_back(cow_us(parent, k));
        eager.push_back(eager_us(parent, k));
      }
      const double c = summarize(cow).median;
      const double e = summarize(eager).median;
      table.add_row(
          {TablePrinter::num(static_cast<std::int64_t>(pages)),
           TablePrinter::num(frac, 1), TablePrinter::num(c, 1),
           TablePrinter::num(e, 1), TablePrinter::num(c > 0 ? e / c : 0.0, 1),
           TablePrinter::num(static_cast<std::int64_t>(pages - k))});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape to verify: COW wins by about 1/write-fraction; at "
               "write fraction 1.0 the two converge (everything is copied "
               "anyway) — which is why the paper's 0.2-0.5 observed "
               "fractions make COW the right default.\n";
  return 0;
}
