// The paper's §4.3 application: a parallel Jenkins–Traub rootfinder where
// each alternative tries a different fixed-shift starting angle; the first
// to find all roots of the polynomial wins.
//
//   $ parallel_rootfinder [--degree=24] [--angles=4] [--procs=2] [--seed=7]
#include <cstdio>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "core/trace.hpp"
#include "num/jenkins_traub.hpp"
#include "num/workload.hpp"
#include "util/cli.hpp"

using namespace mw;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  WorkloadConfig wcfg;
  wcfg.degree = static_cast<int>(cli.get_int("degree", 24));
  const int angles = static_cast<int>(cli.get_int("angles", 4));
  const auto procs = static_cast<std::size_t>(cli.get_int("procs", 2));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 7)));

  PolyWorkload w = make_clustered_poly(rng, wcfg);
  std::printf("polynomial: degree %d with %d root clusters\n", wcfg.degree,
              wcfg.clusters);

  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = procs;
  cfg.cost = CostModel::calibrated_hp();
  Runtime rt(cfg);
  World root = rt.make_root("rootfinder");

  // One alternative per starting angle. Each accounts one tick of virtual
  // work per Jenkins–Traub iteration.
  std::vector<Alternative> alts;
  for (int k = 0; k < angles; ++k) {
    const double angle = 49.0 + 360.0 * k / angles;
    alts.push_back(Alternative{
        "angle " + std::to_string(static_cast<int>(angle)) + "\xc2\xb0",
        nullptr,
        [&, angle](AltContext& ctx) {
          JtConfig jt;
          jt.start_angle_deg = angle;
          RootResult r = jenkins_traub(w.poly, jt);
          ctx.work(static_cast<VDuration>(r.iterations) * vt_ms(5));
          if (!r.converged) ctx.fail(r.note);
          std::string text;
          for (const Cx& z : r.roots) {
            char buf[64];
            std::snprintf(buf, sizeof buf, "%.6f%+.6fi\n", z.real(), z.imag());
            text += buf;
          }
          ctx.set_result_string(text);
        },
        nullptr});
  }

  AltOutcome out = run_alternatives(rt, root, alts);
  if (out.failed) {
    std::printf("every angle failed to converge\n");
    return 1;
  }
  std::printf("winner: %s, virtual elapsed %.3f s on %zu processors\n",
              out.winner_name.c_str(), vt_to_sec(out.elapsed), procs);
  std::printf("roots:\n%s",
              std::string(out.result.begin(), out.result.end()).c_str());
  std::printf("alternatives:\n");
  for (const auto& a : out.alts) {
    std::printf("  %-12s %s  start %.3fs  finish %.3fs\n", a.name.c_str(),
                a.success ? "WON " : (a.ran ? "ran " : "cut "),
                vt_to_sec(a.start), vt_to_sec(a.finish));
  }
  std::printf("schedule ('#' running, 'W' won, 'x' killed, '.' queued):\n%s",
              to_text_timeline(out).c_str());
  return 0;
}
