// The §2.2 language preprocessor as a command-line tool: reads C++ with
// ALT_BLOCK regions, writes translated C++ to stdout.
//
//   $ altc_tool input.cpp.in [--rt=rt] [--world=world] > output.cpp
//   $ echo '...' | altc_tool -
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "altc/altc.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  mw::Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::fprintf(stderr,
                 "usage: altc_tool <file|-> [--rt=expr] [--world=expr]\n");
    return 2;
  }
  std::string source;
  const std::string& path = cli.positional()[0];
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "altc_tool: cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }

  auto r = mw::altc::translate(source, cli.get("rt", "rt"),
                               cli.get("world", "world"));
  if (!r.ok) {
    std::fprintf(stderr, "altc_tool: %s\n", r.error.c_str());
    return 1;
  }
  std::fputs(r.output.c_str(), stdout);
  std::fprintf(stderr, "altc_tool: translated %d block(s)\n",
               r.blocks_translated);
  return 0;
}
