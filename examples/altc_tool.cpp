// The §2.2 language preprocessor as a command-line tool: reads C++ with
// ALT_BLOCK regions, writes translated C++ to stdout.
//
//   $ altc_tool input.cpp.in [--rt=rt] [--world=world] > output.cpp
//   $ echo '...' | altc_tool -
//
// --demo-trace skips translation and instead runs the canned race that a
// translated ALT_BLOCK turns into, printing the SpecProfile speculation
// summary (and a Chrome-trace file with --trace=FILE) — a way to see what
// the generated code does at runtime without compiling anything.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "altc/altc.hpp"
#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "trace/trace_cli.hpp"
#include "util/cli.hpp"

namespace {

// The race every ALT_BLOCK compiles down to: three alternatives with
// different costs, first one to sync wins, the rest are eliminated.
int run_demo_race(mw::Cli& cli) {
  using namespace mw;
  trace::TraceSession trace_session(cli);
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = 3;
  cfg.cost = CostModel::free();
  cfg.page_size = 64;
  cfg.num_pages = 32;
  Runtime rt(cfg);
  World root = rt.make_root("altc_demo");

  std::vector<Alternative> alts;
  const VDuration costs[] = {vt_ms(30), vt_ms(10), vt_ms(20)};
  for (int i = 0; i < 3; ++i) {
    const VDuration cost = costs[i];
    alts.push_back(Alternative{"alt" + std::to_string(i + 1), nullptr,
                               [cost](AltContext& ctx) {
                                 ctx.space().store<int>(0, 1);
                                 ctx.work(cost);
                               },
                               nullptr});
  }
  const AltOutcome out = run_alternatives(rt, root, alts);
  std::printf("demo race: winner %s in %.1f ms\n",
              out.winner_name.c_str(), vt_to_ms(out.elapsed));
  trace_session.finish(std::cout);
  return out.failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  mw::Cli cli(argc, argv);
  if (cli.has("demo-trace")) return run_demo_race(cli);
  if (cli.positional().empty()) {
    std::fprintf(stderr,
                 "usage: altc_tool <file|-> [--rt=expr] [--world=expr]\n"
                 "       altc_tool --demo-trace [--trace=FILE] [--profile]\n");
    return 2;
  }
  std::string source;
  const std::string& path = cli.positional()[0];
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "altc_tool: cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }

  auto r = mw::altc::translate(source, cli.get("rt", "rt"),
                               cli.get("world", "world"));
  if (!r.ok) {
    std::fprintf(stderr, "altc_tool: %s\n", r.error.c_str());
    return 1;
  }
  std::fputs(r.output.c_str(), stdout);
  std::fprintf(stderr, "altc_tool: translated %d block(s)\n",
               r.blocks_translated);
  return 0;
}
