// Replication × speculation (§5): a "service call" with heavy-tailed
// latency, hedged by first-wins replicas, plus a majority-voted variant
// that survives a value-corrupting replica. The races run on the real
// work-stealing SpecScheduler (AltBackend::kPool) — the same engine the
// hedged service dispatches through — so the run also reports the
// scheduler's submit/steal/revoke traffic.
//
//   $ hedged_service [--replicas=4] [--workers=2] [--trace=trace.json]
//                    [--profile]
//
// --trace writes the world lineage as Chrome-trace JSON (open the file in
// chrome://tracing or ui.perfetto.dev: each race is a process row, each
// replica a world span, with flow arrows from spawn to the winning
// commit); --profile prints the SpecProfile speculation accounting.
#include <cstdio>
#include <iostream>

#include "core/replicate.hpp"
#include "core/runtime_auditor.hpp"
#include "trace/trace_cli.hpp"
#include "util/cli.hpp"

using namespace mw;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int k = static_cast<int>(cli.get_int("replicas", 4));
  trace::TraceSession trace_session(cli);

  RuntimeConfig cfg;
  cfg.backend = AltBackend::kPool;
  cfg.pool.workers = static_cast<std::size_t>(cli.get_int("workers", 2));
  cfg.cost = CostModel::free();
  cfg.page_size = 64;
  cfg.num_pages = 32;
  cfg.seed = 42;
  Runtime rt(cfg);

  // --- First-wins: hedge the latency tail -----------------------------
  World root = rt.make_root();
  auto hedged = replicate<int>(
      rt, root,
      [](AltContext& ctx, int replica) {
        // Exponential service time, mean 20 ms: sometimes fast,
        // occasionally terrible.
        const double ms = ctx.rng().next_exponential(20.0);
        ctx.work(vt_us(static_cast<std::int64_t>(ms * 1000)));
        ctx.space().store<int>(0, 42);
        std::printf("  replica %d would take %.1f ms\n", replica, ms);
        return 42;
      },
      k);
  if (hedged.value) {
    std::printf("first-wins over %d replicas answered %d in %.1f ms\n\n", k,
                *hedged.value, vt_to_ms(hedged.outcome.elapsed));
  }

  // --- Majority: mask a corrupting replica -----------------------------
  World root2 = rt.make_root();
  ReplicateOptions opts;
  opts.mode = ReplicaMode::kMajority;
  auto voted = replicate<int>(
      rt, root2,
      [](AltContext& ctx, int replica) {
        ctx.work(vt_ms(5));
        const int v = (replica == 2) ? 13 : 42;  // replica 2 is corrupt
        std::printf("  replica %d votes %d\n", replica, v);
        return v;
      },
      3, opts);
  if (voted.value) {
    std::printf("majority of 3 (with one corrupt replica): %d "
                "(%d/%d agreed)\n",
                *voted.value, voted.agreeing, voted.completed);
  }

  // What the upgrade to kPool buys: real scheduler traffic to inspect.
  const SchedStats sched = rt.scheduler().stats();
  std::printf("\npool scheduler (%zu workers): %llu submitted, "
              "%llu executed, %llu stolen, %llu revoked, %llu deferred\n",
              cfg.pool.workers,
              static_cast<unsigned long long>(sched.submitted),
              static_cast<unsigned long long>(sched.executed),
              static_cast<unsigned long long>(sched.stolen),
              static_cast<unsigned long long>(sched.revoked),
              static_cast<unsigned long long>(sched.admission_deferred));

  if (trace_session.active()) {
    // Validate the trace against the process table before exporting: the
    // auditor replays the traced spawns/fates and insists the table agrees.
    trace::set_enabled(false);
    RuntimeAuditor auditor;
    auditor.add_world(root);
    auditor.add_world(root2);
    const AuditReport audit =
        auditor.run(rt.processes(), trace::collect(), trace::dropped());
    std::printf("%s\n", audit.to_string().c_str());
    trace_session.finish(std::cout);
    if (!audit.clean()) return 1;
  }
  return 0;
}
