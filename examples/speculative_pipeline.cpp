// The full Multiple Worlds machinery end to end (§2.4.2, Figure 2): two
// speculative alternatives message a downstream logger process while their
// race is undecided. The logger splits into world copies, buffers its
// teletype output, and everything resolves when one alternative
// synchronizes — only the winner's output ever reaches the screen.
//
//   $ speculative_pipeline
#include <cstdio>

#include "io/spec_console.hpp"
#include "worlds/spec_runtime.hpp"

using namespace mw;

int main() {
  SpecRuntime rt;
  Teletype tty;
  SpeculativeConsole console(rt.processes(), tty);

  // The logger: an ordinary process that prints whatever it is told. Its
  // output goes through the speculative console, so a message from an
  // undecided world is buffered, not printed.
  LogicalId logger = rt.spawn_root(
      "logger", [&](ProcCtx& ctx, const Message& m) {
        console.write(ctx.pid(), ctx.predicates(), "log: " + m.text());
      });

  // When a logger copy's assumptions all come true, its buffered output
  // becomes observable.
  rt.on_copy_certain = [&](Pid pid) { console.flush(pid); };

  LogicalId parent = rt.spawn_root("coordinator");
  std::printf("spawning two alternatives; both report progress to the "
              "logger while speculative...\n");
  rt.spawn_alternatives(
      parent,
      {AltSpec{"route-a",
               [&](ProcCtx& ctx) {
                 ctx.send_text(logger, "route A: starting");
                 // Route A takes 8 ms of simulated work, then succeeds.
                 ctx.after(vt_ms(8), [&, logger](ProcCtx& c) {
                   c.send_text(logger, "route A: solved it");
                   c.after(vt_ms(1), [](ProcCtx& c2) { c2.try_sync(); });
                 });
               },
               nullptr},
       AltSpec{"route-b",
               [&](ProcCtx& ctx) {
                 ctx.send_text(logger, "route B: starting");
                 // Route B would need 50 ms; it loses and is eliminated.
                 ctx.after(vt_ms(50), [&, logger](ProcCtx& c) {
                   c.send_text(logger, "route B: solved it");
                   c.after(vt_ms(1), [](ProcCtx& c2) { c2.try_sync(); });
                 });
               },
               nullptr}});

  rt.run();

  std::printf("\nsimulation stats:\n");
  const auto& s = rt.stats();
  std::printf("  messages sent %llu, accepted %llu, ignored %llu, "
              "pruned %llu\n",
              static_cast<unsigned long long>(s.sent),
              static_cast<unsigned long long>(s.accepted),
              static_cast<unsigned long long>(s.ignored),
              static_cast<unsigned long long>(s.pruned));
  std::printf("  logger splits: %llu, world copies eliminated: %llu\n",
              static_cast<unsigned long long>(s.splits),
              static_cast<unsigned long long>(s.eliminated_copies));
  std::printf("  logger copies still alive: %zu\n",
              rt.live_copies(logger).size());

  std::printf("\nteletype output (only the winner's world is visible):\n");
  for (const auto& line : tty.output()) std::printf("  %s\n", line.c_str());
  std::printf("\nlines from losing worlds discarded unprinted: %llu\n",
              static_cast<unsigned long long>(console.discarded_lines()));
  return 0;
}
