// §4.1: distributed execution of recovery blocks — a primary routine with
// a latent fault, standby spares, and an acceptance test, run both as
// classic standby-spares and as concurrent Multiple Worlds.
//
//   $ recovery_block [--value=9409]
#include <cstdio>

#include "rb/recovery_block.hpp"
#include "util/cli.hpp"

using namespace mw;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::int64_t value = cli.get_int("value", 9409);

  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = 3;
  cfg.cost = CostModel::calibrated_hp();
  Runtime rt(cfg);

  auto acceptance = [](const World& w) {
    const auto v = w.space().load<std::int64_t>(0);
    const auto r = w.space().load<std::int64_t>(8);
    return r >= 0 && r * r <= v && (r + 1) * (r + 1) > v;
  };

  RecoveryBlock rb("integer-sqrt", acceptance);
  // Primary: fast Newton iteration with an overflow bug on large inputs.
  rb.ensure_by("newton-buggy", [](AltContext& ctx) {
    ctx.work(vt_ms(2));
    const auto v = ctx.space().load<std::int64_t>(0);
    if (v > 5000) {  // the latent fault
      ctx.space().store<std::int64_t>(8, -1);
      return;
    }
    std::int64_t x = v ? v : 1;
    for (int i = 0; i < 40; ++i) x = (x + v / x) / 2;
    ctx.space().store<std::int64_t>(8, x);
  });
  // First spare: slow but correct linear scan.
  rb.ensure_by("linear-scan", [](AltContext& ctx) {
    const auto v = ctx.space().load<std::int64_t>(0);
    std::int64_t r = 0;
    while ((r + 1) * (r + 1) <= v) {
      ++r;
      if (r % 16 == 0) ctx.work(vt_us(200));
    }
    ctx.space().store<std::int64_t>(8, r);
  });
  // Second spare: bisection.
  rb.ensure_by("bisection", [](AltContext& ctx) {
    ctx.work(vt_ms(5));
    const auto v = ctx.space().load<std::int64_t>(0);
    std::int64_t lo = 0, hi = v + 1;
    while (hi - lo > 1) {
      const std::int64_t mid = lo + (hi - lo) / 2;
      (mid * mid <= v ? lo : hi) = mid;
    }
    ctx.space().store<std::int64_t>(8, lo);
  });

  auto run = [&](const char* label, auto&& fn) {
    World world = rt.make_root(label);
    world.space().store<std::int64_t>(0, value);
    RbResult r = fn(world);
    if (r.succeeded) {
      std::printf("%-22s isqrt(%lld) = %lld via '%s' in %.3f ms "
                  "(%d alternates rejected)\n",
                  label, static_cast<long long>(value),
                  static_cast<long long>(world.space().load<std::int64_t>(8)),
                  r.alternate_name.c_str(), vt_to_ms(r.elapsed), r.rejected);
    } else {
      std::printf("%-22s FAILED (%d alternates rejected)\n", label,
                  r.rejected);
    }
    return r;
  };

  auto seq = run("standby-spares:", [&](World& w) {
    return rb.run_sequential(rt, w);
  });
  auto conc = run("multiple-worlds:", [&](World& w) {
    return rb.run_concurrent(rt, w);
  });
  if (seq.succeeded && conc.succeeded) {
    std::printf("concurrent recovery was %.2fx faster: the spare was "
                "already running when the primary's fault surfaced\n",
                static_cast<double>(seq.elapsed) /
                    static_cast<double>(conc.elapsed ? conc.elapsed : 1));
  }
  return 0;
}
