// Quickstart: race two alternative methods of computing the same result,
// commit the winner's state, discard the loser — the paper's §1.1 block in
// a dozen lines of library code.
//
//   $ quickstart [--backend=virtual|thread]
#include <cstdio>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "util/cli.hpp"

using namespace mw;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  RuntimeConfig cfg;
  cfg.backend = cli.get("backend", "virtual") == "thread"
                    ? AltBackend::kThread
                    : AltBackend::kVirtual;
  cfg.processors = 2;
  Runtime rt(cfg);

  // The problem: populate offset 0 with the answer. Two methods exist; we
  // do not know in advance which is faster on this input.
  World root = rt.make_root("quickstart");

  AltOutcome out =
      AltBlock(rt, root)
          .alt("analytic",
               [](AltContext& ctx) {
                 ctx.compute(vt_ms(3));  // a cheap closed-form path
                 ctx.space().store<int>(0, 42);
                 ctx.set_result_string("analytic shortcut");
               })
          .alt("brute-force",
               [](AltContext& ctx) {
                 ctx.compute(vt_ms(40));  // grinding search
                 ctx.space().store<int>(0, 42);
                 ctx.set_result_string("exhaustive search");
               })
          .timeout(vt_sec(2))
          .run();

  if (out.failed) {
    std::printf("block failed\n");
    return 1;
  }
  std::printf("winner:   %s (alternative %zu)\n", out.winner_name.c_str(),
              *out.winner + 1);
  std::printf("answer:   %d\n", root.space().load<int>(0));
  std::printf("method:   %s\n",
              std::string(out.result.begin(), out.result.end()).c_str());
  std::printf("elapsed:  %.3f ms\n", vt_to_ms(out.elapsed));
  std::printf("overhead: setup %.3f ms, copy %.3f ms, commit %.3f ms, "
              "elimination %.3f ms\n",
              vt_to_ms(out.overhead.setup), vt_to_ms(out.overhead.copying),
              vt_to_ms(out.overhead.commit),
              vt_to_ms(out.overhead.elimination));
  // The throughput side of the paper's trade: work thrown away to buy the
  // response time above.
  std::printf("ledger:   %llu alternatives spawned, waste ratio %.0f%%, "
              "wasted work %.3f ms\n",
              static_cast<unsigned long long>(
                  rt.stats().alternatives_spawned),
              rt.stats().waste_ratio() * 100.0,
              vt_to_ms(rt.stats().wasted_work));
  return 0;
}
