// §4.2: OR-parallelism in Prolog. Solves N-queens with the sequential
// engine and with committed-choice OR-parallel execution, and reports the
// response-time / throughput trade the paper describes.
//
//   $ prolog_queens [--n=6] [--procs=4] [--depth=2]
#include <cstdio>

#include "prolog/or_parallel.hpp"
#include "util/cli.hpp"

using namespace mw;
using namespace mw::prolog;

namespace {

std::string queens_program(int n) {
  std::string board = "[1";
  for (int i = 2; i <= n; ++i) board += "," + std::to_string(i);
  board += "]";
  return R"(
    select(X, [X|T], T).
    select(X, [H|T], [H|R]) :- select(X, T, R).
    perm([], []).
    perm(L, [H|T]) :- select(H, L, R), perm(R, T).
    safe([]).
    safe([Q|Qs]) :- safe(Qs, Q, 1), safe(Qs).
    safe([], _, _).
    safe([Q|Qs], Q0, D) :-
      Q =\= Q0 + D, Q =\= Q0 - D, D1 is D + 1, safe(Qs, Q0, D1).
    queens(Qs) :- perm()" +
         board + R"(, Qs), safe(Qs).
  )";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 6));
  const auto procs = static_cast<std::size_t>(cli.get_int("procs", 4));
  const int depth = static_cast<int>(cli.get_int("depth", 2));

  Program program = Program::parse(queens_program(n));

  // Sequential baseline.
  Solver seq(program);
  auto seq_result = seq.solve("queens(Qs)");
  if (!seq_result.success) {
    std::printf("%d-queens has no solution\n", n);
    return 1;
  }
  std::printf("%d-queens\n", n);
  std::printf("sequential: %s in %llu inferences\n",
              seq_result.solutions[0].at("Qs").c_str(),
              static_cast<unsigned long long>(seq_result.inferences));

  // OR-parallel committed choice.
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = procs;
  cfg.cost = CostModel::free();
  cfg.page_size = 64;
  cfg.num_pages = 32;
  Runtime rt(cfg);
  OrParallelConfig ocfg;
  ocfg.spawn_depth = depth;
  auto par = solve_or_parallel(rt, program, "queens(Qs)", ocfg);
  if (!par.success) {
    std::printf("or-parallel: failed\n");
    return 1;
  }
  std::printf("or-parallel (%zu procs, spawn depth %d): %s\n", procs, depth,
              par.solution.at("Qs").c_str());
  std::printf("  response: %llu ticks vs %llu sequential inferences "
              "(speedup %.2fx)\n",
              static_cast<unsigned long long>(par.elapsed),
              static_cast<unsigned long long>(par.sequential_inferences),
              static_cast<double>(par.sequential_inferences) /
                  static_cast<double>(par.elapsed ? par.elapsed : 1));
  std::printf("  throughput price: %llu total inferences across %llu "
              "worlds\n",
              static_cast<unsigned long long>(par.total_inferences),
              static_cast<unsigned long long>(par.worlds_spawned));
  return 0;
}
