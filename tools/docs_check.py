#!/usr/bin/env python3
"""Documentation checker: intra-repo links and compilable C++ snippets.

Two checks over every tracked markdown file:

1. Relative links — every [text](path) that is not an external URL or a
   pure #anchor must name a file or directory that exists, relative to
   the file containing the link (or to the repo root for /-leading
   paths). Anchors are stripped before the existence check.

2. Fenced snippets — every ```cpp block must compile as a standalone
   translation unit with -fsyntax-only against -I src. The convention:
   ```cpp marks a compiled snippet (self-contained: includes what it
   uses; top-level statements are fine, they are global definitions),
   ```c++ marks an illustrative fragment the checker skips.

3. Verbatim snippets — a fence preceded by a marker comment

       <!-- verbatim-from: src/service/service.hpp -->

   must reproduce a contiguous run of lines from that file (compared
   with whitespace normalized, comment-only and blank lines ignored).
   Use it when a doc quotes a real declaration — a wire-frame struct,
   a config block — so the quote cannot drift from the source.

Exit code 0 when everything passes; 1 with one line per failure.

Usage: tools/docs_check.py [--compiler g++] [files...]
(no files = every *.md under the repo, skipping build/ and hidden dirs)
"""

import argparse
import pathlib
import re
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\S*)\s*$")
VERBATIM_RE = re.compile(r"^<!--\s*verbatim-from:\s*(\S+)\s*-->\s*$")

# Markdown the check owns. Generated or vendored text would go here.
SKIP_DIRS = {"build", ".git", ".github"}


def md_files():
    out = []
    for p in sorted(REPO.rglob("*.md")):
        rel = p.relative_to(REPO)
        if any(part in SKIP_DIRS or part.startswith(".") for part in rel.parts):
            continue
        out.append(p)
    return out


def strip_fences(text):
    """Yields (line_number, line) for lines outside fenced code blocks."""
    in_fence = False
    for i, line in enumerate(text.splitlines(), 1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield i, line


def check_links(path, text, errors):
    for lineno, line in strip_fences(text):
        for target in LINK_RE.findall(line):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            if target.startswith("#"):  # same-file anchor
                continue
            clean = target.split("#", 1)[0]
            if not clean:
                continue
            base = REPO if clean.startswith("/") else path.parent
            resolved = (base / clean.lstrip("/")).resolve()
            if not resolved.exists():
                errors.append(
                    f"{path.relative_to(REPO)}:{lineno}: broken link "
                    f"'{target}'"
                )


def cpp_snippets(text):
    """Yields (first_line_number, snippet_source) for ```cpp fences."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        m = FENCE_RE.match(lines[i])
        if m and m.group(1) == "cpp":
            start = i + 2  # 1-based line of first snippet line
            body = []
            i += 1
            while i < len(lines) and not FENCE_RE.match(lines[i]):
                body.append(lines[i])
                i += 1
            yield start, "\n".join(body) + "\n"
        elif m and m.group(1):
            # Some other fenced language: skip to its closing fence.
            i += 1
            while i < len(lines) and not FENCE_RE.match(lines[i]):
                i += 1
        i += 1


def check_snippets(path, text, compiler, errors):
    for lineno, src in cpp_snippets(text):
        with tempfile.NamedTemporaryFile(
            mode="w", suffix=".cpp", prefix="docsnip_", delete=False
        ) as f:
            f.write(src)
            tmp = f.name
        try:
            proc = subprocess.run(
                [
                    compiler,
                    "-std=c++20",
                    "-fsyntax-only",
                    "-I",
                    str(REPO / "src"),
                    tmp,
                ],
                capture_output=True,
                text=True,
            )
            if proc.returncode != 0:
                first = proc.stderr.strip().splitlines()
                detail = first[0] if first else "compiler error"
                errors.append(
                    f"{path.relative_to(REPO)}:{lineno}: ```cpp snippet "
                    f"fails to compile: {detail}"
                )
        finally:
            pathlib.Path(tmp).unlink(missing_ok=True)


def normalized(lines):
    """Whitespace-collapsed lines, blank and comment-only lines dropped."""
    out = []
    for line in lines:
        squashed = " ".join(line.split())
        if not squashed or squashed.startswith("//"):
            continue
        out.append(squashed)
    return out


def verbatim_blocks(text):
    """Yields (marker_lineno, source_path, snippet_lines)."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        m = VERBATIM_RE.match(lines[i])
        if not m:
            i += 1
            continue
        marker_line, source = i + 1, m.group(1)
        i += 1
        while i < len(lines) and not lines[i].strip():
            i += 1
        if i >= len(lines) or not FENCE_RE.match(lines[i]):
            yield marker_line, source, None  # marker with no fence = error
            continue
        i += 1
        body = []
        while i < len(lines) and not FENCE_RE.match(lines[i]):
            body.append(lines[i])
            i += 1
        i += 1
        yield marker_line, source, body


def check_verbatim(path, text, errors):
    for lineno, source, body in verbatim_blocks(text):
        where = f"{path.relative_to(REPO)}:{lineno}"
        if body is None:
            errors.append(f"{where}: verbatim-from marker not followed by a "
                          f"code fence")
            continue
        target = REPO / source
        if not target.is_file():
            errors.append(f"{where}: verbatim-from source '{source}' does "
                          f"not exist")
            continue
        want = normalized(body)
        if not want:
            errors.append(f"{where}: verbatim snippet is empty")
            continue
        have = normalized(target.read_text(encoding="utf-8").splitlines())
        n = len(want)
        if not any(have[j : j + n] == want for j in
                   range(len(have) - n + 1)):
            errors.append(
                f"{where}: snippet has drifted from {source} (no "
                f"contiguous match for {n} line(s) starting "
                f"'{want[0][:60]}')"
            )


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--compiler", default="g++")
    ap.add_argument("files", nargs="*")
    args = ap.parse_args()

    files = [pathlib.Path(f).resolve() for f in args.files] or md_files()
    errors = []
    snippets = 0
    for path in files:
        text = path.read_text(encoding="utf-8")
        check_links(path, text, errors)
        before = len(errors)
        snippet_list = list(cpp_snippets(text))
        verbatims = list(verbatim_blocks(text))
        snippets += len(snippet_list) + len(verbatims)
        check_snippets(path, text, args.compiler, errors)
        check_verbatim(path, text, errors)
        status = "ok" if len(errors) == before else "FAIL"
        print(
            f"{status:4} {path.relative_to(REPO)} "
            f"({len(snippet_list)} compiled, {len(verbatims)} verbatim "
            f"snippet(s))"
        )

    for e in errors:
        print(e, file=sys.stderr)
    print(f"{len(files)} file(s), {snippets} snippet(s), "
          f"{len(errors)} error(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
