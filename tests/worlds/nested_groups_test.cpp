// Nested speculation in the actor runtime: an alternative spawns its own
// sub-alternatives — the paper's §2.3 "nesting and potentially complex
// dependencies" through inherited predicates.
#include <gtest/gtest.h>

#include "worlds/spec_runtime.hpp"

namespace mw {
namespace {

TEST(NestedGroups, ChildInheritsParentsAssumptions) {
  SpecRuntime rt;
  LogicalId root = rt.spawn_root("root");
  auto outer = rt.spawn_alternatives(
      root, {AltSpec{"o1", nullptr, nullptr},
             AltSpec{"o2", nullptr, nullptr}});
  // o1 spawns its own alternatives; they assume everything o1 assumes.
  // (o1 is a logical process with exactly one copy.)
  LogicalId o1_lid = 0;
  // Find o1's logical id by its pid.
  for (LogicalId lid = 1; lid < 100; ++lid) {
    auto copies = rt.all_copies(lid);
    if (copies.size() == 1 && copies[0] == outer[0]) {
      o1_lid = lid;
      break;
    }
  }
  ASSERT_NE(o1_lid, 0u);
  auto inner = rt.spawn_alternatives(
      o1_lid, {AltSpec{"i1", nullptr, nullptr},
               AltSpec{"i2", nullptr, nullptr}});
  const PredicateSet& preds = rt.predicates_of(inner[0]);
  EXPECT_TRUE(preds.assumes_completes(outer[0]));  // parent's self-belief
  EXPECT_TRUE(preds.assumes_fails(outer[1]));      // parent's rivalry
  EXPECT_TRUE(preds.assumes_completes(inner[0]));  // own self-belief
  EXPECT_TRUE(preds.assumes_fails(inner[1]));      // own rivalry
}

TEST(NestedGroups, OuterEliminationCascadesIntoInnerWorlds) {
  SpecRuntime rt;
  LogicalId root = rt.spawn_root("root");
  bool inner_ran_after_doom = false;
  LogicalId obs = rt.spawn_root("obs", [](ProcCtx&, const Message&) {});

  auto outer = rt.spawn_alternatives(
      root,
      {AltSpec{"winner",
               [](ProcCtx& ctx) {
                 ctx.after(vt_ms(10), [](ProcCtx& c) { c.try_sync(); });
               },
               nullptr},
       AltSpec{"loser-with-children",
               [&](ProcCtx& ctx) {
                 // Sub-speculation under the eventual loser.
                 ctx.after(vt_ms(1), [&](ProcCtx& c) {
                   SpecRuntime& r = rt;
                   // Children assume complete(loser); when the winner
                   // syncs at t=10ms, loser is doomed, and so are they.
                   (void)r;
                   c.send_text(obs, "still alive");
                   c.after(vt_ms(30), [&inner_ran_after_doom](ProcCtx&) {
                     inner_ran_after_doom = true;
                   });
                 });
               },
               nullptr}});
  rt.run();
  EXPECT_EQ(rt.processes().status(outer[0]), ProcStatus::kSynced);
  EXPECT_EQ(rt.processes().status(outer[1]), ProcStatus::kEliminated);
  // The loser's scheduled continuation was skipped: its copy is dead.
  EXPECT_FALSE(inner_ran_after_doom);
}

TEST(NestedGroups, InnerSyncThenOuterSyncResolvesEverything) {
  SpecRuntime rt;
  LogicalId root = rt.spawn_root("root", nullptr, [](ProcCtx& ctx) {
    ctx.space().store<int>(0, 0);
  });
  const Pid root_pid = rt.live_copies(root)[0];

  // One outer alternative that runs an inner two-way race, commits the
  // inner winner, then syncs itself.
  auto outer = rt.spawn_alternatives(
      root,
      {AltSpec{"outer",
               [&rt](ProcCtx& ctx) {
                 const LogicalId self = ctx.logical();
                 auto inner = rt.spawn_alternatives(
                     self,
                     {AltSpec{"inner-fast",
                              [](ProcCtx& c) {
                                c.space().store<int>(0, 11);
                                c.after(vt_ms(1),
                                        [](ProcCtx& c2) { c2.try_sync(); });
                              },
                              nullptr},
                      AltSpec{"inner-slow",
                              [](ProcCtx& c) {
                                c.space().store<int>(0, 22);
                                c.after(vt_ms(40),
                                        [](ProcCtx& c2) { c2.try_sync(); });
                              },
                              nullptr}});
                 (void)inner;
                 // Sync the outer world once the inner race resolved.
                 ctx.after(vt_ms(5), [](ProcCtx& c) { c.try_sync(); });
               },
               nullptr}});
  rt.run();
  EXPECT_EQ(rt.processes().status(outer[0]), ProcStatus::kSynced);
  // Inner winner's state flowed: inner -> outer world -> root world.
  EXPECT_EQ(rt.space_of(root_pid).load<int>(0), 11);
}

TEST(NestedGroups, MessageFromInnerWorldCarriesFullAncestry) {
  SpecRuntime rt;
  PredicateSet seen;
  LogicalId obs = rt.spawn_root(
      "obs", [&seen](ProcCtx&, const Message& m) { seen = m.predicate; });
  LogicalId root = rt.spawn_root("root");
  auto outer = rt.spawn_alternatives(
      root, {AltSpec{"o",
                     [&rt, obs](ProcCtx& ctx) {
                       auto inner = rt.spawn_alternatives(
                           ctx.logical(),
                           {AltSpec{"i",
                                    [obs](ProcCtx& c) {
                                      c.send_text(obs, "hello");
                                    },
                                    nullptr}});
                       (void)inner;
                     },
                     nullptr}});
  rt.run();
  // The message's sending predicate includes the inner world's belief in
  // its own completion AND the outer ancestry.
  EXPECT_TRUE(seen.assumes_completes(outer[0]));
  EXPECT_GE(seen.size(), 2u);
}

}  // namespace
}  // namespace mw
