// §2.2: "The parent is constrained to remain blocked while the children
// are executing" — messages to a blocked parent queue in its mailbox and
// are delivered, FIFO, after the winner's synchronization resumes it.
#include <gtest/gtest.h>

#include "worlds/spec_runtime.hpp"

namespace mw {
namespace {

TEST(BlockedParent, MessagesQueueWhileBlocked) {
  SpecRuntime rt;
  std::vector<std::string> handled;
  LogicalId parent = rt.spawn_root(
      "parent",
      [&](ProcCtx&, const Message& m) { handled.push_back(m.text()); });
  rt.spawn_alternatives(
      parent, {AltSpec{"child",
                       [](ProcCtx& ctx) {
                         ctx.after(vt_ms(20),
                                   [](ProcCtx& c) { c.try_sync(); });
                       },
                       nullptr}});
  // Arrives at ~spawn+latency, long before the child syncs at 20 ms.
  rt.send_external_text(parent, "early");
  rt.run_until(vt_ms(5));
  EXPECT_TRUE(handled.empty());  // blocked: not processed yet
  rt.run();
  EXPECT_EQ(handled, (std::vector<std::string>{"early"}));  // after resume
}

TEST(BlockedParent, FifoOrderPreservedAcrossBlock) {
  SpecRuntime rt;
  std::vector<std::string> handled;
  LogicalId parent = rt.spawn_root(
      "parent",
      [&](ProcCtx&, const Message& m) { handled.push_back(m.text()); });
  rt.spawn_alternatives(
      parent, {AltSpec{"child",
                       [](ProcCtx& ctx) {
                         ctx.after(vt_ms(20),
                                   [](ProcCtx& c) { c.try_sync(); });
                       },
                       nullptr}});
  rt.send_external_text(parent, "one");
  rt.send_external_text(parent, "two");
  rt.send_external_text(parent, "three");
  rt.run();
  EXPECT_EQ(handled, (std::vector<std::string>{"one", "two", "three"}));
}

TEST(BlockedParent, UnblockedParentHandlesImmediately) {
  SpecRuntime rt;
  int handled = 0;
  LogicalId parent = rt.spawn_root(
      "parent", [&](ProcCtx&, const Message&) { ++handled; });
  rt.send_external_text(parent, "direct");
  rt.run();
  EXPECT_EQ(handled, 1);
}

TEST(BlockedParent, WinnerCommitHappensBeforeQueuedDelivery) {
  // The parent's handler must observe the committed child state when the
  // queued message finally arrives.
  SpecRuntime rt;
  int observed = -1;
  LogicalId parent = rt.spawn_root(
      "parent", [&](ProcCtx& ctx, const Message&) {
        observed = ctx.space().load<int>(0);
      });
  rt.spawn_alternatives(
      parent, {AltSpec{"writer",
                       [](ProcCtx& ctx) {
                         ctx.space().store<int>(0, 77);
                         ctx.after(vt_ms(10),
                                   [](ProcCtx& c) { c.try_sync(); });
                       },
                       nullptr}});
  rt.send_external_text(parent, "check");
  rt.run();
  EXPECT_EQ(observed, 77);
}

TEST(BlockedParent, FailedSpeculationStillBlocksForever) {
  // If the only child aborts, the parent never resumes (the failure
  // alternative would handle this in a full program); queued messages
  // stay queued — they are not mis-delivered to a blocked process.
  SpecRuntime rt;
  int handled = 0;
  LogicalId parent = rt.spawn_root(
      "parent", [&](ProcCtx&, const Message&) { ++handled; });
  rt.spawn_alternatives(
      parent, {AltSpec{"aborter",
                       [](ProcCtx& ctx) {
                         ctx.after(vt_ms(1), [](ProcCtx& c) { c.abort(); });
                       },
                       nullptr}});
  rt.send_external_text(parent, "lost");
  rt.run();
  EXPECT_EQ(handled, 0);
}

}  // namespace
}  // namespace mw
