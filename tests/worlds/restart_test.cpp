// Supervised restart inside the Multiple Worlds runtime: checkpoint_copy /
// restore_copy rewind a live copy's sink state in place — same pid, same
// predicates, same deferred intents — so a restarted speculative process
// replays from its snapshot and can still win its race (PR 3).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/runtime_auditor.hpp"
#include "io/source_gate.hpp"
#include "super/restart_policy.hpp"
#include "worlds/spec_runtime.hpp"

namespace mw {
namespace {

TEST(WorldsRestart, RestoreRewindsPagesButKeepsIdentity) {
  SpecRuntime rt;
  LogicalId parent = rt.spawn_root("parent");
  auto pids = rt.spawn_alternatives(
      parent,
      {AltSpec{"a", nullptr, nullptr}, AltSpec{"b", nullptr, nullptr}});
  const Pid a = pids[0];

  rt.space_of(a).store<int>(0, 1);
  const AddressSpace snap = rt.checkpoint_copy(a);
  rt.space_of(a).store<int>(0, 999);   // work that will be rolled back
  rt.space_of(a).store<int>(256, 7);
  const PredicateSet before = rt.predicates_of(a);

  rt.restore_copy(a, snap);
  EXPECT_EQ(rt.space_of(a).load<int>(0), 1);
  EXPECT_EQ(rt.space_of(a).load<int>(256), 0);
  EXPECT_TRUE(rt.is_alive(a));
  EXPECT_EQ(rt.predicates_of(a), before);  // sibling rivalry intact
  EXPECT_EQ(rt.stats().restarted_copies, 1u);
}

TEST(WorldsRestart, SnapshotIsImmuneToLaterWrites) {
  SpecRuntime rt;
  LogicalId root = rt.spawn_root("r");
  const Pid p = rt.live_copies(root)[0];
  rt.space_of(p).store<int>(0, 5);
  const AddressSpace snap = rt.checkpoint_copy(p);
  rt.space_of(p).store<int>(0, 6);  // COW: must not bleed into the snapshot
  EXPECT_EQ(snap.load<int>(0), 5);
  rt.restore_copy(p, snap);
  EXPECT_EQ(rt.space_of(p).load<int>(0), 5);
}

TEST(WorldsRestart, RestartedAlternativeStillSyncs) {
  SpecRuntime rt;
  std::optional<AddressSpace> snap;
  LogicalId parent = rt.spawn_root("parent");
  const Pid ppid = rt.live_copies(parent)[0];
  auto pids = rt.spawn_alternatives(
      parent, {AltSpec{"worker",
                       [&](ProcCtx& ctx) {
                         ctx.space().store<int>(0, 10);
                         snap.emplace(rt.checkpoint_copy(ctx.pid()));
                         ctx.space().store<int>(0, 666);  // doomed epoch
                         ctx.after(vt_ms(1), [&](ProcCtx& c2) {
                           // Crash detected: rewind and replay the epoch.
                           rt.restore_copy(c2.pid(), *snap);
                           c2.space().store<int>(
                               0, c2.space().load<int>(0) + 1);
                           EXPECT_TRUE(c2.try_sync());
                         });
                       },
                       nullptr}});
  rt.run();
  EXPECT_EQ(rt.processes().status(pids[0]), ProcStatus::kSynced);
  // The parent committed the *replayed* state, not the doomed epoch's.
  EXPECT_EQ(rt.space_of(ppid).load<int>(0), 11);
}

TEST(WorldsRestart, LedgerAndGateMakeRestartEffectsExactlyOnce) {
  RuntimeAuditor auditor;  // page baseline before the runtime exists
  SpecRuntime rt;
  SourceGate gate(rt.processes(), GatePolicy::kDefer);
  EffectLedger ledger;
  std::vector<int> emitted;
  std::optional<AddressSpace> snap;

  LogicalId parent = rt.spawn_root("parent");
  const Pid ppid = rt.live_copies(parent)[0];
  auto emit = [&](ProcCtx& ctx, int seq) {
    if (ledger.admit(static_cast<std::uint64_t>(seq)))
      gate.request(ctx.pid(), ctx.predicates(),
                   [&emitted, seq] { emitted.push_back(seq); });
  };
  rt.spawn_alternatives(
      parent, {AltSpec{"worker",
                       [&](ProcCtx& ctx) {
                         emit(ctx, 0);  // epoch 1 emits effect 0
                         snap.emplace(rt.checkpoint_copy(ctx.pid()));
                         emit(ctx, 1);  // doomed epoch emits effect 1
                         ctx.after(vt_ms(1), [&](ProcCtx& c2) {
                           rt.restore_copy(c2.pid(), *snap);
                           emit(c2, 1);  // replay re-emits effect 1
                           emit(c2, 2);
                           EXPECT_TRUE(c2.try_sync());
                         });
                       },
                       nullptr}});
  rt.run();
  // Nothing fired speculatively; the sync released each effect once.
  EXPECT_EQ(ledger.recorded(), 3u);
  EXPECT_EQ(ledger.suppressed(), 1u);  // the replayed effect 1
  EXPECT_EQ(gate.executed(), 3u);
  EXPECT_EQ(emitted, (std::vector<int>{0, 1, 2}));

  rt.reclaim_dead_worlds();
  snap.reset();
  auditor.add_world(rt.world_of(ppid));
  const AuditReport report = auditor.run(rt.processes());
  EXPECT_TRUE(report.clean()) << report.to_string();
}

}  // namespace
}  // namespace mw
