#include "worlds/spec_runtime.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mw {
namespace {

TEST(SpecRuntime, RootProcessReceivesExternalMessage) {
  SpecRuntime rt;
  std::vector<std::string> got;
  LogicalId r = rt.spawn_root(
      "receiver",
      [&](ProcCtx&, const Message& m) { got.push_back(m.text()); });
  rt.send_external_text(r, "hello");
  rt.run();
  EXPECT_EQ(got, (std::vector<std::string>{"hello"}));
  EXPECT_EQ(rt.stats().accepted, 1u);
  EXPECT_EQ(rt.stats().splits, 0u);
}

TEST(SpecRuntime, RootToRootMessaging) {
  SpecRuntime rt;
  std::vector<std::string> got;
  LogicalId b = rt.spawn_root(
      "b", [&](ProcCtx&, const Message& m) { got.push_back(m.text()); });
  rt.spawn_root("a", nullptr,
                [&](ProcCtx& ctx) { ctx.send_text(b, "from-a"); });
  rt.run();
  EXPECT_EQ(got, (std::vector<std::string>{"from-a"}));
}

TEST(SpecRuntime, InitRunsAtSpawn) {
  SpecRuntime rt;
  bool ran = false;
  rt.spawn_root("r", nullptr, [&](ProcCtx& ctx) {
    ran = true;
    EXPECT_TRUE(ctx.certain());
    ctx.space().store<int>(0, 7);
  });
  EXPECT_TRUE(ran);
}

TEST(SpecRuntime, AlternativesCarrySiblingRivalry) {
  SpecRuntime rt;
  LogicalId parent = rt.spawn_root("parent");
  auto pids = rt.spawn_alternatives(
      parent, {AltSpec{"a", nullptr, nullptr}, AltSpec{"b", nullptr, nullptr}});
  ASSERT_EQ(pids.size(), 2u);
  EXPECT_TRUE(rt.predicates_of(pids[0]).assumes_completes(pids[0]));
  EXPECT_TRUE(rt.predicates_of(pids[0]).assumes_fails(pids[1]));
  EXPECT_TRUE(rt.predicates_of(pids[1]).assumes_completes(pids[1]));
  EXPECT_TRUE(rt.predicates_of(pids[1]).assumes_fails(pids[0]));
}

TEST(SpecRuntime, ParentBlockedWhileChildrenRace) {
  SpecRuntime rt;
  LogicalId parent = rt.spawn_root("parent");
  const Pid ppid = rt.live_copies(parent)[0];
  rt.spawn_alternatives(parent, {AltSpec{"a", nullptr, nullptr}});
  EXPECT_EQ(rt.processes().status(ppid), ProcStatus::kBlocked);
}

TEST(SpecRuntime, SyncCommitsWinnerStateToParent) {
  SpecRuntime rt;
  LogicalId parent = rt.spawn_root("parent", nullptr, [](ProcCtx& ctx) {
    ctx.space().store<int>(0, 1);
  });
  const Pid ppid = rt.live_copies(parent)[0];
  rt.spawn_alternatives(
      parent, {AltSpec{"writer",
                       [](ProcCtx& ctx) {
                         ctx.space().store<int>(0, 42);
                         EXPECT_TRUE(ctx.try_sync());
                       },
                       nullptr}});
  rt.run();
  EXPECT_EQ(rt.space_of(ppid).load<int>(0), 42);
  EXPECT_EQ(rt.processes().status(ppid), ProcStatus::kRunning);
}

TEST(SpecRuntime, AtMostOnceSyncEliminatesSecond) {
  // The first alternative synchronizes during its init; the resolution
  // cascade eliminates the sibling instantly, so the sibling's program
  // never even starts — elimination won the race to the sync point.
  SpecRuntime rt;
  LogicalId parent = rt.spawn_root("parent");
  bool first_won = false, second_ran = false;
  auto pids = rt.spawn_alternatives(
      parent,
      {AltSpec{"first", [&](ProcCtx& ctx) { first_won = ctx.try_sync(); },
               nullptr},
       AltSpec{"second", [&](ProcCtx& ctx) {
                 second_ran = true;
                 ctx.try_sync();
               },
               nullptr}});
  rt.run();
  EXPECT_TRUE(first_won);
  EXPECT_FALSE(second_ran);
  EXPECT_EQ(rt.processes().status(pids[0]), ProcStatus::kSynced);
  EXPECT_EQ(rt.processes().status(pids[1]), ProcStatus::kEliminated);
}

TEST(SpecRuntime, WinnerSyncEliminatesSiblingBeforeItActs) {
  SpecRuntime rt;
  LogicalId parent = rt.spawn_root("parent");
  bool sibling_late_code_ran = false;
  rt.spawn_alternatives(
      parent,
      {AltSpec{"fast", [](ProcCtx& ctx) { ctx.try_sync(); }, nullptr},
       AltSpec{"slow",
               [&](ProcCtx& ctx) {
                 // Scheduled work after the winner synced: the copy is
                 // eliminated, so the continuation never fires.
                 ctx.after(vt_ms(10), [&](ProcCtx&) {
                   sibling_late_code_ran = true;
                 });
               },
               nullptr}});
  rt.run();
  EXPECT_FALSE(sibling_late_code_ran);
}

// The paper's Figure 2: an alternative sends a message to an outside
// process while still speculative. The receiver splits into an accepting
// copy (assuming the sender completes) and a rejecting copy (assuming it
// does not).
TEST(SpecRuntime, Figure2SplitOnSpeculativeMessage) {
  SpecRuntime rt;
  int handled = 0;
  LogicalId obs = rt.spawn_root(
      "observer", [&](ProcCtx&, const Message&) { ++handled; });
  LogicalId parent = rt.spawn_root("parent");
  auto pids = rt.spawn_alternatives(
      parent,
      {AltSpec{"talker",
               [&](ProcCtx& ctx) { ctx.send_text(obs, "speculative"); },
               nullptr},
       AltSpec{"quiet", nullptr, nullptr}});
  rt.run();
  EXPECT_EQ(rt.stats().splits, 1u);
  EXPECT_EQ(handled, 1);  // only the accepting copy handles it
  auto copies = rt.live_copies(obs);
  ASSERT_EQ(copies.size(), 2u);
  // One copy assumes complete(talker), the other not-complete(talker).
  const Pid talker = pids[0];
  int accepting = 0, rejecting = 0;
  for (Pid c : copies) {
    if (rt.predicates_of(c).assumes_completes(talker)) ++accepting;
    if (rt.predicates_of(c).assumes_fails(talker)) ++rejecting;
  }
  EXPECT_EQ(accepting, 1);
  EXPECT_EQ(rejecting, 1);
}

TEST(SpecRuntime, SplitResolvesWhenSenderSyncs) {
  SpecRuntime rt;
  LogicalId obs = rt.spawn_root("observer",
                                [](ProcCtx&, const Message&) {});
  LogicalId parent = rt.spawn_root("parent");
  auto pids = rt.spawn_alternatives(
      parent, {AltSpec{"talker",
                       [&](ProcCtx& ctx) {
                         ctx.send_text(obs, "m");
                         ctx.after(vt_ms(1), [](ProcCtx& c) { c.try_sync(); });
                       },
                       nullptr}});
  rt.run();
  // The talker synchronized: the rejecting copy (which assumed
  // not-complete(talker)) is eliminated; exactly one observer copy
  // survives, with its assumptions fully resolved.
  auto copies = rt.live_copies(obs);
  ASSERT_EQ(copies.size(), 1u);
  EXPECT_TRUE(rt.predicates_of(copies[0]).empty());
  EXPECT_EQ(rt.processes().status(pids[0]), ProcStatus::kSynced);
  EXPECT_GE(rt.stats().eliminated_copies, 1u);
}

TEST(SpecRuntime, SplitResolvesWhenSenderAborts) {
  SpecRuntime rt;
  int handled = 0;
  LogicalId obs = rt.spawn_root(
      "observer", [&](ProcCtx&, const Message&) { ++handled; });
  LogicalId parent = rt.spawn_root("parent");
  auto pids = rt.spawn_alternatives(
      parent, {AltSpec{"talker",
                       [&](ProcCtx& ctx) {
                         ctx.send_text(obs, "m");
                         ctx.after(vt_ms(1), [](ProcCtx& c) { c.abort(); });
                       },
                       nullptr}});
  rt.run();
  // The talker aborted: the accepting copy is doomed; the rejecting copy
  // survives with the assumption simplified away.
  auto copies = rt.live_copies(obs);
  ASSERT_EQ(copies.size(), 1u);
  EXPECT_TRUE(rt.predicates_of(copies[0]).empty());
  EXPECT_FALSE(rt.predicates_of(copies[0]).assumes_fails(pids[0]));
  EXPECT_EQ(handled, 1);  // the accepting copy did handle it before dooming
}

TEST(SpecRuntime, MessageFromDeadWorldIsPruned) {
  SpecRuntime rt;
  int handled = 0;
  LogicalId obs = rt.spawn_root(
      "observer", [&](ProcCtx&, const Message&) { ++handled; });
  LogicalId parent = rt.spawn_root("parent");
  rt.spawn_alternatives(
      parent,
      {AltSpec{"loser",
               [&](ProcCtx& ctx) {
                 ctx.send_text(obs, "phantom");
                 ctx.abort();  // dies before the message arrives
               },
               nullptr}});
  rt.run();
  EXPECT_EQ(handled, 0);
  EXPECT_EQ(rt.stats().pruned, 1u);
  // No split: the message never forced an assumption.
  EXPECT_EQ(rt.stats().splits, 0u);
  EXPECT_EQ(rt.live_copies(obs).size(), 1u);
}

TEST(SpecRuntime, ConflictingSecondMessageIgnored) {
  // Observer accepts a message from alternative A (split), then the
  // accepting copy receives one from sibling B: conflict, ignored; the
  // rejecting copy splits on B instead.
  SpecRuntime rt;
  std::vector<std::string> handled;
  LogicalId obs = rt.spawn_root(
      "observer",
      [&](ProcCtx&, const Message& m) { handled.push_back(m.text()); });
  LogicalId parent = rt.spawn_root("parent");
  rt.spawn_alternatives(
      parent,
      {AltSpec{"A", [&](ProcCtx& ctx) { ctx.send_text(obs, "from-A"); },
               nullptr},
       AltSpec{"B",
               [&](ProcCtx& ctx) {
                 ctx.after(vt_ms(1),
                           [&, obs](ProcCtx& c) { c.send_text(obs, "from-B"); });
               },
               nullptr}});
  rt.run();
  // from-A accepted once (splitting); from-B: the A-accepting copy ignores
  // it (conflict), the A-rejecting copy splits again and accepts.
  ASSERT_EQ(handled.size(), 2u);
  EXPECT_EQ(handled[0], "from-A");
  EXPECT_EQ(handled[1], "from-B");
  EXPECT_EQ(rt.stats().splits, 2u);
  EXPECT_EQ(rt.stats().ignored, 1u);
  // Three live observer copies: (A), (not-A, B), (not-A, not-B).
  EXPECT_EQ(rt.live_copies(obs).size(), 3u);
}

TEST(SpecRuntime, SpeculativeStateVisibleOnlyInOwnWorld) {
  SpecRuntime rt;
  LogicalId parent = rt.spawn_root("parent", nullptr, [](ProcCtx& ctx) {
    ctx.space().store<int>(0, 10);
  });
  auto pids = rt.spawn_alternatives(
      parent,
      {AltSpec{"w1", [](ProcCtx& ctx) { ctx.space().store<int>(0, 11); },
               nullptr},
       AltSpec{"w2", [](ProcCtx& ctx) { ctx.space().store<int>(0, 12); },
               nullptr}});
  rt.run();
  EXPECT_EQ(rt.space_of(pids[0]).load<int>(0), 11);
  EXPECT_EQ(rt.space_of(pids[1]).load<int>(0), 12);
  EXPECT_EQ(rt.space_of(rt.live_copies(parent)[0]).load<int>(0), 10);
}

TEST(SpecRuntime, RepliesReachSpeculativeSender) {
  // An observer replies to the logical id of a speculative sender; the
  // reply carries the observer-copy's assumptions, which the alternative
  // already holds (it assumes its own completion) — accepted, no split.
  SpecRuntime rt;
  std::string reply_seen;
  LogicalId obs = rt.spawn_root(
      "obs", [](ProcCtx& ctx, const Message& m) {
        ctx.send_text(m.sender_logical, "reply:" + m.text());
      });
  LogicalId parent = rt.spawn_root("parent");
  rt.spawn_alternatives(
      parent,
      {AltSpec{"asker",
               [&](ProcCtx& ctx) { ctx.send_text(obs, "question"); },
               [&](ProcCtx&, const Message& m) { reply_seen = m.text(); }}});
  rt.run();
  EXPECT_EQ(reply_seen, "reply:question");
  // The reply from the accepting copy to the asker needed no further split.
  EXPECT_EQ(rt.stats().splits, 1u);
}

TEST(SpecRuntime, DeterministicReplay) {
  auto run_once = [] {
    SpecRuntime rt;
    std::vector<std::string> log;
    LogicalId obs = rt.spawn_root(
        "obs", [&](ProcCtx&, const Message& m) { log.push_back(m.text()); });
    LogicalId parent = rt.spawn_root("parent");
    rt.spawn_alternatives(
        parent,
        {AltSpec{"a", [&](ProcCtx& ctx) { ctx.send_text(obs, "a"); }, nullptr},
         AltSpec{"b", [&](ProcCtx& ctx) { ctx.send_text(obs, "b"); }, nullptr},
         AltSpec{"c", [&](ProcCtx& ctx) { ctx.send_text(obs, "c"); }, nullptr}});
    rt.run();
    auto s = rt.stats();
    return std::make_tuple(log, s.splits, s.accepted, s.ignored,
                           rt.live_copies(obs).size());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SpecRuntimeDeath, AlternativesRequireSingleParentCopy) {
  SpecRuntime rt;
  EXPECT_DEATH(rt.spawn_alternatives(999, {AltSpec{"x", nullptr, nullptr}}),
               "MW_CHECK");
}

}  // namespace
}  // namespace mw
