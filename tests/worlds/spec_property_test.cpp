// Property fuzz of the Multiple Worlds runtime: random speculation
// scenarios (random alternative counts, message fan-out, winner choice)
// must always resolve to a consistent end state:
//   * every alt group has exactly one synced member (or none if all abort);
//   * every surviving observer copy is certain (empty predicates);
//   * exactly one observer copy survives per logical observer;
//   * no message from a losing world was ever accepted by a copy that
//     survives.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/rng.hpp"
#include "worlds/spec_runtime.hpp"

namespace mw {
namespace {

class SpecPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpecPropertyTest, RandomScenarioResolvesConsistently) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  SpecRuntime rt;
  // A few observers that record accepted messages per copy pid.
  std::map<Pid, std::vector<std::string>> accepted_by_copy;
  const int n_obs = 1 + static_cast<int>(rng.next_below(3));
  std::vector<LogicalId> observers;
  for (int i = 0; i < n_obs; ++i) {
    observers.push_back(rt.spawn_root(
        "obs" + std::to_string(i),
        [&accepted_by_copy](ProcCtx& ctx, const Message& m) {
          accepted_by_copy[ctx.pid()].push_back(m.text());
        }));
  }

  LogicalId parent = rt.spawn_root("parent");
  const int n_alts = 2 + static_cast<int>(rng.next_below(4));
  const int winner = static_cast<int>(rng.next_below(
      static_cast<std::uint64_t>(n_alts) + 1));  // n_alts = everyone aborts

  std::vector<AltSpec> specs;
  for (int a = 0; a < n_alts; ++a) {
    // Each alternative messages a random subset of observers at random
    // times, then syncs (if chosen) or aborts.
    std::vector<std::pair<VDuration, LogicalId>> sends;
    const int n_sends = static_cast<int>(rng.next_below(3));
    for (int s = 0; s < n_sends; ++s) {
      sends.emplace_back(
          static_cast<VDuration>(vt_ms(1 + rng.next_in(0, 8))),
          observers[rng.next_below(observers.size())]);
    }
    const bool is_winner = a == winner;
    const VDuration decide_at = vt_ms(10 + rng.next_in(0, 5));
    const std::string tag = "alt" + std::to_string(a);
    specs.push_back(AltSpec{
        tag,
        [sends, is_winner, decide_at, tag](ProcCtx& ctx) {
          for (const auto& [at, to] : sends) {
            ctx.after(at, [to, tag](ProcCtx& c) {
              c.send_text(to, tag);
            });
          }
          ctx.after(decide_at, [is_winner](ProcCtx& c) {
            if (is_winner) {
              c.try_sync();
            } else {
              c.abort();
            }
          });
        },
        nullptr});
  }
  auto pids = rt.spawn_alternatives(parent, std::move(specs));
  rt.run();

  // Invariant 1: group outcome matches the plan.
  int synced = 0;
  for (Pid p : pids) {
    if (rt.processes().status(p) == ProcStatus::kSynced) ++synced;
  }
  if (winner < n_alts) {
    EXPECT_EQ(synced, 1) << "seed " << seed;
    EXPECT_EQ(rt.processes().status(pids[static_cast<std::size_t>(winner)]),
              ProcStatus::kSynced);
  } else {
    EXPECT_EQ(synced, 0) << "seed " << seed;
  }

  // Invariant 2 & 3: each observer ends with exactly one live copy, and
  // that copy holds no assumptions.
  for (LogicalId obs : observers) {
    auto live = rt.live_copies(obs);
    ASSERT_EQ(live.size(), 1u) << "seed " << seed;
    EXPECT_TRUE(rt.predicates_of(live[0]).empty()) << "seed " << seed;
  }

  // Invariant 4: surviving copies accepted no messages from losing
  // alternatives.
  const std::string winner_tag = "alt" + std::to_string(winner);
  for (LogicalId obs : observers) {
    const Pid survivor = rt.live_copies(obs)[0];
    auto it = accepted_by_copy.find(survivor);
    if (it == accepted_by_copy.end()) continue;
    for (const auto& tag : it->second) {
      EXPECT_EQ(tag, winner_tag)
          << "survivor copy of observer heard from a losing world (seed "
          << seed << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace mw
