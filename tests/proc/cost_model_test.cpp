#include "proc/cost_model.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

TEST(CostModel, FreeModelChargesNothing) {
  CostModel m = CostModel::free();
  EXPECT_EQ(m.fork_cost(100), 0);
  EXPECT_EQ(m.commit_cost(50), 0);
  EXPECT_EQ(m.elimination_cost(16, true), 0);
}

TEST(CostModel, ForkCostGrowsWithAddressSpace) {
  CostModel m = CostModel::calibrated_hp();
  EXPECT_GT(m.fork_cost(160), m.fork_cost(80));
  EXPECT_EQ(m.fork_cost(0), m.fork_base);
}

TEST(CostModel, Calibrated3b2MatchesPaperForkLatency) {
  // §3.4: a 320 KB address space (160 2K-pages) forks in about 31 ms.
  CostModel m = CostModel::calibrated_3b2();
  const double ms = vt_to_ms(m.fork_cost(320 * 1024 / m.page_size));
  EXPECT_NEAR(ms, 31.0, 2.0);
}

TEST(CostModel, CalibratedHpMatchesPaperForkLatency) {
  // §3.4: the HP forks the same 320 KB (80 4K-pages) in about 12 ms.
  CostModel m = CostModel::calibrated_hp();
  const double ms = vt_to_ms(m.fork_cost(320 * 1024 / m.page_size));
  EXPECT_NEAR(ms, 12.0, 1.0);
}

TEST(CostModel, Calibrated3b2MatchesPageCopyRate) {
  // §3.4: 326 2K-pages/second.
  CostModel m = CostModel::calibrated_3b2();
  const double pages_per_sec = 1e6 / static_cast<double>(m.cow_copy_per_page);
  EXPECT_NEAR(pages_per_sec, 326.0, 10.0);
}

TEST(CostModel, CalibratedHpMatchesPageCopyRate) {
  // §3.4: 1034 4K-pages/second.
  CostModel m = CostModel::calibrated_hp();
  const double pages_per_sec = 1e6 / static_cast<double>(m.cow_copy_per_page);
  EXPECT_NEAR(pages_per_sec, 1034.0, 35.0);
}

TEST(CostModel, EliminationOf16MatchesPaper) {
  // §3.4: 16 subprocesses eliminated in ~40 ms waited, ~20 ms async.
  CostModel m = CostModel::calibrated_3b2();
  EXPECT_NEAR(vt_to_ms(m.elimination_cost(16, /*sync=*/true)), 40.0, 1.0);
  EXPECT_NEAR(vt_to_ms(m.elimination_cost(16, /*sync=*/false)), 20.0, 1.0);
}

TEST(CostModel, AsyncEliminationAlwaysCheaper) {
  for (const CostModel& m :
       {CostModel::calibrated_3b2(), CostModel::calibrated_hp()}) {
    for (std::size_t n : {1u, 4u, 16u, 64u}) {
      EXPECT_LE(m.elimination_cost(n, false), m.elimination_cost(n, true));
    }
  }
}

TEST(CostModel, EliminationScalesLinearly) {
  CostModel m = CostModel::calibrated_3b2();
  EXPECT_EQ(m.elimination_cost(8, true) * 2, m.elimination_cost(16, true));
  EXPECT_EQ(m.elimination_cost(0, true), 0);
}

}  // namespace
}  // namespace mw
