#include <gtest/gtest.h>

#include "proc/vsched.hpp"

namespace mw {
namespace {

VirtualTask task(Pid pid, VTime ready, VDuration dur, bool ok) {
  return VirtualTask{pid, ready, dur, ok};
}

TEST(PsSched, SingleTaskRunsAtFullRate) {
  auto out = ps_schedule(2, {task(1, 0, 100, true)});
  ASSERT_TRUE(out.winner_index.has_value());
  EXPECT_EQ(out.winner_finish, 100);
}

TEST(PsSched, UnderloadedMatchesFcfs) {
  // Tasks <= processors: both policies give identical finishes.
  std::vector<VirtualTask> ts{task(1, 0, 100, true), task(2, 0, 250, true)};
  auto ps = ps_schedule(2, ts);
  auto fcfs = list_schedule(2, ts);
  EXPECT_EQ(ps.winner_finish, fcfs.winner_finish);
  EXPECT_EQ(*ps.winner_index, *fcfs.winner_index);
}

TEST(PsSched, OverloadSlowsEveryoneDown) {
  // 4 identical tasks on 2 CPUs: everyone runs at rate 1/2 and finishes at
  // 2x the solo time — the paper's Table I timesharing effect.
  std::vector<VirtualTask> ts;
  for (Pid p = 1; p <= 4; ++p) ts.push_back(task(p, 0, 100, true));
  auto out = ps_schedule(2, ts);
  EXPECT_EQ(out.winner_finish, 200);
}

TEST(PsSched, FiveOnTwoGivesTwoPointFive) {
  std::vector<VirtualTask> ts;
  for (Pid p = 1; p <= 5; ++p) ts.push_back(task(p, 0, 1000, true));
  auto out = ps_schedule(2, ts);
  EXPECT_EQ(out.winner_finish, 2500);
}

TEST(PsSched, ShortTaskStillWinsUnderSharing) {
  // Unlike FCFS, a short task never waits in a queue: it shares from the
  // start and finishes first.
  auto out = ps_schedule(1, {task(1, 0, 1000, true), task(2, 0, 10, true)});
  ASSERT_TRUE(out.winner_index.has_value());
  EXPECT_EQ(*out.winner_index, 1u);
  // Two tasks share one CPU until the short one completes: it needs 10
  // units at rate 1/2 = 20 ticks.
  EXPECT_EQ(out.winner_finish, 20);
}

TEST(PsSched, RateRecoversWhenTasksFinish) {
  // Tasks 10 and 30 on one CPU: both at rate 1/2 until t=20 (first done),
  // then the survivor runs alone: 30-10=20 more units -> t=40.
  auto out = ps_schedule(1, {task(1, 0, 10, false), task(2, 0, 30, true)});
  EXPECT_EQ(out.tasks[0].finish, 20);
  EXPECT_EQ(out.winner_finish, 40);
}

TEST(PsSched, LateArrivalJoinsTheShare) {
  // Task 1 runs alone [0,50): does 50 units. Task 2 arrives at 50; both at
  // rate 1/2. Task 1 has 50 left -> done at 150; task 2 needs 100 shared
  // then alone... compute: at t=150, task2 has done 50; 50 left alone ->
  // 200.
  auto out = ps_schedule(1, {task(1, 0, 100, false), task(2, 50, 100, true)});
  EXPECT_EQ(out.tasks[0].finish, 150);
  EXPECT_EQ(out.winner_finish, 200);
}

TEST(PsSched, WinnerCutsSiblingsLikeFcfs) {
  std::vector<VirtualTask> ts{task(1, 0, 100, true), task(2, 0, 300, true)};
  auto out = ps_schedule(2, ts);
  EXPECT_EQ(*out.winner_index, 0u);
  EXPECT_FALSE(out.tasks[1].success);
  EXPECT_EQ(out.tasks[1].finish, out.winner_finish);
}

TEST(PsSched, NoSuccessNoWinner) {
  auto out = ps_schedule(2, {task(1, 0, 10, false), task(2, 0, 20, false)});
  EXPECT_FALSE(out.winner_index.has_value());
}

TEST(PsSched, IdleGapBeforeArrival) {
  auto out = ps_schedule(2, {task(1, 500, 100, true)});
  EXPECT_EQ(out.winner_finish, 600);
}

TEST(PsSchedDeath, ZeroProcessorsAborts) {
  EXPECT_DEATH(ps_schedule(0, {task(1, 0, 1, true)}), "MW_CHECK");
}

// Property sweep: with n identical successful tasks on P processors, the
// first finish is duration * max(1, n/P).
class PsSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PsSweep, FinishMatchesFluidFormula) {
  const int procs = std::get<0>(GetParam());
  const int n = std::get<1>(GetParam());
  std::vector<VirtualTask> ts;
  for (int i = 0; i < n; ++i)
    ts.push_back(task(static_cast<Pid>(i + 1), 0, 1200, true));
  auto out = ps_schedule(static_cast<std::size_t>(procs), ts);
  const double factor =
      std::max(1.0, static_cast<double>(n) / static_cast<double>(procs));
  EXPECT_NEAR(static_cast<double>(out.winner_finish), 1200.0 * factor, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Grid, PsSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 3, 6)));

}  // namespace
}  // namespace mw
