#include "proc/process_table.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mw {
namespace {

TEST(ProcessTable, CreateAssignsFreshPids) {
  ProcessTable t;
  Pid a = t.create(kNoPid);
  Pid b = t.create(kNoPid);
  EXPECT_NE(a, kNoPid);
  EXPECT_NE(a, b);
  EXPECT_EQ(t.process_count(), 2u);
}

TEST(ProcessTable, ParentChildLinks) {
  ProcessTable t;
  Pid p = t.create(kNoPid);
  Pid c1 = t.create(p);
  Pid c2 = t.create(p);
  auto rec = t.get(p);
  EXPECT_EQ(rec.children, (std::vector<Pid>{c1, c2}));
  EXPECT_EQ(t.get(c1).parent, p);
}

TEST(ProcessTable, StatusLifecycle) {
  ProcessTable t;
  Pid p = t.create(kNoPid);
  EXPECT_EQ(t.status(p), ProcStatus::kReady);
  EXPECT_TRUE(t.set_status(p, ProcStatus::kRunning));
  EXPECT_TRUE(t.set_status(p, ProcStatus::kBlocked));
  EXPECT_TRUE(t.set_status(p, ProcStatus::kRunning));
  EXPECT_TRUE(t.set_status(p, ProcStatus::kSynced));
  EXPECT_EQ(t.status(p), ProcStatus::kSynced);
}

TEST(ProcessTable, TerminalStatesAreSticky) {
  ProcessTable t;
  Pid p = t.create(kNoPid);
  t.set_status(p, ProcStatus::kFailed);
  EXPECT_FALSE(t.set_status(p, ProcStatus::kRunning));
  EXPECT_FALSE(t.set_status(p, ProcStatus::kEliminated));
  EXPECT_EQ(t.status(p), ProcStatus::kFailed);
}

TEST(ProcessTable, CompletionOracle) {
  ProcessTable t;
  Pid a = t.create(kNoPid);
  Pid b = t.create(kNoPid);
  Pid c = t.create(kNoPid);
  EXPECT_EQ(t.complete(a), Completion::kIndeterminate);
  t.set_status(a, ProcStatus::kSynced);
  t.set_status(b, ProcStatus::kFailed);
  t.set_status(c, ProcStatus::kEliminated);
  EXPECT_EQ(t.complete(a), Completion::kTrue);
  EXPECT_EQ(t.complete(b), Completion::kFalse);
  EXPECT_EQ(t.complete(c), Completion::kFalse);
}

TEST(ProcessTable, ListenersFireOnTransition) {
  ProcessTable t;
  std::vector<std::pair<Pid, ProcStatus>> events;
  t.subscribe([&](Pid pid, ProcStatus, ProcStatus now) {
    events.push_back({pid, now});
  });
  Pid p = t.create(kNoPid);
  t.set_status(p, ProcStatus::kRunning);
  t.set_status(p, ProcStatus::kSynced);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], std::make_pair(p, ProcStatus::kRunning));
  EXPECT_EQ(events[1], std::make_pair(p, ProcStatus::kSynced));
}

TEST(ProcessTable, ListenerNotFiredOnRejectedTransition) {
  ProcessTable t;
  int count = 0;
  t.subscribe([&](Pid, ProcStatus, ProcStatus) { ++count; });
  Pid p = t.create(kNoPid);
  t.set_status(p, ProcStatus::kSynced);
  t.set_status(p, ProcStatus::kEliminated);  // rejected: already terminal
  EXPECT_EQ(count, 1);
}

TEST(ProcessTable, LiveCountExcludesTerminal) {
  ProcessTable t;
  Pid a = t.create(kNoPid);
  Pid b = t.create(kNoPid);
  t.create(kNoPid);
  EXPECT_EQ(t.live_count(), 3u);
  t.set_status(a, ProcStatus::kSynced);
  t.set_status(b, ProcStatus::kEliminated);
  EXPECT_EQ(t.live_count(), 1u);
}

TEST(ProcessTable, ExistsAndLabels) {
  ProcessTable t;
  Pid p = t.create(kNoPid, 7, "rootfinder");
  EXPECT_TRUE(t.exists(p));
  EXPECT_FALSE(t.exists(9999));
  EXPECT_EQ(t.get(p).alt_group, 7u);
  EXPECT_EQ(t.get(p).label, "rootfinder");
}

TEST(ProcessTable, ListenerRunsOutsideLock) {
  // A listener that re-enters the table must not deadlock.
  ProcessTable t;
  Pid p = t.create(kNoPid);
  t.subscribe([&](Pid pid, ProcStatus, ProcStatus) {
    (void)t.status(pid);  // re-entrant read
  });
  EXPECT_TRUE(t.set_status(p, ProcStatus::kRunning));
}

}  // namespace
}  // namespace mw
