#include "proc/vsched.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

VirtualTask task(Pid pid, VTime ready, VDuration dur, bool ok) {
  return VirtualTask{pid, ready, dur, ok};
}

TEST(VSched, SingleTaskRunsImmediately) {
  auto out = list_schedule(2, {task(1, 0, 100, true)});
  ASSERT_TRUE(out.winner_index.has_value());
  EXPECT_EQ(*out.winner_index, 0u);
  EXPECT_EQ(out.winner_finish, 100);
  EXPECT_TRUE(out.tasks[0].ran);
}

TEST(VSched, FastestSuccessfulWins) {
  auto out = list_schedule(3, {task(1, 0, 300, true), task(2, 0, 100, true),
                               task(3, 0, 200, true)});
  EXPECT_EQ(*out.winner_index, 1u);
  EXPECT_EQ(out.winner_finish, 100);
}

TEST(VSched, FailedTasksNeverWin) {
  auto out = list_schedule(3, {task(1, 0, 50, false), task(2, 0, 100, true)});
  EXPECT_EQ(*out.winner_index, 1u);
  EXPECT_EQ(out.winner_finish, 100);
}

TEST(VSched, NoSuccessNoWinner) {
  auto out = list_schedule(2, {task(1, 0, 50, false), task(2, 0, 60, false)});
  EXPECT_FALSE(out.winner_index.has_value());
  EXPECT_EQ(out.winner_finish, kVTimeMax);
}

TEST(VSched, LimitedProcessorsQueueTasks) {
  // 1 processor, two tasks: the second starts when the first finishes.
  auto out = list_schedule(1, {task(1, 0, 100, false), task(2, 0, 50, true)});
  EXPECT_EQ(out.tasks[0].start, 0);
  EXPECT_EQ(out.tasks[1].start, 100);
  EXPECT_EQ(out.winner_finish, 150);
}

TEST(VSched, TwoProcessorsRunTwoAtOnce) {
  auto out = list_schedule(2, {task(1, 0, 100, true), task(2, 0, 100, true),
                               task(3, 0, 100, true)});
  // Tasks 1 and 2 run at t=0; task 3 would start at t=100, exactly when
  // the winner synchronizes — it is eliminated in the ready queue.
  EXPECT_EQ(*out.winner_index, 0u);
  EXPECT_EQ(out.winner_finish, 100);
  EXPECT_FALSE(out.tasks[2].ran);
}

TEST(VSched, ReadyTimeDelaysStart) {
  auto out = list_schedule(2, {task(1, 500, 10, true)});
  EXPECT_EQ(out.tasks[0].start, 500);
  EXPECT_EQ(out.winner_finish, 510);
}

TEST(VSched, SerialSpawnArrivalOrderRespected) {
  // Arrivals staggered as if the parent forked serially.
  auto out = list_schedule(1, {task(1, 10, 100, true), task(2, 20, 10, true)});
  // FCFS: task 1 occupies the processor first even though task 2 is shorter.
  EXPECT_EQ(*out.winner_index, 0u);
  EXPECT_EQ(out.tasks[0].start, 10);
  EXPECT_FALSE(out.tasks[1].ran);
}

TEST(VSched, TieBrokenByInputOrder) {
  auto out = list_schedule(2, {task(1, 0, 100, true), task(2, 0, 100, true)});
  EXPECT_EQ(*out.winner_index, 0u);
}

TEST(VSched, RunningSiblingKilledAtWinnerFinish) {
  auto out = list_schedule(2, {task(1, 0, 100, true), task(2, 0, 500, true)});
  EXPECT_EQ(*out.winner_index, 0u);
  EXPECT_TRUE(out.tasks[1].ran);
  EXPECT_FALSE(out.tasks[1].success);
  EXPECT_EQ(out.tasks[1].finish, 100);  // killed when the winner synced
}

TEST(VSched, AbortedSiblingKeepsOwnFinishTime) {
  auto out = list_schedule(2, {task(1, 0, 100, true), task(2, 0, 40, false)});
  EXPECT_EQ(out.tasks[1].finish, 40);
  EXPECT_FALSE(out.tasks[1].success);
}

TEST(VSched, ManyTasksFewProcessorsPacking) {
  // 4 tasks x 100 ticks on 2 processors, all failing: finishes at 100,
  // 100, 200, 200.
  std::vector<VirtualTask> ts;
  for (Pid p = 1; p <= 4; ++p) ts.push_back(task(p, 0, 100, false));
  auto out = list_schedule(2, ts);
  EXPECT_EQ(out.tasks[0].finish, 100);
  EXPECT_EQ(out.tasks[1].finish, 100);
  EXPECT_EQ(out.tasks[2].finish, 200);
  EXPECT_EQ(out.tasks[3].finish, 200);
}

TEST(VSched, WinnerUnaffectedByLaterEliminations) {
  // A successful task queued behind the winner cannot overtake it.
  auto out = list_schedule(1, {task(1, 0, 100, true), task(2, 0, 1, true)});
  EXPECT_EQ(*out.winner_index, 0u);
  EXPECT_FALSE(out.tasks[1].ran);
}

TEST(VSched, ZeroDurationTask) {
  auto out = list_schedule(1, {task(1, 0, 0, true)});
  EXPECT_EQ(out.winner_finish, 0);
}

TEST(VSchedDeath, ZeroProcessorsAborts) {
  EXPECT_DEATH(list_schedule(0, {task(1, 0, 1, true)}), "MW_CHECK");
}

// Parameterized sweep: with P processors and N identical successful tasks,
// the winner always finishes after ceil-one-batch: duration (P >= 1 task
// fits in the first batch).
class VSchedSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(VSchedSweep, FirstBatchWins) {
  const int procs = std::get<0>(GetParam());
  const int n = std::get<1>(GetParam());
  std::vector<VirtualTask> ts;
  for (int i = 0; i < n; ++i)
    ts.push_back(task(static_cast<Pid>(i + 1), 0, 1000, true));
  auto out = list_schedule(static_cast<std::size_t>(procs), ts);
  ASSERT_TRUE(out.winner_index.has_value());
  EXPECT_EQ(out.winner_finish, 1000);
  // Exactly min(procs, n) tasks ran.
  int ran = 0;
  for (const auto& t : out.tasks)
    if (t.ran) ++ran;
  EXPECT_EQ(ran, std::min(procs, n));
}

INSTANTIATE_TEST_SUITE_P(Grid, VSchedSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(1, 2, 5, 16)));

}  // namespace
}  // namespace mw
