// Thread-safety of the process table: the wall-clock backend's worker
// threads create processes and publish status transitions concurrently.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "proc/process_table.hpp"

namespace mw {
namespace {

TEST(TableConcurrency, ParallelCreatesYieldUniquePids) {
  ProcessTable table;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::vector<Pid>> pids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i)
        pids[static_cast<std::size_t>(t)].push_back(table.create(kNoPid));
    });
  }
  for (auto& th : threads) th.join();
  std::set<Pid> all;
  for (const auto& v : pids) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(table.process_count(), all.size());
}

TEST(TableConcurrency, RacingTerminalTransitionsAtMostOneWins) {
  // Many threads race to terminate the same process with different
  // terminal states: exactly one transition may succeed.
  for (int round = 0; round < 20; ++round) {
    ProcessTable table;
    const Pid p = table.create(kNoPid);
    table.set_status(p, ProcStatus::kRunning);
    std::atomic<int> wins{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 6; ++t) {
      threads.emplace_back([&, t] {
        const ProcStatus status =
            t % 2 ? ProcStatus::kSynced : ProcStatus::kEliminated;
        if (table.set_status(p, status)) wins.fetch_add(1);
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(wins.load(), 1);
    EXPECT_TRUE(is_terminal(table.status(p)));
  }
}

TEST(TableConcurrency, ListenersSeeEveryAcceptedTransition) {
  ProcessTable table;
  std::atomic<int> events{0};
  table.subscribe([&](Pid, ProcStatus, ProcStatus) { events.fetch_add(1); });
  constexpr int kProcs = 100;
  std::vector<Pid> pids;
  for (int i = 0; i < kProcs; ++i) pids.push_back(table.create(kNoPid));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = t; i < kProcs; i += 4) {
        table.set_status(pids[static_cast<std::size_t>(i)],
                         ProcStatus::kRunning);
        table.set_status(pids[static_cast<std::size_t>(i)],
                         ProcStatus::kSynced);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(events.load(), kProcs * 2);
}

TEST(TableConcurrency, CompletionOracleStableUnderReads) {
  ProcessTable table;
  const Pid p = table.create(kNoPid);
  std::atomic<bool> stop{false};
  std::atomic<int> flips{0};
  std::thread reader([&] {
    Completion last = Completion::kIndeterminate;
    while (!stop.load()) {
      const Completion c = table.complete(p);
      // Completion may change at most once: indeterminate -> true/false.
      if (c != last) {
        flips.fetch_add(1);
        last = c;
      }
    }
  });
  table.set_status(p, ProcStatus::kRunning);
  table.set_status(p, ProcStatus::kSynced);
  stop = true;
  reader.join();
  EXPECT_LE(flips.load(), 1);
  EXPECT_EQ(table.complete(p), Completion::kTrue);
}

}  // namespace
}  // namespace mw
