// The recovery fault matrix (PR 3): seeded fault schedules drive supervised
// tasks through crash restarts, hang watchdog kills, Transaction::try_commit
// failures with in-step retries, gated effects, and a distributed failover
// race — all in one run. The contract for every seed in the sweep:
//
//   * every supervised task ends ok or quarantined (the supervisor never
//     wedges, and never reports success with wrong state);
//   * sink state is consistent: replayed transaction commits are idempotent
//     and gated effects fire exactly once;
//   * the RuntimeAuditor finds zero orphans, zero unresolved splits, zero
//     leaked pages;
//   * the same seed replays to the identical schedule digest and outcome.
//
// The sweep is env-overridable so CI can shard it:
//   MW_FAULT_SEED_BASE (default 1), MW_FAULT_SEED_COUNT (default 8).
// A failing seed prints its digest and full fired-fault log — the replay
// handle is the seed itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/runtime_auditor.hpp"
#include "dist/remote_alt.hpp"
#include "fault/fault.hpp"
#include "io/source_gate.hpp"
#include "io/transaction.hpp"
#include "super/supervisor.hpp"

namespace mw {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoull(v, nullptr, 10) : fallback;
}

struct MatrixOutcome {
  std::uint64_t digest = 0;
  std::string log;
  bool crashy_ok = false, hangy_ok = false, txn_ok = false;
  bool crashy_quarantined = false, txn_quarantined = false;
  std::size_t total_restarts = 0;
  std::uint32_t store_value = 0;
  std::uint64_t gate_executed = 0, gate_dropped = 0;
  std::uint64_t effects_emitted = 0;
  bool race_completed = false;
  std::size_t race_failovers = 0, race_restarts = 0;
  std::size_t race_preserved_bytes = 0;
  AuditReport audit;
};

MatrixOutcome run_matrix(std::uint64_t seed) {
  MatrixOutcome out;
  FaultInjector inj(seed);
  inj.arm("rmx.crash",
          FaultSpec::with_probability(FaultKind::kCrashException, 0.03)
              .limit(4));
  inj.arm("rmx.hang",
          FaultSpec::with_probability(FaultKind::kHang, 0.02).limit(2));
  inj.arm("rmx.txncrash",
          FaultSpec::with_probability(FaultKind::kCrashException, 0.04)
              .limit(3));
  inj.arm("txn.commit",
          FaultSpec::with_probability(FaultKind::kFailAlternative, 0.3)
              .limit(10));
  inj.arm("remote.node_crash",
          FaultSpec::with_probability(FaultKind::kNodeCrash, 0.5).limit(2));
  FaultScope scope(inj);

  RuntimeAuditor auditor;  // page baseline before any system state
  ProcessTable table;
  SourceGate gate(table, GatePolicy::kDefer);
  const Pid sentinel = table.create(kNoPid, 0, "rmx-driver");
  table.set_status(sentinel, ProcStatus::kRunning);
  PredicateSet preds;
  preds.assume_completes(sentinel);

  CheckpointSchedule sched;
  sched.interval = vt_us(500);

  // 1. A crash-prone counting task with incremental checkpoints.
  {
    TaskSpec t;
    t.name = "crashy";
    t.total_steps = 120;
    t.fault_point = "rmx.crash";
    t.step = [](SuperCtx& c) {
      c.space().store<std::uint32_t>(
          0, c.space().load<std::uint32_t>(0) + 1);
      c.space().store<std::uint32_t>(256 * (1 + c.step() % 6),
                                     static_cast<std::uint32_t>(c.step()));
    };
    Supervisor sup(RestartPolicy{}, sched);
    sup.attach(table);
    const SupervisedResult r = sup.run(t);
    out.crashy_ok = r.ok;
    out.crashy_quarantined = r.quarantined;
    out.total_restarts += r.restarts;
    if (r.ok) EXPECT_EQ(r.state.load<std::uint32_t>(0), 120u);
    EXPECT_TRUE(r.ok || r.quarantined);
  }

  // 2. A hang-prone task under a tight deadline watchdog.
  {
    TaskSpec t;
    t.name = "hangy";
    t.total_steps = 40;
    t.fault_point = "rmx.hang";
    t.step = [](SuperCtx& c) {
      c.space().store<std::uint32_t>(0,
                                     static_cast<std::uint32_t>(c.step()));
    };
    RestartPolicy policy;
    policy.attempt_deadline = vt_ms(6);
    Supervisor sup(policy, sched);
    sup.attach(table);
    const SupervisedResult r = sup.run(t);
    out.hangy_ok = r.ok;
    out.total_restarts += r.restarts;
    EXPECT_TRUE(r.ok || r.quarantined);
  }

  // 3. Transaction commits interleaved with supervised restarts: each step
  // publishes its counter through try_commit (retrying injected aborts) and
  // emits a gated effect. Replayed steps after a restart re-commit the same
  // value — idempotent — and their effects are suppressed by the ledger.
  std::vector<std::uint32_t> committed_effects;
  {
    BackingStore store(256);  // scoped: its pages must not outlive the audit
    const FileId file = store.create("rmx", 4);
    TaskSpec t;
    t.name = "txn";
    t.total_steps = 60;
    t.fault_point = "rmx.txncrash";
    t.step = [&store, file, &committed_effects](SuperCtx& c) {
      const auto v = static_cast<std::uint32_t>(c.step() + 1);
      for (;;) {  // bounded: the txn.commit arm has a fire limit
        Transaction txn(store, file);
        txn.store<std::uint32_t>(0, v);
        if (txn.try_commit()) break;
      }
      c.effect([&committed_effects, v] { committed_effects.push_back(v); });
    };
    Supervisor sup(RestartPolicy{}, sched);
    sup.attach(table);
    sup.attach_gate(gate, preds);
    const SupervisedResult r = sup.run(t);
    out.txn_ok = r.ok;
    out.txn_quarantined = r.quarantined;
    out.total_restarts += r.restarts;
    out.effects_emitted = r.effects_emitted;
    EXPECT_TRUE(r.ok || r.quarantined);
    if (r.ok) {
      EXPECT_EQ(store.load<std::uint32_t>(file, 0), 60u);
      // The sync released exactly one effect per step, in order.
      EXPECT_EQ(committed_effects.size(), 60u);
      for (std::size_t k = 0; k < committed_effects.size(); ++k)
        EXPECT_EQ(committed_effects[k], k + 1);
    } else {
      EXPECT_TRUE(committed_effects.empty());  // quarantine drops intents
    }
  }
  out.gate_executed = gate.executed();
  out.gate_dropped = gate.dropped();
  EXPECT_EQ(gate.deferred_pending(), 0u);

  // 4. The distributed failover race rides the same schedule.
  {
    RemoteForker forker{LinkModel{}, DistCost{}};
    AddressSpace image(4096, 32);
    for (int p = 0; p < 8; ++p) image.store<int>(4096ull * p, p);
    DistRaceOptions opts;
    opts.seed = seed;
    opts.checkpoint_interval = vt_ms(100);
    opts.max_failovers = 2;
    const DistributedRaceResult race = distributed_race(
        forker, image,
        {{vt_sec(2), true}, {vt_sec(1), true}, {vt_sec(3), true}}, opts);
    out.race_completed = !race.failed;
    out.race_failovers = race.failovers;
    out.race_restarts = race.restarts;
    out.race_preserved_bytes = race.work_preserved_bytes;
    EXPECT_TRUE(out.race_completed);  // failover or fallback, never a wedge
    EXPECT_LE(race.failovers, race.restarts);
    if (race.failovers > 0) EXPECT_GT(race.work_preserved_bytes, 0u);
  }

  // Every attempt pid the matrix created must have reached a terminal
  // status except the sentinel driver.
  for (const ProcessRecord& rec : table.snapshot())
    if (rec.pid != sentinel)
      EXPECT_TRUE(is_terminal(rec.status))
          << "pid " << rec.pid << " (" << rec.label << ")";
  table.set_status(sentinel, ProcStatus::kSynced);

  out.audit = auditor.run(table);
  out.digest = inj.schedule_digest();
  out.log = inj.log_string();
  return out;
}

TEST(RecoveryMatrix, SweepEndsCleanForEverySeed) {
  const std::uint64_t base = env_u64("MW_FAULT_SEED_BASE", 1);
  const std::uint64_t count = env_u64("MW_FAULT_SEED_COUNT", 8);
  std::size_t restarts_seen = 0, failovers_seen = 0;
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    const MatrixOutcome r = run_matrix(seed);
    restarts_seen += r.total_restarts;
    failovers_seen += r.race_failovers;
    EXPECT_TRUE(r.audit.clean())
        << "seed=" << seed << " digest=" << r.digest << "\n"
        << r.audit.to_string() << "\n" << r.log;
    EXPECT_EQ(r.audit.orphan_processes.size(), 0u) << "seed=" << seed;
    EXPECT_EQ(r.audit.unresolved_splits.size(), 0u) << "seed=" << seed;
    EXPECT_EQ(r.audit.leaked_pages, 0) << "seed=" << seed;
  }
  // The sweep is vacuous if no fault ever forced a recovery.
  EXPECT_GT(restarts_seen + failovers_seen, 0u);
}

TEST(RecoveryMatrix, SeedReplaysToIdenticalScheduleAndOutcome) {
  const std::uint64_t seed = env_u64("MW_FAULT_SEED_BASE", 1);
  const MatrixOutcome a = run_matrix(seed);
  const MatrixOutcome b = run_matrix(seed);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.crashy_ok, b.crashy_ok);
  EXPECT_EQ(a.hangy_ok, b.hangy_ok);
  EXPECT_EQ(a.txn_ok, b.txn_ok);
  EXPECT_EQ(a.total_restarts, b.total_restarts);
  EXPECT_EQ(a.gate_executed, b.gate_executed);
  EXPECT_EQ(a.race_failovers, b.race_failovers);
  EXPECT_EQ(a.race_preserved_bytes, b.race_preserved_bytes);
}

TEST(RecoveryMatrix, DifferentSeedsProduceDifferentSchedules) {
  EXPECT_NE(run_matrix(101).digest, run_matrix(202).digest);
}

}  // namespace
}  // namespace mw
