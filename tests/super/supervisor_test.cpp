// Supervisor: checkpoint-restart recovery under injected faults (PR 3).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/runtime_auditor.hpp"
#include "fault/fault.hpp"
#include "proc/process_table.hpp"
#include "super/supervisor.hpp"

namespace mw {
namespace {

// Deterministic workload: page 0 accumulates a running sum; each step also
// touches a data page so checkpoints have a real write set.
TaskSpec counting_task(std::size_t steps) {
  TaskSpec t;
  t.name = "count";
  t.total_steps = steps;
  t.step = [](SuperCtx& c) {
    const auto s = static_cast<std::uint32_t>(c.step());
    c.space().store<std::uint32_t>(0, c.space().load<std::uint32_t>(0) + s + 1);
    c.space().store<std::uint32_t>(256 * (1 + c.step() % 8), s);
  };
  return t;
}

std::uint32_t expected_sum(std::size_t steps) {
  return static_cast<std::uint32_t>(steps * (steps + 1) / 2);
}

CheckpointSchedule every_5_steps() {
  CheckpointSchedule s;
  s.interval = vt_us(500);  // 5 steps of the default vt_us(100) step cost
  return s;
}

TEST(RestartPolicy, BackoffIsCappedExponential) {
  RestartPolicy p;
  p.backoff_initial = vt_ms(5);
  p.backoff_factor = 2.0;
  p.backoff_cap = vt_ms(80);
  EXPECT_EQ(p.backoff_for(0), vt_ms(5));
  EXPECT_EQ(p.backoff_for(1), vt_ms(10));
  EXPECT_EQ(p.backoff_for(2), vt_ms(20));
  EXPECT_EQ(p.backoff_for(4), vt_ms(80));
  EXPECT_EQ(p.backoff_for(40), vt_ms(80));  // capped, no overflow
}

TEST(EffectLedger, AdmitsEachSequenceOnce) {
  EffectLedger l;
  EXPECT_TRUE(l.admit(0));
  EXPECT_TRUE(l.admit(1));
  EXPECT_FALSE(l.admit(0));  // replay
  EXPECT_FALSE(l.admit(1));
  EXPECT_TRUE(l.admit(2));
  EXPECT_EQ(l.recorded(), 3u);
  EXPECT_EQ(l.suppressed(), 2u);
  EXPECT_EQ(l.high_water(), 3u);
}

TEST(Supervisor, CompletesWithoutFaults) {
  Supervisor sup(RestartPolicy{}, every_5_steps());
  const SupervisedResult r = sup.run(counting_task(50));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_EQ(r.restarts, 0u);
  EXPECT_EQ(r.work_lost, 0);
  EXPECT_EQ(r.steps_executed, 50u);
  EXPECT_GT(r.checkpoints_full + r.checkpoints_delta, 0u);
  EXPECT_EQ(r.state.load<std::uint32_t>(0), expected_sum(50));
}

TEST(Supervisor, CrashRestartsFromNewestCheckpoint) {
  FaultInjector inj(1);
  // Crash on hit 22 = before executing step 22 of the first attempt; the
  // newest image covers through step 20 (taken after step 19).
  inj.arm("super.step", FaultSpec::once(FaultKind::kCrashException, 22));
  FaultScope scope(inj);
  Supervisor sup(RestartPolicy{}, every_5_steps());
  const SupervisedResult r = sup.run(counting_task(50));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_EQ(r.restarts, 1u);
  EXPECT_EQ(r.failures_crash, 1u);
  // Only steps 20 and 21 were lost and replayed.
  EXPECT_EQ(r.work_lost, vt_us(200));
  EXPECT_EQ(r.steps_executed, 52u);
  EXPECT_GT(r.restore_overhead, 0);
  EXPECT_GT(r.mttr(), 0);
  EXPECT_EQ(r.state.load<std::uint32_t>(0), expected_sum(50));
}

TEST(Supervisor, ScratchRestartLosesAllWork) {
  FaultInjector inj(1);
  inj.arm("super.step", FaultSpec::once(FaultKind::kCrashException, 22));
  FaultScope scope(inj);
  Supervisor sup(RestartPolicy{}, CheckpointSchedule{});  // disabled
  const SupervisedResult r = sup.run(counting_task(50));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.restarts, 1u);
  // All 22 completed steps were discarded.
  EXPECT_EQ(r.work_lost, vt_us(2200));
  EXPECT_EQ(r.steps_executed, 72u);
  EXPECT_EQ(r.checkpoints_full + r.checkpoints_delta, 0u);
  EXPECT_EQ(r.restore_overhead, 0);
  EXPECT_EQ(r.state.load<std::uint32_t>(0), expected_sum(50));
}

TEST(Supervisor, HangIsDetectedByDeadlineWatchdog) {
  FaultInjector inj(1);
  inj.arm("super.step", FaultSpec::once(FaultKind::kHang, 10));
  FaultScope scope(inj);
  RestartPolicy policy;
  policy.attempt_deadline = vt_ms(3);  // 20-step task = 2 ms of work
  Supervisor sup(policy, every_5_steps());
  const SupervisedResult r = sup.run(counting_task(20));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.failures_hang, 1u);
  EXPECT_EQ(r.failures_crash, 0u);
  // The hang cost the deadline's residue before the watchdog fired.
  EXPECT_GT(r.detect_latency, 0);
  EXPECT_GE(r.elapsed, vt_ms(3));
  EXPECT_EQ(r.state.load<std::uint32_t>(0), expected_sum(20));
}

TEST(Supervisor, DeterministicCrashLoopQuarantines) {
  FaultInjector inj(1);
  inj.arm("super.step", FaultSpec::always(FaultKind::kCrashException));
  FaultScope scope(inj);
  ProcessTable table;
  Supervisor sup(RestartPolicy{}, every_5_steps());
  sup.attach(table);
  const SupervisedResult r = sup.run(counting_task(50));
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.quarantined);
  // quarantine_after = 3 consecutive no-progress failures: 2 restarts.
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(r.restarts, 2u);
  ASSERT_NE(r.final_pid, kNoPid);
  EXPECT_EQ(table.status(r.final_pid), ProcStatus::kFailed);
  EXPECT_NE(table.get(r.final_pid).label.find("quarantined"),
            std::string::npos);
  // Every attempt pid reached a terminal status.
  for (const ProcessRecord& rec : table.snapshot())
    EXPECT_TRUE(is_terminal(rec.status)) << rec.label;
}

TEST(Supervisor, RestartBudgetExhaustionQuarantines) {
  FaultInjector inj(1);
  inj.arm("super.step", FaultSpec::always(FaultKind::kCrashException));
  FaultScope scope(inj);
  RestartPolicy policy;
  policy.max_restarts = 5;
  policy.quarantine_after = 1000;  // budget, not the loop detector
  Supervisor sup(policy, every_5_steps());
  const SupervisedResult r = sup.run(counting_task(50));
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.quarantined);
  EXPECT_EQ(r.restarts, 5u);
  EXPECT_EQ(r.attempts, 6u);
  EXPECT_GT(r.backoff_total, 0);
}

TEST(Supervisor, DeltaBytesTrackWriteSetNotResidentSet) {
  // Population phase touches 60 distinct pages; the steady state rewrites
  // only 4. Incremental images must stay near the write set while full
  // images carry the whole resident set.
  TaskSpec t;
  t.name = "popwrite";
  t.total_steps = 150;
  t.step = [](SuperCtx& c) {
    const std::size_t s = c.step();
    c.space().store<std::uint32_t>(0, static_cast<std::uint32_t>(s));
    const std::size_t page = s < 60 ? 1 + s : 1 + s % 4;
    c.space().store<std::uint32_t>(256 * page, static_cast<std::uint32_t>(s));
  };

  CheckpointSchedule inc;
  inc.interval = vt_us(400);
  CheckpointSchedule full_only = inc;
  full_only.incremental = false;

  Supervisor sup_inc(RestartPolicy{}, inc);
  const SupervisedResult ri = sup_inc.run(t);
  ASSERT_TRUE(ri.ok);
  ASSERT_GT(ri.checkpoints_delta, 0u);

  Supervisor sup_full(RestartPolicy{}, full_only);
  const SupervisedResult rf = sup_full.run(t);
  ASSERT_TRUE(rf.ok);
  ASSERT_GT(rf.checkpoints_full, 0u);
  EXPECT_EQ(rf.checkpoints_delta, 0u);

  const std::uint64_t avg_delta = ri.checkpoint_bytes_delta / ri.checkpoints_delta;
  const std::uint64_t avg_full = rf.checkpoint_bytes_full / rf.checkpoints_full;
  EXPECT_LT(avg_delta * 4, avg_full);
}

TEST(Supervisor, FullEveryBoundsTheChain) {
  CheckpointSchedule s;
  s.interval = vt_us(300);
  s.full_every = 4;
  Supervisor sup(RestartPolicy{}, s);
  const SupervisedResult r = sup.run(counting_task(100));
  ASSERT_TRUE(r.ok);
  EXPECT_GE(r.checkpoints_full, 2u);  // the cap forced periodic fulls
  EXPECT_LE(r.checkpoints_delta, r.checkpoints_full * s.full_every);
}

TEST(Supervisor, ReplaysDeterministicallyUnderSameSeed) {
  auto run_once = [] {
    FaultInjector inj(42);
    inj.arm("super.step",
            FaultSpec::with_probability(FaultKind::kCrashException, 0.02)
                .limit(3));
    FaultScope scope(inj);
    Supervisor sup(RestartPolicy{}, every_5_steps());
    const SupervisedResult r = sup.run(counting_task(100));
    return std::tuple(r.ok, r.restarts, r.elapsed, r.work_lost,
                      inj.schedule_digest());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Supervisor, EffectsEmittedExactlyOnceAcrossRestarts) {
  FaultInjector inj(1);
  inj.arm("super.step", FaultSpec::once(FaultKind::kCrashException, 22));
  FaultScope scope(inj);

  std::vector<std::size_t> log;
  TaskSpec t = counting_task(50);
  auto inner = t.step;
  t.step = [&log, inner](SuperCtx& c) {
    inner(c);
    const std::size_t s = c.step();
    c.effect([&log, s] { log.push_back(s); });
  };

  Supervisor sup(RestartPolicy{}, every_5_steps());
  const SupervisedResult r = sup.run(t);
  ASSERT_TRUE(r.ok);
  // Steps 20 and 21 were replayed, but their effects were suppressed.
  EXPECT_EQ(r.effects_suppressed, 2u);
  EXPECT_EQ(r.effects_emitted, 50u);
  ASSERT_EQ(log.size(), 50u);
  for (std::size_t s = 0; s < log.size(); ++s) EXPECT_EQ(log[s], s);
}

TEST(Supervisor, RecoveryLeavesAuditorClean) {
  RuntimeAuditor auditor;  // page baseline before any system state
  ProcessTable table;
  FaultInjector inj(9);
  inj.arm("super.step",
          FaultSpec::with_probability(FaultKind::kCrashException, 0.05)
              .limit(3));
  FaultScope scope(inj);
  Supervisor sup(RestartPolicy{}, every_5_steps());
  sup.attach(table);
  const SupervisedResult r = sup.run(counting_task(80));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(table.status(r.final_pid), ProcStatus::kSynced);

  auditor.add_table(r.state.table());
  const AuditReport report = auditor.run(table);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

}  // namespace
}  // namespace mw
