// Supervised restarts × SourceGate (§2.4.2): a restarted attempt runs
// under a fresh pid, and its predecessor's deferred source intents must
// follow it across the restart — executed exactly once when the final
// attempt syncs, dropped if the task is quarantined.
#include <gtest/gtest.h>

#include <vector>

#include "fault/fault.hpp"
#include "io/source_gate.hpp"
#include "super/supervisor.hpp"

namespace mw {
namespace {

// The supervised task speculates on some other process S completing, so
// every effect it emits is deferred by the gate until its own fate is known.
struct GateFixture {
  ProcessTable table;
  SourceGate gate{table, GatePolicy::kDefer};
  Pid sentinel = table.create(kNoPid, 0, "speculation-driver");
  PredicateSet preds;

  GateFixture() {
    table.set_status(sentinel, ProcStatus::kRunning);
    preds.assume_completes(sentinel);
  }
};

TaskSpec emitting_task(std::size_t steps, std::vector<std::size_t>& log) {
  TaskSpec t;
  t.name = "emit";
  t.total_steps = steps;
  t.step = [&log](SuperCtx& c) {
    c.space().store<std::uint32_t>(256 * (c.step() % 8),
                                   static_cast<std::uint32_t>(c.step()));
    const std::size_t s = c.step();
    c.effect([&log, s] { log.push_back(s); });
  };
  return t;
}

TEST(ExactlyOnceGate, DeferredIntentsSurviveRestartAndFireOnceOnSync) {
  GateFixture fx;
  FaultInjector inj(1);
  inj.arm("super.step", FaultSpec::once(FaultKind::kCrashException, 22));
  FaultScope scope(inj);

  std::vector<std::size_t> log;
  CheckpointSchedule sched;
  sched.interval = vt_us(500);
  Supervisor sup(RestartPolicy{}, sched);
  sup.attach(fx.table);
  sup.attach_gate(fx.gate, fx.preds);

  const SupervisedResult r = sup.run(emitting_task(50, log));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.restarts, 1u);
  // Nothing fired while the task was speculative and running...
  EXPECT_EQ(fx.gate.deferred_pending(), 0u);
  EXPECT_EQ(fx.gate.dropped(), 0u);
  // ...and the sync released every intent exactly once, in emission order,
  // despite two of the steps having been replayed after the restart.
  EXPECT_EQ(r.effects_suppressed, 2u);
  EXPECT_EQ(fx.gate.executed(), 50u);
  ASSERT_EQ(log.size(), 50u);
  for (std::size_t s = 0; s < log.size(); ++s) EXPECT_EQ(log[s], s);
}

TEST(ExactlyOnceGate, IntentsArePendingUntilTheFinalSync) {
  GateFixture fx;
  std::vector<std::size_t> log;
  TaskSpec t = emitting_task(10, log);
  // Snoop mid-run: after half the steps, effects are queued, not executed.
  t.step = [&fx, &log, inner = t.step](SuperCtx& c) {
    inner(c);
    if (c.step() == 5) {
      EXPECT_EQ(fx.gate.executed(), 0u);
      EXPECT_EQ(fx.gate.deferred_pending(), 6u);
      EXPECT_TRUE(log.empty());
    }
  };
  Supervisor sup(RestartPolicy{}, CheckpointSchedule{});
  sup.attach(fx.table);
  sup.attach_gate(fx.gate, fx.preds);
  ASSERT_TRUE(sup.run(t).ok);
  EXPECT_EQ(log.size(), 10u);
}

TEST(ExactlyOnceGate, QuarantineDropsAllDeferredIntents) {
  GateFixture fx;
  FaultInjector inj(1);
  // Every attempt executes steps 0 and 1, then crashes at step 2: a
  // deterministic crash loop. Its two admitted intents must never fire.
  inj.arm("super.step",
          FaultSpec::every_nth(FaultKind::kCrashException, 3, 2));
  FaultScope scope(inj);

  std::vector<std::size_t> log;
  Supervisor sup(RestartPolicy{}, CheckpointSchedule{});
  sup.attach(fx.table);
  sup.attach_gate(fx.gate, fx.preds);
  const SupervisedResult r = sup.run(emitting_task(50, log));
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.quarantined);
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(fx.gate.executed(), 0u);
  EXPECT_EQ(fx.gate.deferred_pending(), 0u);
  EXPECT_EQ(fx.gate.dropped(), 2u);  // the ledger admitted steps 0 and 1 once
  EXPECT_EQ(r.effects_emitted, 2u);
  EXPECT_GT(r.effects_suppressed, 0u);  // the replays in later attempts
}

}  // namespace
}  // namespace mw
