#include "model/perf_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mw {
namespace {

TEST(PerfModel, PiFormulaMatchesDefinition) {
  // PI = R_mu / (1 + R_o).
  EXPECT_DOUBLE_EQ(performance_improvement(2.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(performance_improvement(2.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(performance_improvement(3.0, 0.5), 2.0);
}

TEST(PerfModel, TauMeanAndBest) {
  std::vector<double> t{4.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(tau_mean(t), 4.0);
  EXPECT_DOUBLE_EQ(tau_best(t), 2.0);
  EXPECT_DOUBLE_EQ(dispersion_ratio(t), 2.0);
}

TEST(PerfModel, MeasuredPiAgreesWithRatioForm) {
  std::vector<double> t{4.0, 2.0, 6.0};
  const double overhead = 1.0;
  const double direct = measured_pi(t, overhead);       // 4/(2+1)
  const double via_ratios = performance_improvement(
      dispersion_ratio(t), overhead_ratio(overhead, t));
  EXPECT_NEAR(direct, via_ratios, 1e-12);
  EXPECT_NEAR(direct, 4.0 / 3.0, 1e-12);
}

TEST(PerfModel, ParallelWinsIff) {
  // Equal alternatives, any overhead: parallel cannot win.
  std::vector<double> equal{3.0, 3.0, 3.0};
  EXPECT_FALSE(parallel_wins(equal, 0.1));
  // Dispersed alternatives with small overhead: wins.
  std::vector<double> spread{1.0, 5.0, 9.0};
  EXPECT_TRUE(parallel_wins(spread, 0.5));
  // Same spread, overwhelming overhead: loses.
  EXPECT_FALSE(parallel_wins(spread, 10.0));
}

TEST(PerfModel, BreakEvenBoundary) {
  // mean = 4, best = 2: wins iff overhead < 2.
  std::vector<double> t{2.0, 6.0};
  EXPECT_TRUE(parallel_wins(t, 1.99));
  EXPECT_FALSE(parallel_wins(t, 2.0));
}

TEST(PerfModel, SuperlinearWithSufficientVariance) {
  // §3.3: "with sufficient variance, and small enough overhead, N
  // processors can exhibit superlinear speedup". N=2, mean=50.5, best=1:
  // PI = 50.5 > 2.
  std::vector<double> t{1.0, 100.0};
  EXPECT_TRUE(superlinear(t, 0.0));
  // With equal times there is no speedup at all.
  std::vector<double> eq{1.0, 1.0};
  EXPECT_FALSE(superlinear(eq, 0.0));
}

TEST(PerfModel, Figure3IsALine) {
  auto series = figure3_series(0.5, 0.0, 5.0, 26);
  ASSERT_EQ(series.size(), 26u);
  EXPECT_DOUBLE_EQ(series.front().x, 0.0);
  EXPECT_DOUBLE_EQ(series.back().x, 5.0);
  // Slope 1/(1+0.5) = 2/3 everywhere.
  for (std::size_t i = 1; i < series.size(); ++i) {
    const double slope = (series[i].pi - series[i - 1].pi) /
                         (series[i].x - series[i - 1].x);
    EXPECT_NEAR(slope, 2.0 / 3.0, 1e-9);
  }
}

TEST(PerfModel, Figure3PassesThroughKnownPoints) {
  // At R_mu = 1.5 and R_o = 0.5: PI = 1 — the break-even the figure shows.
  EXPECT_NEAR(performance_improvement(1.5, 0.5), 1.0, 1e-12);
}

TEST(PerfModel, Figure4IsLogSpacedAndDecreasing) {
  auto series = figure4_series();
  ASSERT_GE(series.size(), 2u);
  EXPECT_NEAR(series.front().x, 0.01, 1e-9);
  EXPECT_NEAR(series.back().x, 1.0, 1e-9);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].x, series[i - 1].x);
    EXPECT_LT(series[i].pi, series[i - 1].pi);  // more overhead, less PI
  }
  // Endpoints: PI = e/1.01 and e/2.
  EXPECT_NEAR(series.front().pi, std::exp(1.0) / 1.01, 1e-9);
  EXPECT_NEAR(series.back().pi, std::exp(1.0) / 2.0, 1e-9);
}

TEST(PerfModel, Figure4LogSpacingIsGeometric) {
  auto series = figure4_series(std::exp(1.0), 0.01, 1.0, 5);
  // Ratios between consecutive x must be constant.
  const double r0 = series[1].x / series[0].x;
  for (std::size_t i = 2; i < series.size(); ++i)
    EXPECT_NEAR(series[i].x / series[i - 1].x, r0, 1e-9);
}

TEST(PerfModel, DomainAnalysisAggregates) {
  // Two inputs: one where speculation wins big, one where it loses.
  std::vector<std::vector<double>> times{{1.0, 10.0}, {5.0, 5.0}};
  std::vector<double> overheads{0.5, 0.5};
  auto d = domain_analysis(times, overheads);
  EXPECT_DOUBLE_EQ(d.max_pi, 5.5 / 1.5);
  EXPECT_DOUBLE_EQ(d.min_pi, 5.0 / 5.5);
  EXPECT_DOUBLE_EQ(d.fraction_improved, 0.5);
  EXPECT_NEAR(d.mean_pi, (5.5 / 1.5 + 5.0 / 5.5) / 2.0, 1e-12);
}

TEST(PerfModel, DomainAnalysisBestCaseComplementaryAlgorithms) {
  // §3.3: the best case is algorithms with complementary weak points —
  // every input has someone fast.
  std::vector<std::vector<double>> complementary{
      {1.0, 9.0}, {9.0, 1.0}, {1.0, 9.0}};
  std::vector<double> overheads{0.1, 0.1, 0.1};
  auto d = domain_analysis(complementary, overheads);
  EXPECT_DOUBLE_EQ(d.fraction_improved, 1.0);
  EXPECT_GT(d.mean_pi, 4.0);
}

TEST(PerfModelDeath, InvalidInputsAbort) {
  std::vector<double> empty;
  EXPECT_DEATH(tau_mean(empty), "MW_CHECK");
  EXPECT_DEATH(performance_improvement(1.0, -0.1), "MW_CHECK");
}

}  // namespace
}  // namespace mw
