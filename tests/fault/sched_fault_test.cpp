// Fault injection on the speculation scheduler's three points:
//
//   sched.steal  — a worker dies with a stolen task in hand: the task is
//                  terminally kFaulted (a crash, never a hang);
//   sched.revoke — a pruning pass misses: the sibling's body runs anyway
//                  and cooperative cancellation picks up the slack;
//   sched.admit  — the admission controller kills (reject) or delays
//                  (forced defer) a race before any world exists.
//
// Plus the recovery contract: a Supervisor attempt dispatched through the
// pool (always via the stolen path) that crashes is restarted from its
// checkpoint chain with the effect ledger still exactly-once.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "core/runtime_auditor.hpp"
#include "core/spec_scheduler.hpp"
#include "fault/fault.hpp"
#include "super/supervisor.hpp"

namespace mw {
namespace {

RuntimeConfig det_pool(std::uint64_t seed, double steal_prob,
                       PolicyMode policy = PolicyMode::kStatic) {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kPool;
  cfg.page_size = 256;
  cfg.num_pages = 16;
  cfg.pool.deterministic_seed = seed;
  cfg.pool.workers = 2;
  cfg.pool.deterministic_steal_prob = steal_prob;
  cfg.policy.mode = policy;
  return cfg;
}

std::vector<Alternative> two_way_race() {
  std::vector<Alternative> race;
  race.push_back({"w", nullptr,
                  [](AltContext& ctx) { ctx.space().store<int>(0, 1); },
                  nullptr, 1.0});
  race.push_back({"l", nullptr,
                  [](AltContext& ctx) { ctx.fail("scripted"); }, nullptr,
                  0.0});
  return race;
}

TEST(SchedFault, StealKillFaultsEveryStolenTask) {
  // steal_prob=1: every deterministic take goes through the steal path, so
  // an always-on kill fault terminates every sibling before its body runs.
  // The block degrades to kAllFailed — a decided failure, never a wedge.
  FaultInjector inj(1);
  inj.arm("sched.steal", FaultSpec::always(FaultKind::kCrashException));
  FaultScope scope(inj);
  Runtime rt(det_pool(4, /*steal_prob=*/1.0));
  RuntimeAuditor auditor;
  World root = rt.make_root("steal-kill");
  auditor.add_world(root);
  const AltOutcome out = run_alternatives(rt, root, two_way_race(), {});
  EXPECT_TRUE(out.failed);
  EXPECT_EQ(out.failure, AltFailure::kAllFailed);
  for (const AltReport& rep : out.alts) {
    EXPECT_FALSE(rep.ran);  // killed at the steal point, body never ran
    EXPECT_EQ(rt.processes().status(rep.pid), ProcStatus::kFailed);
  }
  EXPECT_EQ(rt.scheduler().stats().faulted, 2u);
  const AuditReport audit = auditor.run(rt.processes());
  EXPECT_TRUE(audit.clean()) << audit.to_string();
}

TEST(SchedFault, StealFaultDoesNotFireOnOwnerPops) {
  // steal_prob=0: the same armed fault never triggers because nothing is
  // stolen — the fault point really sits on the steal path only.
  FaultInjector inj(1);
  inj.arm("sched.steal", FaultSpec::always(FaultKind::kCrashException));
  FaultScope scope(inj);
  Runtime rt(det_pool(4, /*steal_prob=*/0.0));
  World root = rt.make_root("steal-quiet");
  const AltOutcome out = run_alternatives(rt, root, two_way_race(), {});
  ASSERT_FALSE(out.failed);
  EXPECT_EQ(out.winner_name, "w");
  EXPECT_EQ(inj.fires("sched.steal"), 0u);
}

TEST(SchedFault, RevokeMissDegradesToCooperativeCancellation) {
  // Every revoke misses: the loser stays queued, runs its body, and is
  // eliminated the cooperative way. Same outcome, no free elimination.
  FaultInjector inj(2);
  inj.arm("sched.revoke", FaultSpec::always(FaultKind::kFailAlternative));
  FaultScope scope(inj);
  Runtime rt(det_pool(6, 0.5));
  RuntimeAuditor auditor;
  World root = rt.make_root("revoke-miss");
  auditor.add_world(root);
  std::atomic<int> loser_ran{0};
  std::vector<Alternative> race;
  race.push_back({"w", nullptr,
                  [](AltContext& ctx) { ctx.space().store<int>(0, 1); },
                  nullptr, 1.0});
  race.push_back({"l", nullptr,
                  [&](AltContext& ctx) {
                    ++loser_ran;
                    ctx.checkpoint();  // observes the cancellation instead
                    ctx.fail("lost anyway");
                  },
                  nullptr, 0.0});
  const AltOutcome out = run_alternatives(rt, root, race, {});
  ASSERT_FALSE(out.failed);
  EXPECT_EQ(out.winner_name, "w");
  EXPECT_GT(inj.fires("sched.revoke"), 0u);
  EXPECT_EQ(loser_ran.load(), 1);          // the miss let the body run
  EXPECT_FALSE(out.alts[1].revoked);       // no free elimination claimed
  EXPECT_EQ(rt.scheduler().stats().revoked, 0u);
  const AuditReport audit = auditor.run(rt.processes());
  EXPECT_TRUE(audit.clean()) << audit.to_string();
}

TEST(SchedFault, AdmitKillRejectsTheRaceBeforeAnyWorldExists) {
  FaultInjector inj(3);
  inj.arm("sched.admit", FaultSpec::always(FaultKind::kFailAlternative));
  FaultScope scope(inj);
  Runtime rt(det_pool(4, 0.5));
  RuntimeAuditor auditor;
  World root = rt.make_root("admit-kill");
  auditor.add_world(root);
  const AltOutcome out = run_alternatives(rt, root, two_way_race(), {});
  EXPECT_TRUE(out.failed);
  EXPECT_EQ(out.failure, AltFailure::kAdmissionRejected);
  for (const AltReport& rep : out.alts) EXPECT_FALSE(rep.spawned);
  EXPECT_EQ(rt.scheduler().live_worlds(), 0u);
  const AuditReport audit = auditor.run(rt.processes());
  EXPECT_TRUE(audit.clean()) << audit.to_string();
}

TEST(SchedFault, AdmitDelayForcesADeferThenAdmits) {
  FaultInjector inj(4);
  inj.arm("sched.admit",
          FaultSpec::once(FaultKind::kDelay, 0).delayed(vt_us(100)));
  FaultScope scope(inj);
  Runtime rt(det_pool(4, 0.5));
  World root = rt.make_root("admit-delay");
  const AltOutcome out = run_alternatives(rt, root, two_way_race(), {});
  ASSERT_FALSE(out.failed);  // deferred, then admitted: semantics unchanged
  EXPECT_EQ(out.winner_name, "w");
  EXPECT_EQ(rt.scheduler().stats().admission_deferred, 1u);
  EXPECT_EQ(rt.scheduler().stats().admission_rejected, 0u);
}

// ---- Adaptive-policy rows: the same fault points with the closed-loop
// policy engine steering admission width and submission order. The faults
// must stay contained and the seed must still replay. ------------------

TEST(SchedFault, AdmitKillStillRejectsWithAdaptivePolicy) {
  // The admission fault fires before the policy's width decision matters:
  // adaptive mode must not resurrect a rejected race or leak a world.
  FaultInjector inj(3);
  inj.arm("sched.admit", FaultSpec::always(FaultKind::kFailAlternative));
  FaultScope scope(inj);
  Runtime rt(det_pool(4, 0.5, PolicyMode::kAdaptive));
  RuntimeAuditor auditor;
  World root = rt.make_root("admit-kill-adaptive");
  auditor.add_world(root);
  const AltOutcome out = run_alternatives(rt, root, two_way_race(), {});
  EXPECT_TRUE(out.failed);
  EXPECT_EQ(out.failure, AltFailure::kAdmissionRejected);
  for (const AltReport& rep : out.alts) EXPECT_FALSE(rep.spawned);
  EXPECT_EQ(rt.scheduler().live_worlds(), 0u);
  const AuditReport audit = auditor.run(rt.processes());
  EXPECT_TRUE(audit.clean()) << audit.to_string();
}

TEST(SchedFault, AdaptiveRevokeMissStaysExactlyOnceAndClean) {
  // Revoke misses with the adaptive planner reordering submissions: the
  // loser still runs at most once and cancels cooperatively.
  FaultInjector inj(2);
  inj.arm("sched.revoke", FaultSpec::always(FaultKind::kFailAlternative));
  FaultScope scope(inj);
  Runtime rt(det_pool(6, 0.5, PolicyMode::kAdaptive));
  RuntimeAuditor auditor;
  World root = rt.make_root("revoke-miss-adaptive");
  auditor.add_world(root);
  std::atomic<int> loser_ran{0};
  for (int r = 0; r < 8; ++r) {
    std::vector<Alternative> race;
    race.push_back({"w", nullptr,
                    [](AltContext& ctx) { ctx.space().store<int>(0, 1); },
                    nullptr, 1.0});
    race.push_back({"l", nullptr,
                    [&](AltContext& ctx) {
                      ++loser_ran;
                      ctx.checkpoint();
                      ctx.fail("lost anyway");
                    },
                    nullptr, 0.0});
    const AltOutcome out = run_alternatives(rt, root, race, {});
    ASSERT_FALSE(out.failed) << "race " << r;
    EXPECT_EQ(out.winner_name, "w") << "race " << r;
  }
  EXPECT_LE(loser_ran.load(), 8);  // each loser body at most once
  EXPECT_EQ(rt.scheduler().stats().revoked, 0u);
  const AuditReport audit = auditor.run(rt.processes());
  EXPECT_TRUE(audit.clean()) << audit.to_string();
}

TEST(SchedFault, AdaptiveFaultScheduleReplaysPerSeed) {
  // Digest replay with the policy in the loop: the same seed drives the
  // same fault schedule to the same winners, flags, and fire counts even
  // though the adaptive planner is reordering and learning throughout.
  auto run_once = [](std::uint64_t seed) {
    FaultInjector inj(seed);
    inj.arm("sched.steal",
            FaultSpec::with_probability(FaultKind::kCrashException, 0.2));
    FaultScope scope(inj);
    Runtime rt(det_pool(seed, 0.5, PolicyMode::kAdaptive));
    World root = rt.make_root("adaptive-replay");
    std::string fp;
    for (int r = 0; r < 10; ++r) {
      const AltOutcome out = run_alternatives(rt, root, two_way_race(), {});
      fp += out.failed ? 'F' : 'k';
      fp += out.winner ? std::to_string(*out.winner) : "x";
      for (const AltReport& a : out.alts)
        fp += a.ran ? 'r' : (a.revoked ? 'v' : '.');
      fp += '/';
    }
    fp += "fires=" + std::to_string(inj.fires("sched.steal"));
    fp += " digest=" + inj.schedule_digest();
    return fp;
  };
  const std::uint64_t base = []() {
    const char* v = std::getenv("MW_FAULT_SEED_BASE");
    return v ? std::strtoull(v, nullptr, 10) : 1;
  }();
  const std::uint64_t count = []() {
    const char* v = std::getenv("MW_FAULT_SEED_COUNT");
    return v ? std::strtoull(v, nullptr, 10) : 4;
  }();
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    EXPECT_EQ(run_once(seed), run_once(seed)) << "seed=" << seed;
  }
}

// ---- Supervisor recovery through the pool ----------------------------

TEST(SchedFault, SupervisorRecoversAttemptKilledAtTheStealPoint) {
  // run_on dispatches the attempt through the shared inbox, so the worker
  // always steals it; a once() kill fault takes down the first attempt
  // before a single step runs. The supervisor must see a crash failure and
  // restart — and the restarted attempt emits every effect exactly once.
  FaultInjector inj(5);
  inj.arm("sched.steal", FaultSpec::once(FaultKind::kCrashException, 0));
  FaultScope scope(inj);

  SchedConfig pool_cfg;
  pool_cfg.workers = 1;
  SpecScheduler sched(pool_cfg);

  std::atomic<int> observed{0};
  TaskSpec task;
  task.name = "stolen";
  task.total_steps = 20;
  task.step = [&](SuperCtx& c) {
    const auto s = static_cast<std::uint32_t>(c.step());
    c.space().store<std::uint32_t>(0,
                                   c.space().load<std::uint32_t>(0) + 1);
    c.effect([&observed] { ++observed; });
    (void)s;
  };
  task.fault_point = "super.none";  // no in-step faults: only the steal kill

  Supervisor sup(RestartPolicy{}, CheckpointSchedule{});
  const SupervisedResult r = sup.run_on(sched, task);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_EQ(r.failures_crash, 1u);
  EXPECT_EQ(r.state.load<std::uint32_t>(0), 20u);
  EXPECT_EQ(observed.load(), 20);  // exactly once despite the dead attempt
  EXPECT_EQ(r.effects_emitted, 20u);
  EXPECT_EQ(r.effects_suppressed, 0u);  // attempt 1 never emitted anything
}

TEST(SchedFault, SupervisorLedgerStaysExactlyOnceAcrossPoolRestart) {
  // The crash lands *inside* the stolen attempt (step fault), so the
  // restart replays completed steps; the ledger must swallow the replayed
  // effect emissions.
  FaultInjector inj(6);
  inj.arm("super.step", FaultSpec::once(FaultKind::kCrashException, 12));
  FaultScope scope(inj);

  SchedConfig pool_cfg;
  pool_cfg.workers = 1;
  SpecScheduler sched(pool_cfg);

  std::atomic<int> observed{0};
  TaskSpec task;
  task.name = "replayed";
  task.total_steps = 20;
  task.step = [&](SuperCtx& c) {
    c.space().store<std::uint32_t>(0,
                                   c.space().load<std::uint32_t>(0) + 1);
    c.effect([&observed] { ++observed; });
  };

  Supervisor sup(RestartPolicy{}, CheckpointSchedule{});  // no checkpoints
  const SupervisedResult r = sup.run_on(sched, task);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_EQ(r.failures_crash, 1u);
  EXPECT_EQ(r.state.load<std::uint32_t>(0), 20u);
  EXPECT_EQ(observed.load(), 20);       // the observable world saw each once
  EXPECT_EQ(r.effects_emitted, 20u);
  EXPECT_EQ(r.effects_suppressed, 12u);  // the replayed prefix was swallowed
}

TEST(SchedFault, RunOnWithoutFaultsMatchesRun) {
  SchedConfig pool_cfg;
  pool_cfg.workers = 1;
  SpecScheduler sched(pool_cfg);
  TaskSpec task;
  task.total_steps = 30;
  task.step = [](SuperCtx& c) {
    c.space().store<std::uint32_t>(0, c.space().load<std::uint32_t>(0) + 2);
  };
  Supervisor sup(RestartPolicy{}, CheckpointSchedule{});
  const SupervisedResult inline_r = sup.run(task);
  const SupervisedResult pool_r = sup.run_on(sched, task);
  ASSERT_TRUE(inline_r.ok);
  ASSERT_TRUE(pool_r.ok);
  EXPECT_EQ(pool_r.attempts, 1u);
  EXPECT_EQ(pool_r.state.load<std::uint32_t>(0),
            inline_r.state.load<std::uint32_t>(0));
  EXPECT_EQ(pool_r.steps_executed, inline_r.steps_executed);
}

}  // namespace
}  // namespace mw
