// The randomized fault-matrix integration test: a fixed seed drives a
// probabilistic mix of injected faults — alternatives that fail, crash
// with a foreign exception, or hang; a lossy network under a distributed
// race — across a sequence of alternative blocks. The contract under any
// schedule the seed produces:
//
//   * every block completes (a winner, kAllFailed, or kTimeout — alt_wait
//     never wedges);
//   * the RuntimeAuditor finds zero orphan processes, zero unresolved
//     splits, zero leaked pages;
//   * replaying the same seed reproduces the identical fault schedule
//     (schedule_digest) and the identical outcomes — a failing seed is a
//     bug report.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "core/runtime_auditor.hpp"
#include "dist/remote_alt.hpp"
#include "fault/fault.hpp"
#include "io/transaction.hpp"
#include "rb/recovery_block.hpp"

namespace mw {
namespace {

struct MatrixRun {
  std::uint64_t digest = 0;
  std::vector<int> winners;        // per block: winner index, -1 = failed
  std::vector<VDuration> elapsed;  // per block
  std::size_t race_winner = 0;
  bool race_failed = true;
  AuditReport audit;
};

/// One full matrix run on the virtual backend. Message loss 20%, a
/// crash-prone child, a hang-prone child, a flaky child, 20 blocks.
MatrixRun run_matrix(std::uint64_t seed) {
  MatrixRun out;
  FaultInjector inj(seed);
  inj.arm("mx.flaky", FaultSpec::with_probability(FaultKind::kFailAlternative, 0.4));
  inj.arm("mx.crash", FaultSpec::with_probability(FaultKind::kCrashException, 0.5));
  inj.arm("mx.hang", FaultSpec::with_probability(FaultKind::kHang, 0.5));
  FaultScope scope(inj);

  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = 4;
  Runtime rt(cfg);

  RuntimeAuditor auditor;  // baseline captured before any world exists
  World root = rt.make_root("matrix");
  auditor.add_world(root);

  for (int b = 0; b < 20; ++b) {
    AltOptions opts;
    opts.timeout = vt_ms(50);
    const AltOutcome ao =
        AltBlock(rt, root)
            .alt("good",
                 [b](AltContext& ctx) { ctx.work(vt_ms(10) + vt_us(100 * b)); })
            .alt("flaky",
                 [](AltContext& ctx) {
                   ctx.work(vt_ms(4));
                   ctx.fault_point("mx.flaky");
                   ctx.work(vt_ms(4));
                 })
            .alt("crashy",
                 [](AltContext& ctx) {
                   ctx.work(vt_ms(6));
                   ctx.fault_point("mx.crash");
                 })
            .alt("hangy",
                 [](AltContext& ctx) {
                   ctx.work(vt_ms(6));
                   ctx.fault_point("mx.hang");
                 })
            .timeout(opts.timeout)
            .run();
    out.winners.push_back(ao.winner ? static_cast<int>(*ao.winner) : -1);
    out.elapsed.push_back(ao.elapsed);
    // The block resolved one way or another — never wedged.
    EXPECT_TRUE(ao.winner.has_value() || ao.failed);
  }

  // A distributed race over a 20%-lossy link rides the same seed.
  RemoteForker forker{[] {
                        LinkModel l;
                        l.loss_probability = 0.2;
                        return l;
                      }(),
                      DistCost{}};
  AddressSpace image(4096, 32);
  for (int p = 0; p < 8; ++p) image.store<int>(4096ull * p, p);
  auditor.add_table(image.table());  // owned state, not a leak
  DistRaceOptions ropts;
  ropts.seed = seed;
  const DistributedRaceResult race = distributed_race(
      forker, image,
      {{vt_sec(2), true}, {vt_sec(1), true}, {vt_sec(3), true}}, ropts);
  out.race_failed = race.failed;
  out.race_winner = race.winner;

  out.audit = auditor.run(rt.processes());
  out.digest = inj.schedule_digest();
  return out;
}

TEST(FaultMatrix, EveryBlockCompletesAndRuntimeAuditsClean) {
  const MatrixRun r = run_matrix(0xfeedbeef);
  EXPECT_EQ(r.winners.size(), 20u);
  EXPECT_TRUE(r.audit.clean()) << r.audit.to_string();
  EXPECT_EQ(r.audit.orphan_processes.size(), 0u);
  EXPECT_EQ(r.audit.unresolved_splits.size(), 0u);
  EXPECT_EQ(r.audit.leaked_pages, 0);
  EXPECT_FALSE(r.race_failed);
}

TEST(FaultMatrix, FaultsActuallyFired) {
  // The matrix is vacuous if the probabilities never trip: with 20 blocks
  // at 40–50% per point, every fault class fires for this seed.
  FaultInjector probe(0xfeedbeef);
  {
    // Re-run under a local scope to inspect the per-point counters.
    probe.arm("mx.flaky",
              FaultSpec::with_probability(FaultKind::kFailAlternative, 0.4));
    probe.arm("mx.crash",
              FaultSpec::with_probability(FaultKind::kCrashException, 0.5));
    probe.arm("mx.hang", FaultSpec::with_probability(FaultKind::kHang, 0.5));
  }
  FaultScope scope(probe);
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  Runtime rt(cfg);
  World root = rt.make_root();
  for (int b = 0; b < 20; ++b) {
    AltBlock(rt, root)
        .alt("good", [](AltContext& ctx) { ctx.work(vt_ms(10)); })
        .alt("flaky",
             [](AltContext& ctx) { ctx.fault_point("mx.flaky"); })
        .alt("crashy",
             [](AltContext& ctx) { ctx.fault_point("mx.crash"); })
        .alt("hangy", [](AltContext& ctx) { ctx.fault_point("mx.hang"); })
        .timeout(vt_ms(50))
        .run();
  }
  EXPECT_GT(probe.fires("mx.flaky"), 0u);
  EXPECT_GT(probe.fires("mx.crash"), 0u);
  EXPECT_GT(probe.fires("mx.hang"), 0u);
}

TEST(FaultMatrix, ReplayingTheSeedReproducesScheduleAndOutcome) {
  const MatrixRun a = run_matrix(0xfeedbeef);
  const MatrixRun b = run_matrix(0xfeedbeef);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.winners, b.winners);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.race_failed, b.race_failed);
  EXPECT_EQ(a.race_winner, b.race_winner);
}

TEST(FaultMatrix, DifferentSeedsProduceDifferentSchedules) {
  EXPECT_NE(run_matrix(1).digest, run_matrix(2).digest);
}

TEST(FaultMatrix, EnvSeedSweepAuditsClean) {
  // CI shards this sweep across disjoint seed ranges; the seed printed on
  // failure is the replay handle.
  const char* base_env = std::getenv("MW_FAULT_SEED_BASE");
  const char* count_env = std::getenv("MW_FAULT_SEED_COUNT");
  const std::uint64_t base =
      base_env ? std::strtoull(base_env, nullptr, 10) : 1;
  const std::uint64_t count =
      count_env ? std::strtoull(count_env, nullptr, 10) : 4;
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    const MatrixRun r = run_matrix(seed);
    EXPECT_EQ(r.winners.size(), 20u) << "seed=" << seed;
    EXPECT_TRUE(r.audit.clean()) << "seed=" << seed << " digest=" << r.digest
                                 << "\n" << r.audit.to_string();
  }
}

TEST(FaultMatrix, ThreadBackendSurvivesCrashAndHangChildren) {
  // Wall-clock backend: a crashing child and a hanging child in every
  // block. Deterministic per-point policies (always) keep the schedule
  // interleaving-independent; the assertions are completion + invariants.
  FaultInjector inj(5);
  inj.arm("mxt.crash", FaultSpec::always(FaultKind::kCrashException));
  inj.arm("mxt.hang", FaultSpec::always(FaultKind::kHang));
  FaultScope scope(inj);

  RuntimeConfig cfg;
  cfg.backend = AltBackend::kThread;
  Runtime rt(cfg);
  RuntimeAuditor auditor;
  World root = rt.make_root("matrix-t");
  auditor.add_world(root);

  for (int b = 0; b < 5; ++b) {
    const AltOutcome ao =
        AltBlock(rt, root)
            .alt("good",
                 [](AltContext& ctx) {
                   ctx.sleep_for(vt_ms(2));
                   ctx.set_result_string("ok");
                 })
            .alt("crashy",
                 [](AltContext& ctx) { ctx.fault_point("mxt.crash"); })
            .alt("hangy", [](AltContext& ctx) { ctx.fault_point("mxt.hang"); })
            .timeout(vt_sec(10))  // safety net, not expected to fire
            .run();
    ASSERT_FALSE(ao.failed) << "block " << b;
    EXPECT_EQ(ao.winner_name, "good");
    // Every child reached a terminal status — nothing is still running.
    for (const AltReport& rep : ao.alts)
      EXPECT_TRUE(is_terminal(rt.processes().status(rep.pid)));
  }
  const AuditReport audit = auditor.run(rt.processes());
  EXPECT_TRUE(audit.clean()) << audit.to_string();
}

TEST(FaultMatrix, SequentialRecoveryBlockDegradesInjectedHang) {
  // run_sequential executes bodies inline with no cancellation token: an
  // injected hang must degrade to a failed spare, not wedge the test.
  FaultInjector inj(9);
  inj.arm("rb.seqhang.primary", FaultSpec::always(FaultKind::kHang));
  FaultScope scope(inj);
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kThread;  // non-virtual: the degrading path
  Runtime rt(cfg);
  World root = rt.make_root();
  RecoveryBlock rb("seqhang", [](const World&) { return true; });
  rb.ensure_by("primary", [](AltContext&) {})
      .ensure_by("spare", [](AltContext& ctx) { ctx.work(vt_ms(1)); });
  const RbResult r = rb.run_sequential(rt, root);
  EXPECT_TRUE(r.succeeded);
  EXPECT_EQ(r.alternate_name, "spare");
  EXPECT_EQ(r.rejected, 1);
}

TEST(FaultMatrix, TransactionCommitFaultAbortsCleanly) {
  BackingStore store(4096);
  const FileId f = store.create("f", 4);
  FaultInjector inj(2);
  inj.arm("txn.commit", FaultSpec::once(FaultKind::kFailAlternative, 0));
  FaultScope scope(inj);
  {
    Transaction t(store, f);
    t.store<int>(0, 42);
    EXPECT_FALSE(t.try_commit());  // injected abort
    EXPECT_FALSE(t.committed());
  }
  EXPECT_EQ(store.load<int>(f, 0), 0);  // nothing leaked to the store
  {
    Transaction t(store, f);
    t.store<int>(0, 42);
    EXPECT_TRUE(t.try_commit());  // the fault was once(): retry succeeds
  }
  EXPECT_EQ(store.load<int>(f, 0), 42);
}

}  // namespace
}  // namespace mw
