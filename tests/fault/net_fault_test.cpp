#include <gtest/gtest.h>

#include <vector>

#include "dist/net_sim.hpp"
#include "dist/reliable.hpp"
#include "fault/fault.hpp"
#include "util/des.hpp"

namespace mw {
namespace {

// Regression for the fractional-microsecond serialization bug: at
// 3 MB/s, 2 bytes serialize in 0.67 µs — truncation billed that (and any
// sub-microsecond message) as free; rounding bills 1 tick.
TEST(LinkModel, TransferTimeRoundsFractionalTicks) {
  LinkModel link;
  link.latency = 0;
  link.per_message_overhead = 0;
  link.bandwidth_bytes_per_sec = 3e6;
  EXPECT_EQ(link.transfer_time(2), 1);  // 0.67 µs → 1, truncation gave 0
  EXPECT_EQ(link.transfer_time(1), 0);  // 0.33 µs rounds down
  EXPECT_EQ(link.transfer_time(3), 1);  // exactly 1 µs
  EXPECT_EQ(link.transfer_time(5), 2);  // 1.67 µs → 2
}

TEST(LinkModel, TransferTimeUnchangedOnWholeTicks) {
  LinkModel link;  // 1 MB/s: 1 byte = 1 µs exactly
  EXPECT_EQ(link.transfer_time(1000),
            link.latency + link.per_message_overhead + 1000);
}

TEST(NetSim, PerfectLinkDeliversEverything) {
  EventQueue q;
  NetSim net(q, LinkModel{});
  int delivered = 0;
  for (int i = 0; i < 10; ++i) net.send(0, 1, 100, [&] { ++delivered; });
  q.run();
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(net.messages_dropped(), 0u);
  EXPECT_EQ(net.messages_duplicated(), 0u);
}

TEST(NetSim, TotalLossDropsEverything) {
  EventQueue q;
  LinkModel link;
  link.loss_probability = 1.0;
  NetSim net(q, link, /*seed=*/3);
  int delivered = 0;
  for (int i = 0; i < 10; ++i) net.send(0, 1, 100, [&] { ++delivered; });
  q.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.messages_dropped(), 10u);
}

TEST(NetSim, CertainDuplicationDeliversTwice) {
  EventQueue q;
  LinkModel link;
  link.duplicate_probability = 1.0;
  NetSim net(q, link, /*seed=*/3);
  int delivered = 0;
  net.send(0, 1, 100, [&] { ++delivered; });
  q.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.messages_duplicated(), 1u);
  EXPECT_EQ(net.messages_delivered(), 2u);
}

TEST(NetSim, JitterBoundedAndLossDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    EventQueue q;
    LinkModel link;
    link.loss_probability = 0.3;
    link.jitter = vt_ms(2);
    NetSim net(q, link, seed);
    std::vector<VTime> deliveries;
    for (int i = 0; i < 50; ++i)
      net.send(0, 1, 100, [&q, &deliveries] { deliveries.push_back(q.now()); });
    q.run();
    return deliveries;
  };
  const std::vector<VTime> a = run(11);
  EXPECT_EQ(a, run(11));
  EXPECT_NE(a, run(12));
  const LinkModel link = [] {
    LinkModel l;
    l.jitter = vt_ms(2);
    return l;
  }();
  for (VTime t : a) {
    EXPECT_GE(t, link.transfer_time(100));
    EXPECT_LE(t, link.transfer_time(100) + link.jitter);
  }
}

TEST(NetSim, FaultPointForcesDropOnPerfectLink) {
  EventQueue q;
  NetSim net(q, LinkModel{});
  FaultInjector inj(1);
  inj.arm("net.send", FaultSpec::once(FaultKind::kDropMessage, 0));
  FaultScope scope(inj);
  int delivered = 0;
  net.send(0, 1, 100, [&] { ++delivered; });  // dropped by the fault point
  net.send(0, 1, 100, [&] { ++delivered; });
  q.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST(RetryPolicy, RtoBacksOffExponentiallyWithCap) {
  RetryPolicy p;  // 30 ms initial, x2, 240 ms cap
  EXPECT_EQ(p.rto_for(0), vt_ms(30));
  EXPECT_EQ(p.rto_for(1), vt_ms(60));
  EXPECT_EQ(p.rto_for(2), vt_ms(120));
  EXPECT_EQ(p.rto_for(3), vt_ms(240));
  EXPECT_EQ(p.rto_for(4), vt_ms(240));  // capped
  EXPECT_EQ(p.exhausted_budget(),
            vt_ms(30) + vt_ms(60) + vt_ms(120) + vt_ms(240) + vt_ms(240));
}

TEST(ReliableChannel, PerfectLinkDeliversOnceWithNoRetransmission) {
  EventQueue q;
  NetSim net(q, LinkModel{});
  ReliableChannel ch(net);
  int delivered = 0, failed = 0;
  ch.send(0, 1, 1000, [&] { ++delivered; }, [&] { ++failed; });
  q.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(failed, 0);
  EXPECT_EQ(ch.stats().retransmissions, 0u);
}

TEST(ReliableChannel, ExactlyOnceDeliveryUnderHeavyLoss) {
  // 40% loss on both legs: retransmission must mask the loss, and receiver
  // dedup must collapse duplicate attempts — every transfer's on_delivered
  // runs at most once, and (with 5 attempts at 40% loss) nearly all runs.
  EventQueue q;
  LinkModel link;
  link.loss_probability = 0.4;
  NetSim net(q, link, /*seed=*/9);
  ReliableChannel ch(net);
  const int kTransfers = 40;
  std::vector<int> delivered(kTransfers, 0);
  int failures = 0;
  for (int i = 0; i < kTransfers; ++i)
    ch.send(0, 1, 500, [&delivered, i] { ++delivered[i]; },
            [&failures] { ++failures; });
  q.run();
  int delivered_total = 0;
  for (int i = 0; i < kTransfers; ++i) {
    EXPECT_LE(delivered[i], 1) << "transfer " << i << " delivered twice";
    delivered_total += delivered[i];
  }
  EXPECT_GT(ch.stats().retransmissions, 0u);
  // Every transfer resolved: delivered, or reported failed (never silent).
  EXPECT_GE(delivered_total + failures, kTransfers);
  EXPECT_GT(delivered_total, kTransfers / 2);
}

TEST(ReliableChannel, TotalLossExhaustsRetriesAndReportsFailure) {
  EventQueue q;
  LinkModel link;
  link.loss_probability = 1.0;
  NetSim net(q, link, /*seed=*/9);
  RetryPolicy policy;
  ReliableChannel ch(net, policy);
  int delivered = 0, failed = 0;
  ch.send(0, 1, 500, [&] { ++delivered; }, [&] { ++failed; });
  q.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(ch.stats().retransmissions, policy.max_attempts - 1);
  EXPECT_EQ(ch.stats().failures, 1u);
  // The sender gave up after the last RTO, not never.
  EXPECT_LE(q.now(), policy.exhausted_budget() + link.transfer_time(500));
}

TEST(ReliableTransfer, LosslessIsOneRoundTrip) {
  LinkModel link;
  Rng rng(1);
  RetryPolicy policy;
  const ReliableTransfer t = reliable_transfer(link, 1000, rng, policy);
  EXPECT_TRUE(t.ok);
  EXPECT_EQ(t.attempts, 1u);
  EXPECT_EQ(t.elapsed,
            link.transfer_time(1000) + link.transfer_time(policy.ack_bytes));
}

TEST(ReliableTransfer, TotalLossCostsEveryRto) {
  LinkModel link;
  link.loss_probability = 1.0;
  Rng rng(1);
  RetryPolicy policy;
  const ReliableTransfer t = reliable_transfer(link, 1000, rng, policy);
  EXPECT_FALSE(t.ok);
  EXPECT_EQ(t.attempts, policy.max_attempts);
  EXPECT_EQ(t.elapsed, policy.exhausted_budget());
}

TEST(ReliableTransfer, DeterministicPerStream) {
  LinkModel link;
  link.loss_probability = 0.5;
  RetryPolicy policy;
  auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<VDuration> out;
    for (int i = 0; i < 20; ++i)
      out.push_back(reliable_transfer(link, 777, rng, policy).elapsed);
    return out;
  };
  EXPECT_EQ(run(4), run(4));
  EXPECT_NE(run(4), run(5));
}

}  // namespace
}  // namespace mw
