#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mw {
namespace {

TEST(FaultInjector, UnarmedPointNeverFires) {
  FaultInjector inj(1);
  EXPECT_FALSE(inj.query("nobody.armed.this"));
  EXPECT_EQ(inj.hits("nobody.armed.this"), 0u);
  EXPECT_EQ(inj.total_fires(), 0u);
}

TEST(FaultInjector, AlwaysFires) {
  FaultInjector inj(1);
  inj.arm("p", FaultSpec::always(FaultKind::kFailAlternative));
  for (int i = 0; i < 5; ++i) {
    const FaultAction a = inj.query("p");
    EXPECT_TRUE(a);
    EXPECT_EQ(a.kind, FaultKind::kFailAlternative);
  }
  EXPECT_EQ(inj.hits("p"), 5u);
  EXPECT_EQ(inj.fires("p"), 5u);
}

TEST(FaultInjector, EveryNthWithOffset) {
  FaultInjector inj(1);
  inj.arm("p", FaultSpec::every_nth(FaultKind::kCrashException, 3, 2));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(static_cast<bool>(inj.query("p")));
  // Hits 2, 5, 8 fire.
  EXPECT_EQ(fired, std::vector<bool>({false, false, true, false, false, true,
                                      false, false, true}));
}

TEST(FaultInjector, OnceFiresExactlyOnce) {
  FaultInjector inj(1);
  inj.arm("p", FaultSpec::once(FaultKind::kNodeCrash, 1));
  EXPECT_FALSE(inj.query("p"));  // hit 0
  EXPECT_TRUE(inj.query("p"));   // hit 1
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(inj.query("p"));
  EXPECT_EQ(inj.fires("p"), 1u);
}

TEST(FaultInjector, TimeWindowGates) {
  FaultInjector inj(1);
  inj.arm("p", FaultSpec::always(FaultKind::kDropMessage)
                   .between(vt_ms(10), vt_ms(20)));
  EXPECT_FALSE(inj.query("p", vt_ms(5)));
  EXPECT_TRUE(inj.query("p", vt_ms(10)));
  EXPECT_TRUE(inj.query("p", vt_ms(19)));
  EXPECT_FALSE(inj.query("p", vt_ms(20)));  // half-open interval
}

TEST(FaultInjector, FireLimit) {
  FaultInjector inj(1);
  inj.arm("p", FaultSpec::always(FaultKind::kFailAlternative).limit(2));
  EXPECT_TRUE(inj.query("p"));
  EXPECT_TRUE(inj.query("p"));
  EXPECT_FALSE(inj.query("p"));
  EXPECT_EQ(inj.fires("p"), 2u);
  EXPECT_EQ(inj.hits("p"), 3u);
}

TEST(FaultInjector, DelayCarriesPayload) {
  FaultInjector inj(1);
  inj.arm("p", FaultSpec::always(FaultKind::kDelay).delayed(vt_ms(7)));
  const FaultAction a = inj.query("p");
  EXPECT_EQ(a.kind, FaultKind::kDelay);
  EXPECT_EQ(a.delay, vt_ms(7));
}

TEST(FaultInjector, ProbabilityIsDeterministicPerSeed) {
  auto pattern = [](std::uint64_t seed) {
    FaultInjector inj(seed);
    inj.arm("p", FaultSpec::with_probability(FaultKind::kDropMessage, 0.5));
    std::vector<bool> out;
    for (int i = 0; i < 64; ++i) out.push_back(static_cast<bool>(inj.query("p")));
    return out;
  };
  EXPECT_EQ(pattern(42), pattern(42));
  EXPECT_NE(pattern(42), pattern(43));
}

TEST(FaultInjector, ScheduleIndependentOfArmOrder) {
  // Each point draws from its own seed-derived stream: interleaving queries
  // of other points, or arming in a different order, must not perturb it.
  auto run = [](bool reversed) {
    FaultInjector inj(7);
    if (reversed) {
      inj.arm("b", FaultSpec::with_probability(FaultKind::kDropMessage, 0.3));
      inj.arm("a", FaultSpec::with_probability(FaultKind::kDropMessage, 0.3));
    } else {
      inj.arm("a", FaultSpec::with_probability(FaultKind::kDropMessage, 0.3));
      inj.arm("b", FaultSpec::with_probability(FaultKind::kDropMessage, 0.3));
    }
    std::vector<bool> out;
    for (int i = 0; i < 32; ++i) {
      out.push_back(static_cast<bool>(inj.query("a")));
      out.push_back(static_cast<bool>(inj.query("b")));
    }
    return out;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(FaultInjector, ScheduleDigestMatchesIffSameSchedule) {
  auto digest = [](std::uint64_t seed, double p) {
    FaultInjector inj(seed);
    inj.arm("x", FaultSpec::with_probability(FaultKind::kHang, p));
    for (int i = 0; i < 100; ++i) inj.query("x", i);
    return inj.schedule_digest();
  };
  EXPECT_EQ(digest(5, 0.4), digest(5, 0.4));
  EXPECT_NE(digest(5, 0.4), digest(6, 0.4));
}

TEST(FaultInjector, LogRecordsFiringOrder) {
  FaultInjector inj(1);
  inj.arm("a", FaultSpec::once(FaultKind::kHang, 0));
  inj.arm("b", FaultSpec::once(FaultKind::kNodeCrash, 0));
  inj.query("b", vt_ms(1));
  inj.query("a", vt_ms(2));
  const std::vector<FiredFault> log = inj.log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].point, "b");
  EXPECT_EQ(log[0].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(log[0].at, vt_ms(1));
  EXPECT_EQ(log[1].point, "a");
  EXPECT_EQ(log[1].kind, FaultKind::kHang);
}

TEST(FaultInjector, RearmResetsCounters) {
  FaultInjector inj(1);
  inj.arm("p", FaultSpec::always(FaultKind::kFailAlternative));
  inj.query("p");
  inj.arm("p", FaultSpec::always(FaultKind::kFailAlternative));
  EXPECT_EQ(inj.hits("p"), 0u);
  inj.disarm("p");
  EXPECT_FALSE(inj.query("p"));
}

TEST(FaultScope, InstallsAndRestoresAmbientInjector) {
  EXPECT_EQ(fault_injector(), nullptr);
  EXPECT_FALSE(MW_FAULT_POINT("anything"));
  {
    FaultInjector outer(1);
    outer.arm("p", FaultSpec::always(FaultKind::kDelay).delayed(1));
    FaultScope outer_scope(outer);
    EXPECT_EQ(fault_injector(), &outer);
    EXPECT_TRUE(MW_FAULT_POINT("p"));
    {
      FaultInjector inner(2);
      FaultScope inner_scope(inner);
      EXPECT_EQ(fault_injector(), &inner);
      EXPECT_FALSE(MW_FAULT_POINT("p"));  // inner has nothing armed
    }
    EXPECT_EQ(fault_injector(), &outer);
  }
  EXPECT_EQ(fault_injector(), nullptr);
}

}  // namespace
}  // namespace mw
