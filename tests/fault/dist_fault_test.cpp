#include <gtest/gtest.h>

#include "dist/remote_alt.hpp"
#include "dist/rfork.hpp"
#include "fault/fault.hpp"

namespace mw {
namespace {

AddressSpace process_70k() {
  AddressSpace as(4096, 64);
  for (int p = 0; p < 17; ++p) as.store<int>(4096ull * p, p + 1);
  return as;
}

LinkModel lossy_link(double p) {
  LinkModel link;
  link.loss_probability = p;
  return link;
}

TEST(RforkUnreliable, PerfectLinkMatchesFullCopy) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  const AddressSpace as = process_70k();
  Rng rng(1);
  const RforkResult reliable = forker.full_copy(as);
  const RforkResult r = forker.full_copy_unreliable(as, rng);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_EQ(r.checkpoint_cost, reliable.checkpoint_cost);
  EXPECT_EQ(r.restore_cost, reliable.restore_cost);
  // Each of the three protocol legs additionally pays one ack.
  const VDuration acks =
      3 * forker.link().transfer_time(RetryPolicy{}.ack_bytes);
  EXPECT_EQ(r.transfer_cost, reliable.transfer_cost + acks);
}

TEST(RforkUnreliable, ModerateLossCompletesWithRetransmissions) {
  RemoteForker forker{lossy_link(0.3), DistCost{}};
  const AddressSpace as = process_70k();
  // With 30% loss some seed retransmits; the transfer still completes and
  // costs strictly more than the loss-free run.
  Rng rng(3);
  const RforkResult r = forker.full_copy_unreliable(as, rng);
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.retransmissions, 0u);
  RemoteForker perfect{LinkModel{}, DistCost{}};
  EXPECT_GT(r.transfer_cost, perfect.full_copy(as).transfer_cost);
}

TEST(RforkUnreliable, TotalLossFailsInsteadOfHanging) {
  RemoteForker forker{lossy_link(1.0), DistCost{}};
  const AddressSpace as = process_70k();
  Rng rng(1);
  RetryPolicy policy;
  const RforkResult r = forker.full_copy_unreliable(as, rng, policy);
  EXPECT_FALSE(r.ok);
  // The first leg exhausted its budget; the remaining legs were not tried.
  EXPECT_EQ(r.transfer_cost, policy.exhausted_budget());
  EXPECT_EQ(r.restore_cost, 0);
}

TEST(RforkUnreliable, NodeCrashFaultPointFailsTheRfork) {
  RemoteForker forker{LinkModel{}, DistCost{}};  // perfect link
  const AddressSpace as = process_70k();
  FaultInjector inj(1);
  inj.arm("rfork.transfer", FaultSpec::always(FaultKind::kNodeCrash));
  FaultScope scope(inj);
  Rng rng(1);
  RetryPolicy policy;
  const RforkResult r = forker.full_copy_unreliable(as, rng, policy);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.transfer_cost, policy.exhausted_budget());
}

TEST(DistRace, LosslessOptionsOverloadMatchesLegacy) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  const AddressSpace as = process_70k();
  const std::vector<RemoteAltSpec> specs{
      {vt_sec(2), true}, {vt_sec(1), true}, {vt_sec(3), true}};
  const DistributedRaceResult legacy = distributed_race(forker, as, specs);
  const DistributedRaceResult opt =
      distributed_race(forker, as, specs, DistRaceOptions{});
  ASSERT_FALSE(opt.failed);
  EXPECT_EQ(opt.winner, legacy.winner);
  EXPECT_EQ(opt.elapsed, legacy.elapsed);
  EXPECT_EQ(opt.remotes_failed, 0u);
  EXPECT_FALSE(opt.used_local_fallback);
}

TEST(DistRace, LossyRaceStillPicksAWinnerDeterministically) {
  RemoteForker forker{lossy_link(0.15), DistCost{}};
  const AddressSpace as = process_70k();
  const std::vector<RemoteAltSpec> specs{
      {vt_sec(2), true}, {vt_sec(1), true}, {vt_sec(3), true}};
  DistRaceOptions opts;
  opts.seed = 7;
  const DistributedRaceResult a = distributed_race(forker, as, specs, opts);
  const DistributedRaceResult b = distributed_race(forker, as, specs, opts);
  ASSERT_FALSE(a.failed);
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
}

TEST(DistRace, CrashedNodeIsDemotedNotWaitedFor) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  const AddressSpace as = process_70k();
  // The fastest alternative's node crashes: the race must not hang on it,
  // and a slower sibling wins instead.
  const std::vector<RemoteAltSpec> specs{
      {vt_sec(1), true}, {vt_sec(2), true}, {vt_sec(3), true}};
  FaultInjector inj(1);
  inj.arm("remote.node_crash", FaultSpec::once(FaultKind::kNodeCrash, 0));
  FaultScope scope(inj);
  const DistributedRaceResult r =
      distributed_race(forker, as, specs, DistRaceOptions{});
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.remotes_failed, 1u);
  EXPECT_EQ(r.winner, 1u);
  EXPECT_FALSE(r.used_local_fallback);
}

TEST(DistRace, AllNodesCrashedFallsBackToLocalRace) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  const AddressSpace as = process_70k();
  const std::vector<RemoteAltSpec> specs{
      {vt_sec(2), true}, {vt_sec(1), true}};
  FaultInjector inj(1);
  inj.arm("remote.node_crash", FaultSpec::always(FaultKind::kNodeCrash));
  FaultScope scope(inj);
  const DistributedRaceResult r =
      distributed_race(forker, as, specs, DistRaceOptions{});
  ASSERT_FALSE(r.failed);
  EXPECT_TRUE(r.used_local_fallback);
  EXPECT_EQ(r.remotes_failed, 2u);
  // The wasted remote spawn time is charged: slower than a purely local
  // race, but the block still completes.
  DistRaceOptions opts;
  EXPECT_GT(r.elapsed,
            local_race(opts.local_processors, opts.local_fork_cost, specs));
}

// --- Remote failover (PR 3): children ship periodic checkpoints to the
// file server; a mid-race node crash re-dispatches the newest chain to a
// surviving node instead of demoting the alternative. ---

DistRaceOptions failover_opts() {
  DistRaceOptions opts;
  opts.checkpoint_interval = vt_ms(200);
  opts.checkpoint_pages = 4;
  return opts;
}

TEST(DistRace, MidRaceCrashFailsOverAndPreservesWork) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  const AddressSpace as = process_70k();
  const std::vector<RemoteAltSpec> specs{
      {vt_sec(1), true}, {vt_sec(2), true}, {vt_sec(3), true}};
  const DistributedRaceResult calm =
      distributed_race(forker, as, specs, failover_opts());
  ASSERT_FALSE(calm.failed);

  FaultInjector inj(1);
  inj.arm("remote.node_crash", FaultSpec::once(FaultKind::kNodeCrash, 0));
  FaultScope scope(inj);
  const DistributedRaceResult r =
      distributed_race(forker, as, specs, failover_opts());
  ASSERT_FALSE(r.failed);
  // The crashed child moved nodes instead of dying: no demotion, no local
  // fallback, and the shipped chain's bytes count as preserved work.
  EXPECT_EQ(r.failovers, 1u);
  EXPECT_EQ(r.restarts, 1u);
  EXPECT_EQ(r.remotes_failed, 0u);
  EXPECT_FALSE(r.used_local_fallback);
  EXPECT_GT(r.work_preserved_bytes, 0u);
  EXPECT_GT(r.bytes_shipped, calm.bytes_shipped);  // the re-dispatched chain
  // Detection + re-dispatch + restore cost real time: never faster than the
  // crash-free race.
  EXPECT_GE(r.elapsed, calm.elapsed);
}

TEST(DistRace, FailoverReplaysDeterministically) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  const AddressSpace as = process_70k();
  const std::vector<RemoteAltSpec> specs{
      {vt_sec(1), true}, {vt_sec(2), true}, {vt_sec(3), true}};
  auto run_once = [&] {
    FaultInjector inj(5);
    inj.arm("remote.node_crash",
            FaultSpec::with_probability(FaultKind::kNodeCrash, 0.5).limit(2));
    FaultScope scope(inj);
    DistRaceOptions opts = failover_opts();
    opts.max_failovers = 2;
    return distributed_race(forker, as, specs, opts);
  };
  const DistributedRaceResult a = run_once();
  const DistributedRaceResult b = run_once();
  ASSERT_FALSE(a.failed);
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.work_preserved, b.work_preserved);
  EXPECT_EQ(a.work_preserved_bytes, b.work_preserved_bytes);
}

TEST(DistRace, FailoverBudgetExhaustionDemotesThenFallsBackLocally) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  const AddressSpace as = process_70k();
  const std::vector<RemoteAltSpec> specs{{vt_sec(2), true}, {vt_sec(1), true}};
  FaultInjector inj(1);
  inj.arm("remote.node_crash", FaultSpec::always(FaultKind::kNodeCrash));
  FaultScope scope(inj);
  DistRaceOptions opts = failover_opts();
  opts.max_failovers = 1;
  const DistributedRaceResult r = distributed_race(forker, as, specs, opts);
  // Each child burned its one failover, crashed again, and was demoted; the
  // block still completes via the local timeshared fallback.
  ASSERT_FALSE(r.failed);
  EXPECT_TRUE(r.used_local_fallback);
  EXPECT_EQ(r.remotes_failed, 2u);
  EXPECT_EQ(r.failovers, 2u);
  EXPECT_EQ(r.restarts, 2u);
}

TEST(DistRace, SingleNodeCannotFailOver) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  const AddressSpace as = process_70k();
  const std::vector<RemoteAltSpec> specs{{vt_sec(1), true}};
  FaultInjector inj(1);
  inj.arm("remote.node_crash", FaultSpec::always(FaultKind::kNodeCrash));
  FaultScope scope(inj);
  const DistributedRaceResult r =
      distributed_race(forker, as, specs, failover_opts());
  ASSERT_FALSE(r.failed);
  EXPECT_TRUE(r.used_local_fallback);  // no surviving node to fail over to
  EXPECT_EQ(r.failovers, 0u);
  EXPECT_EQ(r.remotes_failed, 1u);
}

TEST(DistRace, ZeroIntervalKeepsLegacyCrashDemotion) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  const AddressSpace as = process_70k();
  const std::vector<RemoteAltSpec> specs{
      {vt_sec(1), true}, {vt_sec(2), true}, {vt_sec(3), true}};
  FaultInjector inj(1);
  inj.arm("remote.node_crash", FaultSpec::once(FaultKind::kNodeCrash, 0));
  FaultScope scope(inj);
  const DistributedRaceResult r =
      distributed_race(forker, as, specs, DistRaceOptions{});  // interval = 0
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.winner, 1u);  // demoted, exactly as before failover existed
  EXPECT_EQ(r.remotes_failed, 1u);
  EXPECT_EQ(r.failovers, 0u);
  EXPECT_EQ(r.restarts, 0u);
  EXPECT_EQ(r.work_preserved_bytes, 0u);
}

TEST(DistRace, AllNodesCrashedWithoutFallbackFails) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  const AddressSpace as = process_70k();
  const std::vector<RemoteAltSpec> specs{{vt_sec(1), true}};
  FaultInjector inj(1);
  inj.arm("remote.node_crash", FaultSpec::always(FaultKind::kNodeCrash));
  FaultScope scope(inj);
  DistRaceOptions opts;
  opts.local_fallback = false;
  const DistributedRaceResult r = distributed_race(forker, as, specs, opts);
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.remotes_failed, 1u);
}

}  // namespace
}  // namespace mw
