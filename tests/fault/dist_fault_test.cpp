#include <gtest/gtest.h>

#include "dist/remote_alt.hpp"
#include "dist/rfork.hpp"
#include "fault/fault.hpp"

namespace mw {
namespace {

AddressSpace process_70k() {
  AddressSpace as(4096, 64);
  for (int p = 0; p < 17; ++p) as.store<int>(4096ull * p, p + 1);
  return as;
}

LinkModel lossy_link(double p) {
  LinkModel link;
  link.loss_probability = p;
  return link;
}

TEST(RforkUnreliable, PerfectLinkMatchesFullCopy) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  const AddressSpace as = process_70k();
  Rng rng(1);
  const RforkResult reliable = forker.full_copy(as);
  const RforkResult r = forker.full_copy_unreliable(as, rng);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_EQ(r.checkpoint_cost, reliable.checkpoint_cost);
  EXPECT_EQ(r.restore_cost, reliable.restore_cost);
  // Each of the three protocol legs additionally pays one ack.
  const VDuration acks =
      3 * forker.link().transfer_time(RetryPolicy{}.ack_bytes);
  EXPECT_EQ(r.transfer_cost, reliable.transfer_cost + acks);
}

TEST(RforkUnreliable, ModerateLossCompletesWithRetransmissions) {
  RemoteForker forker{lossy_link(0.3), DistCost{}};
  const AddressSpace as = process_70k();
  // With 30% loss some seed retransmits; the transfer still completes and
  // costs strictly more than the loss-free run.
  Rng rng(3);
  const RforkResult r = forker.full_copy_unreliable(as, rng);
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.retransmissions, 0u);
  RemoteForker perfect{LinkModel{}, DistCost{}};
  EXPECT_GT(r.transfer_cost, perfect.full_copy(as).transfer_cost);
}

TEST(RforkUnreliable, TotalLossFailsInsteadOfHanging) {
  RemoteForker forker{lossy_link(1.0), DistCost{}};
  const AddressSpace as = process_70k();
  Rng rng(1);
  RetryPolicy policy;
  const RforkResult r = forker.full_copy_unreliable(as, rng, policy);
  EXPECT_FALSE(r.ok);
  // The first leg exhausted its budget; the remaining legs were not tried.
  EXPECT_EQ(r.transfer_cost, policy.exhausted_budget());
  EXPECT_EQ(r.restore_cost, 0);
}

TEST(RforkUnreliable, NodeCrashFaultPointFailsTheRfork) {
  RemoteForker forker{LinkModel{}, DistCost{}};  // perfect link
  const AddressSpace as = process_70k();
  FaultInjector inj(1);
  inj.arm("rfork.transfer", FaultSpec::always(FaultKind::kNodeCrash));
  FaultScope scope(inj);
  Rng rng(1);
  RetryPolicy policy;
  const RforkResult r = forker.full_copy_unreliable(as, rng, policy);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.transfer_cost, policy.exhausted_budget());
}

TEST(DistRace, LosslessOptionsOverloadMatchesLegacy) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  const AddressSpace as = process_70k();
  const std::vector<RemoteAltSpec> specs{
      {vt_sec(2), true}, {vt_sec(1), true}, {vt_sec(3), true}};
  const DistributedRaceResult legacy = distributed_race(forker, as, specs);
  const DistributedRaceResult opt =
      distributed_race(forker, as, specs, DistRaceOptions{});
  ASSERT_FALSE(opt.failed);
  EXPECT_EQ(opt.winner, legacy.winner);
  EXPECT_EQ(opt.elapsed, legacy.elapsed);
  EXPECT_EQ(opt.remotes_failed, 0u);
  EXPECT_FALSE(opt.used_local_fallback);
}

TEST(DistRace, LossyRaceStillPicksAWinnerDeterministically) {
  RemoteForker forker{lossy_link(0.15), DistCost{}};
  const AddressSpace as = process_70k();
  const std::vector<RemoteAltSpec> specs{
      {vt_sec(2), true}, {vt_sec(1), true}, {vt_sec(3), true}};
  DistRaceOptions opts;
  opts.seed = 7;
  const DistributedRaceResult a = distributed_race(forker, as, specs, opts);
  const DistributedRaceResult b = distributed_race(forker, as, specs, opts);
  ASSERT_FALSE(a.failed);
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
}

TEST(DistRace, CrashedNodeIsDemotedNotWaitedFor) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  const AddressSpace as = process_70k();
  // The fastest alternative's node crashes: the race must not hang on it,
  // and a slower sibling wins instead.
  const std::vector<RemoteAltSpec> specs{
      {vt_sec(1), true}, {vt_sec(2), true}, {vt_sec(3), true}};
  FaultInjector inj(1);
  inj.arm("remote.node_crash", FaultSpec::once(FaultKind::kNodeCrash, 0));
  FaultScope scope(inj);
  const DistributedRaceResult r =
      distributed_race(forker, as, specs, DistRaceOptions{});
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.remotes_failed, 1u);
  EXPECT_EQ(r.winner, 1u);
  EXPECT_FALSE(r.used_local_fallback);
}

TEST(DistRace, AllNodesCrashedFallsBackToLocalRace) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  const AddressSpace as = process_70k();
  const std::vector<RemoteAltSpec> specs{
      {vt_sec(2), true}, {vt_sec(1), true}};
  FaultInjector inj(1);
  inj.arm("remote.node_crash", FaultSpec::always(FaultKind::kNodeCrash));
  FaultScope scope(inj);
  const DistributedRaceResult r =
      distributed_race(forker, as, specs, DistRaceOptions{});
  ASSERT_FALSE(r.failed);
  EXPECT_TRUE(r.used_local_fallback);
  EXPECT_EQ(r.remotes_failed, 2u);
  // The wasted remote spawn time is charged: slower than a purely local
  // race, but the block still completes.
  DistRaceOptions opts;
  EXPECT_GT(r.elapsed,
            local_race(opts.local_processors, opts.local_fork_cost, specs));
}

TEST(DistRace, AllNodesCrashedWithoutFallbackFails) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  const AddressSpace as = process_70k();
  const std::vector<RemoteAltSpec> specs{{vt_sec(1), true}};
  FaultInjector inj(1);
  inj.arm("remote.node_crash", FaultSpec::always(FaultKind::kNodeCrash));
  FaultScope scope(inj);
  DistRaceOptions opts;
  opts.local_fallback = false;
  const DistributedRaceResult r = distributed_race(forker, as, specs, opts);
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.remotes_failed, 1u);
}

}  // namespace
}  // namespace mw
