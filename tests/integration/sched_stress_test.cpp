// Scheduler stress: ten thousand races across all three execution
// backends, concurrent drivers hammering one shared pool, a long
// deterministic-pool run, and the worlds-layer admission budget — every
// configuration must leave the runtime auditor clean.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "core/runtime_auditor.hpp"
#include "worlds/spec_runtime.hpp"

namespace mw {
namespace {

// A fast scripted race: the winner stores a sentinel and syncs, the loser
// fails immediately. Cheap enough to run thousands of times per backend.
std::vector<Alternative> fast_race(int r) {
  std::vector<Alternative> race;
  race.push_back({"w", nullptr,
                  [r](AltContext& ctx) {
                    ctx.work(vt_us(10));
                    ctx.space().store<int>(0, r + 1);
                  },
                  nullptr, 0.0});
  race.push_back({"l", nullptr,
                  [](AltContext& ctx) {
                    ctx.work(vt_us(10));
                    ctx.fail("scripted");
                  },
                  nullptr, 0.0});
  return race;
}

struct BackendLoad {
  AltBackend backend;
  std::uint64_t det_seed;  // pool only; 0 = threaded pool
  int races;
  const char* label;
};

TEST(SchedStress, TenThousandRacesAcrossBackendsAuditClean) {
  const BackendLoad loads[] = {
      {AltBackend::kVirtual, 0, 5000, "virtual"},
      {AltBackend::kThread, 0, 1500, "thread"},
      {AltBackend::kPool, 0, 1500, "pool-threaded"},
      {AltBackend::kPool, 42, 2000, "pool-deterministic"},
  };
  int total = 0;
  for (const BackendLoad& load : loads) {
    RuntimeConfig cfg;
    cfg.backend = load.backend;
    cfg.page_size = 256;
    cfg.num_pages = 16;
    cfg.pool.deterministic_seed = load.det_seed;
    cfg.pool.workers = 2;
    Runtime rt(cfg);
    RuntimeAuditor auditor;
    World root = rt.make_root(load.label);
    auditor.add_world(root);
    for (int r = 0; r < load.races; ++r) {
      const AltOutcome out = run_alternatives(rt, root, fast_race(r), {});
      ASSERT_FALSE(out.failed) << load.label << " race " << r;
      ASSERT_EQ(root.space().load<int>(0), r + 1)
          << load.label << " race " << r;
    }
    total += load.races;
    EXPECT_EQ(rt.stats().blocks_won,
              static_cast<std::uint64_t>(load.races));
    const AuditReport audit = auditor.run(rt.processes());
    EXPECT_TRUE(audit.clean()) << load.label << "\n" << audit.to_string();
  }
  EXPECT_EQ(total, 10000);
}

TEST(SchedStress, ConcurrentDriversShareOnePool) {
  // Eight driver threads race independent worlds through one scheduler:
  // the admission ledger must return to zero and every root must hold its
  // own final sentinel (no cross-race state bleed).
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kPool;
  cfg.page_size = 256;
  cfg.num_pages = 16;
  cfg.pool.max_live_worlds = 6;  // forces admission traffic under load
  cfg.pool.admission_wait = 10'000'000;
  Runtime rt(cfg);
  RuntimeAuditor auditor;
  constexpr int kDrivers = 8;
  constexpr int kRacesPerDriver = 100;
  std::vector<World> roots;
  roots.reserve(kDrivers);
  for (int d = 0; d < kDrivers; ++d) {
    roots.push_back(rt.make_root("drv" + std::to_string(d)));
    auditor.add_world(roots.back());
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> drivers;
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      for (int r = 0; r < kRacesPerDriver; ++r) {
        const int sentinel = d * kRacesPerDriver + r + 1;
        const AltOutcome out =
            run_alternatives(rt, roots[d], fast_race(sentinel - 1), {});
        if (out.failed ||
            roots[d].space().load<int>(0) != sentinel) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(rt.scheduler().live_worlds(), 0u);
  EXPECT_EQ(rt.stats().blocks_won,
            static_cast<std::uint64_t>(kDrivers * kRacesPerDriver));
  const AuditReport audit = auditor.run(rt.processes());
  EXPECT_TRUE(audit.clean()) << audit.to_string();
}

TEST(SchedStress, WorldsAdmissionBudgetDefersAndDrains) {
  // Three roots each spawn a four-way speculative group at t=0 under a
  // budget too small for all of them at once: later groups defer (pids and
  // predicates exist, worlds do not), then materialize FIFO as earlier
  // groups resolve. Every group must still resolve to exactly one winner.
  SpecConfig cfg;
  cfg.max_live_copies = 8;
  SpecRuntime rt(cfg);
  constexpr int kRoots = 3;
  constexpr int kAlts = 4;
  std::vector<LogicalId> roots;
  std::vector<std::vector<Pid>> groups;
  for (int i = 0; i < kRoots; ++i)
    roots.push_back(rt.spawn_root("root" + std::to_string(i)));
  for (int i = 0; i < kRoots; ++i) {
    std::vector<AltSpec> alts;
    for (int a = 0; a < kAlts; ++a) {
      const bool winner = a == i % kAlts;
      alts.push_back(AltSpec{
          "r" + std::to_string(i) + "a" + std::to_string(a),
          [winner, i](ProcCtx& ctx) {
            if (winner) {
              ctx.space().store<int>(0, 100 + i);
              ctx.after(vt_us(5), [](ProcCtx& c) { c.try_sync(); });
            } else {
              ctx.after(vt_us(50), [](ProcCtx& c) { c.abort(); });
            }
          },
          nullptr});
    }
    groups.push_back(rt.spawn_alternatives(roots[i], std::move(alts)));
    EXPECT_EQ(groups.back().size(), static_cast<std::size_t>(kAlts));
  }
  rt.run();
  EXPECT_GT(rt.stats().admission_deferred, 0u);
  for (int i = 0; i < kRoots; ++i) {
    // The winner committed into the root; the root is live again with the
    // winner's sentinel.
    const std::vector<Pid> live = rt.live_copies(roots[i]);
    ASSERT_EQ(live.size(), 1u) << "root " << i;
    EXPECT_EQ(rt.space_of(live[0]).load<int>(0), 100 + i) << "root " << i;
    // Exactly one child synced; the rest are terminal (aborted/eliminated).
    int synced = 0;
    for (Pid pid : groups[i]) {
      const ProcStatus st = rt.processes().status(pid);
      EXPECT_TRUE(is_terminal(st)) << "root " << i << " pid " << pid;
      if (st == ProcStatus::kSynced) ++synced;
    }
    EXPECT_EQ(synced, 1) << "root " << i;
  }
}

TEST(SchedStress, WorldsAdmissionUnboundedIsUntouched) {
  // Budget 0 = unbounded: the deferral machinery must stay cold.
  SpecRuntime rt;
  LogicalId root = rt.spawn_root("free");
  rt.spawn_alternatives(
      root, {AltSpec{"a", [](ProcCtx& ctx) { ctx.try_sync(); }, nullptr},
             AltSpec{"b", nullptr, nullptr}});
  rt.run();
  EXPECT_EQ(rt.stats().admission_deferred, 0u);
  EXPECT_EQ(rt.live_copies(root).size(), 1u);
}

}  // namespace
}  // namespace mw
