// Integration: recovery blocks (rb) + transactions over the backing store
// (io) — §4.1's "alternatives may attempt to update shared state, e.g.,
// database files": the winning alternate's database transaction commits;
// failing alternates leave the store untouched.
#include <gtest/gtest.h>

#include "io/transaction.hpp"
#include "rb/recovery_block.hpp"

namespace mw {
namespace {

RuntimeConfig virtual_config() {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = 3;
  cfg.cost = CostModel::free();
  cfg.page_size = 64;
  cfg.num_pages = 32;
  return cfg;
}

struct Bank {
  BackingStore store{64};
  FileId accounts = kNoFile;
  Bank() {
    accounts = store.create("accounts", 8);
    store.store<std::int64_t>(accounts, 0, 100);   // account A
    store.store<std::int64_t>(accounts, 64, 50);   // account B
  }
};

TEST(RecoveryStore, WinningAlternateCommitsItsTransaction) {
  Bank bank;
  Runtime rt(virtual_config());
  World world = rt.make_root();

  // The block computes a transfer plan in world state; on success the
  // caller applies it to the database through a transaction.
  auto acceptance = [](const World& w) {
    return w.space().load<std::int64_t>(0) >= 0;  // plan is valid
  };
  RecoveryBlock rb("transfer", acceptance);
  rb.ensure_by("overdraft-bug", [](AltContext& ctx) {
    ctx.work(1);
    ctx.space().store<std::int64_t>(0, -70);  // invalid: overdraft
  });
  rb.ensure_by("careful", [](AltContext& ctx) {
    ctx.work(5);
    ctx.space().store<std::int64_t>(0, 30);  // transfer 30 from A to B
  });
  auto r = rb.run_sequential(rt, world);
  ASSERT_TRUE(r.succeeded);
  EXPECT_EQ(r.alternate_name, "careful");

  const std::int64_t amount = world.space().load<std::int64_t>(0);
  Transaction tx(bank.store, bank.accounts);
  tx.store<std::int64_t>(0, tx.load<std::int64_t>(0) - amount);
  tx.store<std::int64_t>(64, tx.load<std::int64_t>(64) + amount);
  tx.commit();

  EXPECT_EQ(bank.store.load<std::int64_t>(bank.accounts, 0), 70);
  EXPECT_EQ(bank.store.load<std::int64_t>(bank.accounts, 64), 80);
}

TEST(RecoveryStore, FailedBlockLeavesDatabaseUntouched) {
  Bank bank;
  Runtime rt(virtual_config());
  World world = rt.make_root();
  RecoveryBlock rb("transfer",
                   [](const World&) { return false; });  // rejects all
  rb.ensure_by("anything", [](AltContext& ctx) {
    ctx.work(1);
    ctx.space().store<std::int64_t>(0, 10);
  });
  auto r = rb.run_sequential(rt, world);
  EXPECT_FALSE(r.succeeded);
  EXPECT_EQ(bank.store.load<std::int64_t>(bank.accounts, 0), 100);
  EXPECT_EQ(bank.store.load<std::int64_t>(bank.accounts, 64), 50);
}

TEST(RecoveryStore, ConcurrentBlockWithFaultPlans) {
  // Primary's transient fault (FaultPlan) makes the spare win; the commit
  // applies once.
  Bank bank;
  Runtime rt(virtual_config());
  World world = rt.make_root();
  auto plan = std::make_shared<FaultPlan>(FaultPlan::always());

  RecoveryBlock rb("transfer", [](const World& w) {
    return w.space().load<std::int64_t>(0) >= 0;
  });
  rb.ensure_by("flaky-fast", [plan](AltContext& ctx) {
    ctx.work(1);
    if (plan->next_fails()) ctx.fail("hardware glitch");
    ctx.space().store<std::int64_t>(0, 10);
  });
  rb.ensure_by("steady-slow", [](AltContext& ctx) {
    ctx.work(100);
    ctx.space().store<std::int64_t>(0, 20);
  });
  auto r = rb.run_concurrent(rt, world);
  ASSERT_TRUE(r.succeeded);
  EXPECT_EQ(r.alternate_name, "steady-slow");
  EXPECT_EQ(world.space().load<std::int64_t>(0), 20);
}

TEST(RecoveryStore, TransactionPerAlternateSerialized) {
  // Sequential standby-spares where each alternate runs its own
  // transaction attempt against the store: an aborted attempt from the
  // failing primary must not leak.
  Bank bank;
  Runtime rt(virtual_config());
  World world = rt.make_root();

  RecoveryBlock rb("audit", [](const World& w) {
    return w.space().load<int>(0) == 1;
  });
  rb.ensure_by("writes-then-dies", [&bank](AltContext& ctx) {
    Transaction tx(bank.store, bank.accounts);
    tx.store<std::int64_t>(0, 0);  // would zero account A
    tx.abort();                    // alternate realizes it's wrong
    ctx.work(1);
    ctx.fail("aborted");
  });
  rb.ensure_by("reads-only", [&bank](AltContext& ctx) {
    Transaction tx(bank.store, bank.accounts);
    const auto a = tx.load<std::int64_t>(0);
    tx.commit();
    ctx.space().store<int>(0, a == 100 ? 1 : 0);
    ctx.work(1);
  });
  auto r = rb.run_sequential(rt, world);
  ASSERT_TRUE(r.succeeded);
  EXPECT_EQ(r.alternate_name, "reads-only");
  EXPECT_EQ(bank.store.load<std::int64_t>(bank.accounts, 0), 100);
}

}  // namespace
}  // namespace mw
