// Integration: dist (checkpoint/rfork) + pagestore/core — a speculative
// world's state survives a checkpoint/restore round trip, and remote
// execution composes with the commit machinery.
#include <gtest/gtest.h>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "dist/rfork.hpp"

namespace mw {
namespace {

TEST(CheckpointWorld, SpeculativeStateRoundTrips) {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.cost = CostModel::free();
  Runtime rt(cfg);
  World root = rt.make_root();
  root.space().store<int>(0, 7);

  // Run an alternative that checkpoints its own world mid-flight.
  CheckpointImage image;
  auto out = run_alternatives(
      rt, root,
      {Alternative{"snapshotter", nullptr,
                   [&image](AltContext& ctx) {
                     ctx.space().store<int>(64, 99);
                     Registers regs;
                     regs.gp[0] = ctx.pid();
                     image = take_checkpoint(ctx.space(), regs);
                     ctx.work(1);
                   },
                   nullptr}});
  ASSERT_FALSE(out.failed);

  // The image contains the speculative writes *and* the inherited state.
  auto restored = restore_checkpoint(image);
  ASSERT_TRUE(restored.ok);
  EXPECT_EQ(restored.space.load<int>(0), 7);
  EXPECT_EQ(restored.space.load<int>(64), 99);
  EXPECT_EQ(restored.regs.ret, Registers::kRestored);
}

TEST(CheckpointWorld, RestoredSpaceCanBeCommitted) {
  // Restore-then-adopt: the distributed path's way of absorbing a remote
  // child's state into the parent.
  AddressSpace parent(64, 32);
  parent.store<int>(0, 1);
  AddressSpace child = parent.fork();
  child.store<int>(0, 2);
  child.store<int>(128, 3);

  auto moved = restore_checkpoint(take_checkpoint(child, Registers{}));
  ASSERT_TRUE(moved.ok);
  parent.adopt(std::move(moved.space));
  EXPECT_EQ(parent.load<int>(0), 2);
  EXPECT_EQ(parent.load<int>(128), 3);
}

TEST(CheckpointWorld, RforkCostReflectsSpeculativeResidency) {
  // A world that dirtied more pages ships a bigger checkpoint.
  RemoteForker forker{LinkModel{}, DistCost{}};
  AddressSpace small(4096, 64);
  small.store<int>(0, 1);
  AddressSpace big(4096, 64);
  for (int p = 0; p < 32; ++p) big.store<int>(p * 4096, p);
  auto rs = forker.full_copy(small);
  auto rb = forker.full_copy(big);
  EXPECT_LT(rs.total_elapsed, rb.total_elapsed);
  EXPECT_LT(rs.bytes_shipped, rb.bytes_shipped);
}

TEST(CheckpointWorld, CowSharingSurvivesIntoCheckpointSize) {
  // Forked worlds share pages; a child that wrote little ships little
  // beyond the inherited resident set — but the image is self-contained.
  AddressSpace parent(4096, 64);
  for (int p = 0; p < 16; ++p) parent.store<int>(p * 4096, p);
  AddressSpace child = parent.fork();
  child.store<int>(0, 99);
  auto img = take_checkpoint(child, Registers{});
  EXPECT_EQ(img.resident_pages, 16u);  // self-contained: all resident pages
  auto r = restore_checkpoint(img);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.space.load<int>(0), 99);
  EXPECT_EQ(r.space.load<int>(5 * 4096), 5);
}

}  // namespace
}  // namespace mw
