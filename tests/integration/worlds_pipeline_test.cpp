// Integration: the full §2.4.2 pipeline — SpecRuntime actors + predicated
// messages + speculative console. This is the speculative_pipeline example
// as assertions, plus deeper split/resolution scenarios.
#include <gtest/gtest.h>

#include "io/spec_console.hpp"
#include "worlds/spec_runtime.hpp"

namespace mw {
namespace {

struct Pipeline {
  SpecRuntime rt;
  Teletype tty;
  SpeculativeConsole console;
  LogicalId logger = kNoLogical;

  Pipeline() : console(rt.processes(), tty) {
    logger = rt.spawn_root("logger", [this](ProcCtx& ctx, const Message& m) {
      console.write(ctx.pid(), ctx.predicates(), m.text());
    });
    rt.on_copy_certain = [this](Pid pid) { console.flush(pid); };
  }
};

TEST(WorldsPipeline, WinnersOutputAppearsLosersDoesNot) {
  Pipeline p;
  LogicalId parent = p.rt.spawn_root("parent");
  p.rt.spawn_alternatives(
      parent,
      {AltSpec{"A",
               [&p](ProcCtx& ctx) {
                 ctx.send_text(p.logger, "A: go");
                 ctx.after(vt_ms(5), [&p](ProcCtx& c) {
                   c.send_text(p.logger, "A: done");
                   c.after(vt_ms(1), [](ProcCtx& c2) { c2.try_sync(); });
                 });
               },
               nullptr},
       AltSpec{"B",
               [&p](ProcCtx& ctx) {
                 ctx.send_text(p.logger, "B: go");
                 ctx.after(vt_ms(50), [](ProcCtx& c) { c.try_sync(); });
               },
               nullptr}});
  p.rt.run();
  EXPECT_EQ(p.tty.output(), (std::vector<std::string>{"A: go", "A: done"}));
  EXPECT_EQ(p.console.discarded_lines(), 1u);  // B's buffered line
  ASSERT_EQ(p.rt.live_copies(p.logger).size(), 1u);
  EXPECT_TRUE(p.rt.predicates_of(p.rt.live_copies(p.logger)[0]).empty());
}

TEST(WorldsPipeline, AbortingSpeculationLeavesCleanWorld) {
  Pipeline p;
  LogicalId parent = p.rt.spawn_root("parent");
  p.rt.spawn_alternatives(
      parent,
      {AltSpec{"doomed",
               [&p](ProcCtx& ctx) {
                 ctx.send_text(p.logger, "doomed: hello");
                 ctx.after(vt_ms(2), [](ProcCtx& c) { c.abort(); });
               },
               nullptr}});
  p.rt.run();
  EXPECT_TRUE(p.tty.output().empty());
  ASSERT_EQ(p.rt.live_copies(p.logger).size(), 1u);
  EXPECT_TRUE(p.rt.predicates_of(p.rt.live_copies(p.logger)[0]).empty());
}

TEST(WorldsPipeline, ThreeAlternativesThreeWaySplitResolves) {
  Pipeline p;
  LogicalId parent = p.rt.spawn_root("parent");
  auto talker = [&p](const char* name, VDuration sync_after) {
    return AltSpec{name,
                   [&p, name, sync_after](ProcCtx& ctx) {
                     ctx.send_text(p.logger, std::string(name) + ": msg");
                     ctx.after(sync_after,
                               [](ProcCtx& c) { c.try_sync(); });
                   },
                   nullptr};
  };
  p.rt.spawn_alternatives(parent, {talker("x", vt_ms(30)),
                                   talker("y", vt_ms(10)),
                                   talker("z", vt_ms(20))});
  p.rt.run();
  // y wins; only its line prints, and the logger collapses to one certain
  // copy despite having split for every speculative sender that reached it.
  EXPECT_EQ(p.tty.output(), (std::vector<std::string>{"y: msg"}));
  ASSERT_EQ(p.rt.live_copies(p.logger).size(), 1u);
  EXPECT_TRUE(p.rt.predicates_of(p.rt.live_copies(p.logger)[0]).empty());
  EXPECT_GE(p.rt.stats().splits, 2u);
}

TEST(WorldsPipeline, SequentialSpeculationsReuseLogger) {
  // Two alt groups one after the other: the logger must survive both and
  // end certain with both winners' lines in order.
  Pipeline p;
  LogicalId parent1 = p.rt.spawn_root("parent1");
  p.rt.spawn_alternatives(
      parent1, {AltSpec{"first",
                        [&p](ProcCtx& ctx) {
                          ctx.send_text(p.logger, "round 1");
                          ctx.after(vt_ms(1),
                                    [](ProcCtx& c) { c.try_sync(); });
                        },
                        nullptr}});
  p.rt.run();
  LogicalId parent2 = p.rt.spawn_root("parent2");
  p.rt.spawn_alternatives(
      parent2, {AltSpec{"second",
                        [&p](ProcCtx& ctx) {
                          ctx.send_text(p.logger, "round 2");
                          ctx.after(vt_ms(1),
                                    [](ProcCtx& c) { c.try_sync(); });
                        },
                        nullptr}});
  p.rt.run();
  EXPECT_EQ(p.tty.output(),
            (std::vector<std::string>{"round 1", "round 2"}));
  EXPECT_EQ(p.rt.live_copies(p.logger).size(), 1u);
}

TEST(WorldsPipeline, WinnerStateCommittedToParentWorld) {
  // The winning alternative's page writes land in the parent's world.
  SpecRuntime rt;
  LogicalId parent = rt.spawn_root("parent", nullptr, [](ProcCtx& ctx) {
    ctx.space().store<int>(0, 1);
  });
  const Pid ppid = rt.live_copies(parent)[0];
  rt.spawn_alternatives(
      parent,
      {AltSpec{"w",
               [](ProcCtx& ctx) {
                 ctx.space().store<int>(0, 42);
                 ctx.after(vt_ms(2), [](ProcCtx& c) { c.try_sync(); });
               },
               nullptr},
       AltSpec{"l",
               [](ProcCtx& ctx) {
                 ctx.space().store<int>(0, 666);
                 ctx.after(vt_ms(20), [](ProcCtx& c) { c.try_sync(); });
               },
               nullptr}});
  rt.run();
  EXPECT_EQ(rt.space_of(ppid).load<int>(0), 42);
}

}  // namespace
}  // namespace mw
