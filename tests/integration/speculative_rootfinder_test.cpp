// Integration: the §4.3 rootfinder application across execution backends —
// num (Jenkins–Traub) + core (alternative blocks) + proc (schedulers).
#include <gtest/gtest.h>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "num/jenkins_traub.hpp"
#include "num/polyalgorithm.hpp"
#include "num/workload.hpp"

namespace mw {
namespace {

std::vector<Alternative> angle_alternatives(const Poly& poly, int n,
                                            VDuration per_iter) {
  std::vector<Alternative> alts;
  for (int k = 0; k < n; ++k) {
    const double angle = 49.0 + 360.0 * k / n;
    alts.push_back(Alternative{
        "angle" + std::to_string(k), nullptr,
        [&poly, angle, per_iter](AltContext& ctx) {
          JtConfig jt;
          jt.start_angle_deg = angle;
          RootResult r = jenkins_traub(poly, jt);
          ctx.work(static_cast<VDuration>(r.iterations) * per_iter);
          if (!r.converged) ctx.fail(r.note);
          // Publish the root count as the result payload.
          ctx.set_result_string(std::to_string(r.roots.size()));
        },
        nullptr});
  }
  return alts;
}

TEST(SpeculativeRootfinder, VirtualBackendFindsAllRoots) {
  Rng rng(21);
  PolyWorkload w = make_clustered_poly(rng);
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = 2;
  cfg.cost = CostModel::calibrated_hp();
  Runtime rt(cfg);
  World root = rt.make_root();
  auto out = run_alternatives(rt, root,
                              angle_alternatives(w.poly, 4, vt_ms(5)));
  ASSERT_FALSE(out.failed);
  EXPECT_EQ(std::string(out.result.begin(), out.result.end()),
            std::to_string(w.poly.degree()));
}

TEST(SpeculativeRootfinder, VirtualDeterministicAcrossRuns) {
  Rng rng(22);
  PolyWorkload w = make_clustered_poly(rng);
  auto run = [&] {
    RuntimeConfig cfg;
    cfg.backend = AltBackend::kVirtual;
    cfg.processors = 2;
    cfg.cost = CostModel::calibrated_hp();
    Runtime rt(cfg);
    World root = rt.make_root();
    return run_alternatives(rt, root,
                            angle_alternatives(w.poly, 5, vt_ms(5)));
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.overhead.total(), b.overhead.total());
}

TEST(SpeculativeRootfinder, ThreadBackendAgreesOnOutcome) {
  Rng rng(23);
  PolyWorkload w = make_clustered_poly(rng);
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kThread;
  Runtime rt(cfg);
  World root = rt.make_root();
  auto out = run_alternatives(rt, root,
                              angle_alternatives(w.poly, 3, vt_ms(1)));
  ASSERT_FALSE(out.failed);
  EXPECT_EQ(std::string(out.result.begin(), out.result.end()),
            std::to_string(w.poly.degree()));
}

TEST(SpeculativeRootfinder, ProcessorSharingAndFcfsAgreeOnWinnerSet) {
  // Different schedulers may pick different winners, but both must pick a
  // *successful* alternative, and PS must never beat FCFS's winner time
  // when there are at least as many processors as alternatives.
  Rng rng(25);
  PolyWorkload w = make_clustered_poly(rng);
  auto run = [&](RuntimeConfig::Sched sched, std::size_t procs) {
    RuntimeConfig cfg;
    cfg.backend = AltBackend::kVirtual;
    cfg.processors = procs;
    cfg.sched = sched;
    cfg.cost = CostModel::free();
    Runtime rt(cfg);
    World root = rt.make_root();
    return run_alternatives(rt, root,
                            angle_alternatives(w.poly, 4, vt_ms(5)));
  };
  auto fcfs = run(RuntimeConfig::Sched::kFcfs, 4);
  auto ps = run(RuntimeConfig::Sched::kProcessorSharing, 4);
  ASSERT_FALSE(fcfs.failed);
  ASSERT_FALSE(ps.failed);
  // With processors >= alternatives both run everything at full rate:
  // same winner, same time.
  EXPECT_EQ(fcfs.winner, ps.winner);
  EXPECT_EQ(fcfs.elapsed, ps.elapsed);
}

TEST(SpeculativeRootfinder, PolyalgorithmAsAlternatives) {
  // §4.3's other use: rotations of a method suite racing as alternatives.
  Rng rng(26);
  WorkloadConfig wcfg;
  wcfg.degree = 10;
  wcfg.clusters = 1;
  wcfg.cluster_gap = 0.05;
  PolyWorkload w = make_clustered_poly(rng, wcfg);

  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = 4;
  cfg.cost = CostModel::free();
  Runtime rt(cfg);
  World root = rt.make_root();

  std::vector<Alternative> alts;
  auto suite = standard_method_suite();
  for (auto& rotation : method_rotations(suite)) {
    alts.push_back(Alternative{
        "starts-with-" + rotation[0].name, nullptr,
        [&w, rotation](AltContext& ctx) {
          auto out = run_polyalgorithm(w.poly, rotation);
          ctx.work(static_cast<VDuration>(out.total_iterations));
          if (!out.result.converged) ctx.fail("all methods failed");
          ctx.set_result_string(out.method_used);
        },
        nullptr});
  }
  auto out = run_alternatives(rt, root, alts);
  ASSERT_FALSE(out.failed);
  // Whatever rotation won, the winning method must be from the suite.
  const std::string used(out.result.begin(), out.result.end());
  bool known = false;
  for (const auto& m : suite) known |= m.name == used;
  EXPECT_TRUE(known) << used;
}

}  // namespace
}  // namespace mw
