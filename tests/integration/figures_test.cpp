// Regression net for the paper-level properties the benches print: the
// measured PI of a real speculative run must sit on the analytic curve
// PI = R_mu / (1 + R_o), and Table I's scheduling shape must hold. If a
// runtime change breaks a figure, these tests catch it before the bench
// output is regenerated.
#include <gtest/gtest.h>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "model/perf_model.hpp"

namespace mw {
namespace {

AltOutcome run_synthetic(Runtime& rt, const std::vector<VDuration>& durations,
                         int dirty_pages = 1) {
  World root = rt.make_root();
  for (int p = 0; p < 16; ++p)
    root.space().store<double>(static_cast<std::uint64_t>(p) * 4096, 1.0);
  std::vector<Alternative> alts;
  for (std::size_t i = 0; i < durations.size(); ++i) {
    const VDuration d = durations[i];
    alts.push_back(Alternative{
        "alt" + std::to_string(i), nullptr,
        [d, dirty_pages](AltContext& ctx) {
          for (int p = 0; p < dirty_pages; ++p)
            ctx.space().store<int>(static_cast<std::uint64_t>(p) * 4096, p);
          ctx.work(d);
        },
        nullptr});
  }
  return run_alternatives(rt, root, alts);
}

RuntimeConfig fig_config() {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = 4;
  cfg.cost = CostModel::calibrated_hp();
  cfg.num_pages = 512;
  return cfg;
}

TEST(Figures, MeasuredPiSitsOnAnalyticCurve) {
  // Sweep R_mu like Figure 3: measured PI == R_mu/(1+R_o_measured).
  for (double r_mu : {1.0, 2.0, 3.5, 5.0}) {
    Runtime rt(fig_config());
    const VDuration base = vt_ms(200);
    const int n = 4;
    std::vector<VDuration> durations(n);
    durations[0] = base;
    const double rest =
        (r_mu * n * static_cast<double>(base) - static_cast<double>(base)) /
        (n - 1);
    for (int i = 1; i < n; ++i) durations[static_cast<std::size_t>(i)] =
        static_cast<VDuration>(rest);

    AltOutcome out = run_synthetic(rt, durations);
    ASSERT_FALSE(out.failed);
    std::vector<double> secs;
    for (VDuration d : durations) secs.push_back(vt_to_sec(d));
    const double pi = tau_mean(secs) / vt_to_sec(out.elapsed);
    const double r_o =
        (vt_to_sec(out.elapsed) - tau_best(secs)) / tau_best(secs);
    EXPECT_NEAR(pi, performance_improvement(r_mu, r_o), 0.02)
        << "r_mu=" << r_mu;
  }
}

TEST(Figures, OverheadGrowsWithWriteFraction) {
  // Figure 4's mechanism: more dirty pages -> more R_o -> less PI,
  // monotonically.
  double last_pi = 1e18;
  constexpr double kE = 2.718281828459045;
  for (int dirty : {1, 16, 64, 256}) {
    Runtime rt(fig_config());
    const VDuration base = vt_ms(400);
    const auto slow =
        static_cast<VDuration>((2.0 * kE - 1.0) * static_cast<double>(base));
    AltOutcome out = run_synthetic(rt, {base, slow}, dirty);
    ASSERT_FALSE(out.failed);
    const std::vector<double> secs{vt_to_sec(base), vt_to_sec(slow)};
    const double pi = tau_mean(secs) / vt_to_sec(out.elapsed);
    EXPECT_LT(pi, last_pi) << "dirty=" << dirty;
    last_pi = pi;
  }
}

TEST(Figures, TableOneTimesharingShape) {
  // par improves at procs<=processors, degrades beyond (PS scheduling).
  RuntimeConfig cfg = fig_config();
  cfg.processors = 2;
  cfg.sched = RuntimeConfig::Sched::kProcessorSharing;

  std::vector<VDuration> pool{vt_sec(4), vt_sec(3), vt_sec(5), vt_sec(4),
                              vt_sec(4), vt_sec(5)};
  std::vector<double> par;
  for (int n = 1; n <= 6; ++n) {
    Runtime rt(cfg);
    std::vector<VDuration> durations(pool.begin(), pool.begin() + n);
    AltOutcome out = run_synthetic(rt, durations);
    ASSERT_FALSE(out.failed);
    par.push_back(vt_to_sec(out.elapsed));
  }
  // procs=2 beats procs=1 (a faster alternative joined, no contention).
  EXPECT_LT(par[1], par[0]);
  // Beyond the processor count, contention only adds time.
  EXPECT_GE(par[2], par[1]);
  EXPECT_GE(par[3], par[2]);
  EXPECT_GE(par[4], par[3]);
}

TEST(Figures, SuperlinearSpeedupIsReachable) {
  // §3.3: with sufficient variance and small overhead, N processors give
  // more than N-fold improvement over C_mean.
  Runtime rt(fig_config());
  const std::vector<VDuration> durations{vt_ms(100), vt_sec(20), vt_sec(20),
                                         vt_sec(20)};
  AltOutcome out = run_synthetic(rt, durations);
  ASSERT_FALSE(out.failed);
  std::vector<double> secs;
  for (VDuration d : durations) secs.push_back(vt_to_sec(d));
  const double pi = tau_mean(secs) / vt_to_sec(out.elapsed);
  EXPECT_GT(pi, static_cast<double>(durations.size()));  // superlinear
}

}  // namespace
}  // namespace mw
