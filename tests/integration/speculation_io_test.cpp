// Integration: alternative blocks (core) + speculative I/O (io) — losing
// worlds' output must never reach the teletype; the winner's output
// appears exactly once, in order.
#include <gtest/gtest.h>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "io/source_gate.hpp"
#include "io/spec_console.hpp"

namespace mw {
namespace {

RuntimeConfig virtual_config() {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = 4;
  cfg.cost = CostModel::free();
  cfg.page_size = 64;
  cfg.num_pages = 32;
  return cfg;
}

TEST(SpeculationIo, OnlyWinnerOutputReachesTeletype) {
  Runtime rt(virtual_config());
  Teletype tty;
  SpeculativeConsole console(rt.processes(), tty);
  World root = rt.make_root();

  auto talker = [&](const std::string& who, VDuration work) {
    return [&console, who, work](AltContext& ctx) {
      console.write(ctx.pid(), ctx.world().predicates(),
                    who + ": step 1");
      ctx.work(work);
      console.write(ctx.pid(), ctx.world().predicates(),
                    who + ": step 2");
    };
  };
  auto out = run_alternatives(
      rt, root,
      {Alternative{"fast", nullptr, talker("fast", 10), nullptr},
       Alternative{"slow", nullptr, talker("slow", 1000), nullptr}});
  ASSERT_EQ(out.winner, 0u);
  EXPECT_EQ(tty.output(),
            (std::vector<std::string>{"fast: step 1", "fast: step 2"}));
  EXPECT_GE(console.discarded_lines(), 1u);
}

TEST(SpeculationIo, FailureMeansNothingPrints) {
  Runtime rt(virtual_config());
  Teletype tty;
  SpeculativeConsole console(rt.processes(), tty);
  World root = rt.make_root();
  auto out = run_alternatives(
      rt, root,
      {Alternative{"doomed", nullptr,
                   [&](AltContext& ctx) {
                     console.write(ctx.pid(), ctx.world().predicates(),
                                   "phantom");
                     ctx.fail("no");
                   },
                   nullptr}});
  EXPECT_TRUE(out.failed);
  EXPECT_TRUE(tty.output().empty());
}

TEST(SpeculationIo, SharedInputReadOnceAcrossAlternatives) {
  // Both alternatives read the input; the device is consumed once per
  // position, replayed to the sibling (§5, Jefferson's stdout).
  Runtime rt(virtual_config());
  Teletype tty({"price=17"});
  SpeculativeConsole console(rt.processes(), tty);
  World root = rt.make_root();

  auto reader = [&](VDuration work) {
    return [&console, work](AltContext& ctx) {
      auto line = console.read_line(ctx.pid());
      if (!line.has_value()) ctx.fail("no input");
      ctx.space().store<int>(0, static_cast<int>(line->size()));
      ctx.work(work);
    };
  };
  auto out = run_alternatives(
      rt, root,
      {Alternative{"a", nullptr, reader(10), nullptr},
       Alternative{"b", nullptr, reader(20), nullptr}});
  ASSERT_FALSE(out.failed);
  EXPECT_EQ(root.space().load<int>(0), 8);  // both parsed "price=17"
  EXPECT_EQ(tty.reads_performed(), 1u);     // one real read
  EXPECT_EQ(console.replayed_reads(), 1u);  // one replay
}

TEST(SpeculationIo, GatedSourceDefersUntilCommit) {
  Runtime rt(virtual_config());
  SourceGate gate(rt.processes(), GatePolicy::kDefer);
  World root = rt.make_root();
  std::vector<std::string> launched;

  auto launcher = [&](const std::string& missile, VDuration work) {
    return [&, missile, work](AltContext& ctx) {
      ctx.work(work);
      // An unbuffered, non-idempotent effect: must wait for the commit.
      gate.request(ctx.pid(), ctx.world().predicates(),
                   [&launched, missile] { launched.push_back(missile); });
      const bool visible = !launched.empty();
      // While speculative, nothing is observable yet — even to us.
      ctx.space().store<int>(0, visible ? 1 : 0);
    };
  };
  auto out = run_alternatives(
      rt, root,
      {Alternative{"plan-a", nullptr, launcher("alpha", 5), nullptr},
       Alternative{"plan-b", nullptr, launcher("beta", 50), nullptr}});
  ASSERT_EQ(out.winner, 0u);
  // Exactly the winner's effect fired, after the block resolved.
  EXPECT_EQ(launched, (std::vector<std::string>{"alpha"}));
  // And during execution neither alternative could observe it.
  EXPECT_EQ(root.space().load<int>(0), 0);
  EXPECT_EQ(gate.dropped(), 1u);
}

}  // namespace
}  // namespace mw
