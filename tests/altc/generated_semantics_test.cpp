// End-to-end proof for the preprocessor: the exact code altc emits for a
// representative DSL block (generated once by the translator, pasted
// verbatim below, and re-checked against the live translator) compiles
// against the library and behaves correctly.
#include <gtest/gtest.h>

#include "altc/altc.hpp"
#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"

namespace mw {
namespace {

const char* kDslSource = R"SRC(
ALT_BLOCK(result) timeout(mw::vt_sec(10)) async {
  alternative("fast") guard(w.space().load<int>(0) >= 0) {
    ctx.space().store<int>(8, 111);
    ctx.work(10);
  }
  alternative("slow") {
    ctx.space().store<int>(8, 222);
    ctx.work(500);
  }
} ON_FAIL {
  failed_marker = true;
}
)SRC";

TEST(AltcGenerated, EmittedCodeCompilesAndRuns) {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = 2;
  cfg.cost = CostModel::free();
  cfg.page_size = 64;
  cfg.num_pages = 32;
  Runtime rt(cfg);
  World world = rt.make_root();
  world.space().store<int>(0, 5);
  bool failed_marker = false;

  // --- BEGIN altc output for kDslSource (verbatim) ---------------------
  {
  std::vector<mw::Alternative> result_alts__;
  result_alts__.push_back(mw::Alternative{"fast", [&](const mw::World& w) { return (w.space().load<int>(0) >= 0); }, [&](mw::AltContext& ctx) {
    ctx.space().store<int>(8, 111);
    ctx.work(10);
  }, nullptr});
  result_alts__.push_back(mw::Alternative{"slow", nullptr, [&](mw::AltContext& ctx) {
    ctx.space().store<int>(8, 222);
    ctx.work(500);
  }, nullptr});
  mw::AltOptions result_opts__;
  result_opts__.timeout = (mw::vt_sec(10));
  result_opts__.elimination = mw::Elimination::kAsynchronous;
  mw::AltOutcome result = mw::run_alternatives(rt, world, result_alts__, result_opts__);
  if (result.failed) {
  failed_marker = true;
}
  // --- END altc output --------------------------------------------------

  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.winner, 0u);
  EXPECT_EQ(result.winner_name, "fast");
  }

  EXPECT_FALSE(failed_marker);
  EXPECT_EQ(world.space().load<int>(8), 111);  // the winner's write landed
}

TEST(AltcGenerated, LiveTranslatorStillEmitsThePastedCode) {
  // Guard against drift: re-translate the DSL and check the key lines of
  // the pasted block still come out of the translator.
  auto r = altc::translate(kDslSource, "rt", "world");
  ASSERT_TRUE(r.ok) << r.error;
  for (const char* fragment :
       {"std::vector<mw::Alternative> result_alts__;",
        "result_opts__.timeout = (mw::vt_sec(10));",
        "mw::AltOutcome result = mw::run_alternatives(rt, world, "
        "result_alts__, result_opts__);",
        "[&](const mw::World& w) { return (w.space().load<int>(0) >= 0); }",
        "if (result.failed)"}) {
    EXPECT_NE(r.output.find(fragment), std::string::npos)
        << "missing: " << fragment;
  }
}

}  // namespace
}  // namespace mw
