#include "altc/altc.hpp"

#include <gtest/gtest.h>

namespace mw::altc {
namespace {

TEST(Altc, PassThroughWithoutBlocks) {
  const std::string src = "int main() { return 0; }\n";
  auto r = translate(src);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.output, src);
  EXPECT_EQ(r.blocks_translated, 0);
}

TEST(Altc, TranslatesSimpleBlock) {
  const std::string src = R"(
ALT_BLOCK(result) timeout(mw::vt_sec(2)) async {
  alternative("fast") { ctx.work(10); }
  alternative("slow") { ctx.work(100); }
} ON_FAIL {
  printf("failed\n");
}
)";
  auto r = translate(src, "runtime", "root");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.blocks_translated, 1);
  EXPECT_NE(r.output.find("mw::run_alternatives(runtime, root"),
            std::string::npos);
  EXPECT_NE(r.output.find("\"fast\""), std::string::npos);
  EXPECT_NE(r.output.find("\"slow\""), std::string::npos);
  EXPECT_NE(r.output.find("result_opts__.timeout = (mw::vt_sec(2))"),
            std::string::npos);
  EXPECT_NE(r.output.find("kAsynchronous"), std::string::npos);
  EXPECT_NE(r.output.find("if (result.failed)"), std::string::npos);
}

TEST(Altc, GuardsBecomeLambdas) {
  const std::string src = R"(
ALT_BLOCK(b) {
  alternative("guarded") guard(w.space().load<int>(0) > 0) { ctx.work(1); }
}
)";
  auto r = translate(src);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(
      r.output.find(
          "[&](const mw::World& w) { return (w.space().load<int>(0) > 0); }"),
      std::string::npos);
}

TEST(Altc, SyncModeEmitsSynchronous) {
  const std::string src =
      "ALT_BLOCK(b) sync { alternative(\"x\") { ctx.work(1); } }";
  auto r = translate(src);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.output.find("kSynchronous"), std::string::npos);
}

TEST(Altc, NestedBracesInBodiesSurvive) {
  const std::string src = R"(
ALT_BLOCK(b) {
  alternative("loops") {
    for (int i = 0; i < 3; ++i) { if (i) { ctx.work(1); } }
  }
}
)";
  auto r = translate(src);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.output.find("for (int i = 0; i < 3; ++i)"), std::string::npos);
}

TEST(Altc, StringsAndCommentsDoNotConfuseScanner) {
  const std::string src = R"(
const char* s = "ALT_BLOCK(not_me) {";
// ALT_BLOCK(commented) {
ALT_BLOCK(real) { alternative("a") { ctx.work(1); /* } */ } }
)";
  auto r = translate(src);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.blocks_translated, 1);
  EXPECT_NE(r.output.find("\"ALT_BLOCK(not_me) {\""), std::string::npos);
}

TEST(Altc, MultipleBlocksInOneFile) {
  const std::string src = R"(
ALT_BLOCK(one) { alternative("a") { ctx.work(1); } }
int x = 5;
ALT_BLOCK(two) { alternative("b") { ctx.work(2); } }
)";
  auto r = translate(src);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.blocks_translated, 2);
  EXPECT_NE(r.output.find("int x = 5;"), std::string::npos);
  EXPECT_NE(r.output.find("mw::AltOutcome one"), std::string::npos);
  EXPECT_NE(r.output.find("mw::AltOutcome two"), std::string::npos);
}

TEST(Altc, SurroundingCodeUntouched) {
  const std::string src =
      "before();\nALT_BLOCK(b) { alternative(\"a\") { x(); } }\nafter();\n";
  auto r = translate(src);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.output.rfind("before();\n", 0), 0u);
  EXPECT_NE(r.output.find("\nafter();\n"), std::string::npos);
}

TEST(Altc, ErrorOnEmptyBlock) {
  auto r = translate("ALT_BLOCK(b) { }");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no alternatives"), std::string::npos);
}

TEST(Altc, ErrorOnMissingLabel) {
  auto r = translate("ALT_BLOCK(b) { alternative(x) { y(); } }");
  EXPECT_FALSE(r.ok);
}

TEST(Altc, ErrorOnUnbalancedBody) {
  auto r = translate("ALT_BLOCK(b) { alternative(\"a\") { if (x) { }");
  EXPECT_FALSE(r.ok);
}

TEST(Altc, IdentifierBoundaryRespected) {
  // MY_ALT_BLOCK must not match.
  const std::string src = "MY_ALT_BLOCK(no);\n";
  auto r = translate(src);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.blocks_translated, 0);
  EXPECT_EQ(r.output, src);
}

}  // namespace
}  // namespace mw::altc
