#include "pred/predicate_set.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mw {
namespace {

TEST(PredicateSet, EmptyIsCertain) {
  PredicateSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(PredicateSet, AssumeCompletes) {
  PredicateSet s;
  EXPECT_TRUE(s.assume_completes(3));
  EXPECT_TRUE(s.assumes_completes(3));
  EXPECT_FALSE(s.assumes_fails(3));
  EXPECT_FALSE(s.empty());
}

TEST(PredicateSet, ContradictionRejected) {
  PredicateSet s;
  EXPECT_TRUE(s.assume_completes(3));
  EXPECT_FALSE(s.assume_fails(3));  // would be p and not-p
  EXPECT_TRUE(s.assumes_completes(3));

  PredicateSet t;
  EXPECT_TRUE(t.assume_fails(4));
  EXPECT_FALSE(t.assume_completes(4));
}

TEST(PredicateSet, AssumptionsAreIdempotent) {
  PredicateSet s;
  s.assume_completes(1);
  s.assume_completes(1);
  EXPECT_EQ(s.size(), 1u);
}

TEST(PredicateSet, RelationImpliedWhenSubset) {
  PredicateSet receiver, sender;
  receiver.assume_completes(1);
  receiver.assume_fails(2);
  sender.assume_completes(1);
  EXPECT_EQ(receiver.relation_to(sender), PredRelation::kImplied);
}

TEST(PredicateSet, RelationImpliedWhenSenderEmpty) {
  PredicateSet receiver, sender;
  receiver.assume_completes(1);
  EXPECT_EQ(receiver.relation_to(sender), PredRelation::kImplied);
}

TEST(PredicateSet, RelationConflictOnOppositeAssumption) {
  PredicateSet receiver, sender;
  receiver.assume_fails(5);
  sender.assume_completes(5);
  EXPECT_EQ(receiver.relation_to(sender), PredRelation::kConflict);

  PredicateSet r2, s2;
  r2.assume_completes(6);
  s2.assume_fails(6);
  EXPECT_EQ(r2.relation_to(s2), PredRelation::kConflict);
}

TEST(PredicateSet, RelationExtensionWhenSenderAssumesMore) {
  PredicateSet receiver, sender;
  receiver.assume_completes(1);
  sender.assume_completes(1);
  sender.assume_completes(2);
  EXPECT_EQ(receiver.relation_to(sender), PredRelation::kExtension);
}

TEST(PredicateSet, ConflictDominatesExtension) {
  PredicateSet receiver, sender;
  receiver.assume_fails(1);
  sender.assume_completes(1);  // conflict
  sender.assume_completes(2);  // would be extension
  EXPECT_EQ(receiver.relation_to(sender), PredRelation::kConflict);
}

TEST(PredicateSet, MissingFromComputesNeededAssumptions) {
  PredicateSet receiver, sender;
  receiver.assume_completes(1);
  sender.assume_completes(1);
  sender.assume_completes(2);
  sender.assume_fails(3);
  PredicateSet missing = receiver.missing_from(sender);
  EXPECT_TRUE(missing.assumes_completes(2));
  EXPECT_TRUE(missing.assumes_fails(3));
  EXPECT_FALSE(missing.assumes_completes(1));
  EXPECT_EQ(missing.size(), 2u);
}

TEST(PredicateSet, MergeUnionsConsistentSets) {
  PredicateSet a, b;
  a.assume_completes(1);
  b.assume_fails(2);
  EXPECT_TRUE(a.merge(b));
  EXPECT_TRUE(a.assumes_completes(1));
  EXPECT_TRUE(a.assumes_fails(2));
}

TEST(PredicateSet, MergeRejectsInconsistentLeavesUnchanged) {
  PredicateSet a, b;
  a.assume_completes(1);
  a.assume_completes(9);
  b.assume_fails(1);
  b.assume_completes(7);
  EXPECT_FALSE(a.merge(b));
  EXPECT_FALSE(a.assumes_completes(7));  // unchanged
  EXPECT_EQ(a.size(), 2u);
}

TEST(PredicateSet, ResolveCompletionSimplifies) {
  PredicateSet s;
  s.assume_completes(1);
  s.assume_completes(2);
  EXPECT_EQ(s.resolve(1, /*completed=*/true), PredicateSet::Fate::kSimplified);
  EXPECT_FALSE(s.assumes_completes(1));
  EXPECT_TRUE(s.assumes_completes(2));
}

TEST(PredicateSet, ResolveCompletionDooms) {
  PredicateSet s;
  s.assume_fails(4);
  EXPECT_EQ(s.resolve(4, true), PredicateSet::Fate::kDoomed);
}

TEST(PredicateSet, ResolveFailureSimplifiesAndDooms) {
  PredicateSet s;
  s.assume_fails(4);
  EXPECT_EQ(s.resolve(4, false), PredicateSet::Fate::kSimplified);
  EXPECT_TRUE(s.empty());

  PredicateSet t;
  t.assume_completes(4);
  EXPECT_EQ(t.resolve(4, false), PredicateSet::Fate::kDoomed);
}

TEST(PredicateSet, ResolveUnmentionedPidIsUnaffected) {
  PredicateSet s;
  s.assume_completes(1);
  EXPECT_EQ(s.resolve(99, true), PredicateSet::Fate::kUnaffected);
  EXPECT_EQ(s.resolve(99, false), PredicateSet::Fate::kUnaffected);
}

TEST(PredicateSet, SiblingRivalryConstruction) {
  PredicateSet parent;
  parent.assume_completes(100);
  std::vector<Pid> sibs{11, 12, 13};
  PredicateSet alt = PredicateSet::for_alternative(parent, 12, sibs);
  EXPECT_TRUE(alt.assumes_completes(100));  // inherited
  EXPECT_TRUE(alt.assumes_completes(12));   // self succeeds
  EXPECT_TRUE(alt.assumes_fails(11));       // siblings fail
  EXPECT_TRUE(alt.assumes_fails(13));
  EXPECT_EQ(alt.size(), 4u);
}

TEST(PredicateSet, FailureAlternativeAssumesAllSiblingsFail) {
  PredicateSet parent;
  std::vector<Pid> sibs{21, 22};
  PredicateSet fail = PredicateSet::for_failure(parent, sibs);
  EXPECT_TRUE(fail.assumes_fails(21));
  EXPECT_TRUE(fail.assumes_fails(22));
  EXPECT_FALSE(fail.assumes_completes(21));
}

TEST(PredicateSet, SiblingSetsMutuallyConflict) {
  PredicateSet parent;
  std::vector<Pid> sibs{1, 2, 3};
  PredicateSet a = PredicateSet::for_alternative(parent, 1, sibs);
  PredicateSet b = PredicateSet::for_alternative(parent, 2, sibs);
  EXPECT_EQ(a.relation_to(b), PredRelation::kConflict);
  EXPECT_EQ(b.relation_to(a), PredRelation::kConflict);
}

TEST(PredicateSet, NestedAlternativesAccumulate) {
  PredicateSet root;
  std::vector<Pid> outer{1, 2};
  PredicateSet w1 = PredicateSet::for_alternative(root, 1, outer);
  std::vector<Pid> inner{5, 6};
  PredicateSet w15 = PredicateSet::for_alternative(w1, 5, inner);
  EXPECT_TRUE(w15.assumes_completes(1));
  EXPECT_TRUE(w15.assumes_fails(2));
  EXPECT_TRUE(w15.assumes_completes(5));
  EXPECT_TRUE(w15.assumes_fails(6));
}

TEST(PredicateSet, ToStringListsBothLists) {
  PredicateSet s;
  s.assume_completes(1);
  s.assume_fails(2);
  const std::string str = s.to_string();
  EXPECT_NE(str.find("must: 1"), std::string::npos);
  EXPECT_NE(str.find("cant: 2"), std::string::npos);
}

// Property: for random sequences of assumptions and resolutions, a set
// never holds p and not-p simultaneously, and resolution is monotone (the
// set never grows).
class PredPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PredPropertyTest, ConsistencyInvariantHolds) {
  Rng rng(GetParam());
  PredicateSet s;
  for (int step = 0; step < 300; ++step) {
    const Pid p = static_cast<Pid>(1 + rng.next_below(20));
    switch (rng.next_below(4)) {
      case 0:
        s.assume_completes(p);
        break;
      case 1:
        s.assume_fails(p);
        break;
      default: {
        const std::size_t before = s.size();
        s.resolve(p, rng.next_bool(0.5));
        EXPECT_LE(s.size(), before);
        break;
      }
    }
    for (Pid q = 1; q <= 20; ++q) {
      EXPECT_FALSE(s.assumes_completes(q) && s.assumes_fails(q))
          << "inconsistent on pid " << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace mw
