// End-to-end trace correctness on a scripted race: the virtual backend is
// deterministic, so a 3-alternative block with known costs must produce an
// exact lifecycle event sequence, hand-computable SpecProfile numbers, a
// clean auditor cross-check, and a well-formed Chrome-trace export.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "core/runtime_auditor.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/spec_profile.hpp"
#include "trace/trace.hpp"

namespace mw {
namespace {

// Three alternatives costing 30/10/20 ms under CostModel::free(): alt1
// (10 ms) wins, the others are eliminated at the win time because the
// free model charges nothing for commit or elimination.
struct ScriptedRace {
  Runtime rt;
  World root;
  AltOutcome out;

  static RuntimeConfig config() {
    RuntimeConfig cfg;
    cfg.backend = AltBackend::kVirtual;
    cfg.processors = 3;
    cfg.cost = CostModel::free();
    cfg.page_size = 64;
    cfg.num_pages = 32;
    return cfg;
  }

  ScriptedRace() : rt(config()), root(rt.make_root("scripted")) {
    std::vector<Alternative> alts;
    const VDuration costs[] = {vt_ms(30), vt_ms(10), vt_ms(20)};
    for (int i = 0; i < 3; ++i) {
      const VDuration c = costs[i];
      alts.push_back(Alternative{"alt" + std::to_string(i), nullptr,
                                 [c](AltContext& ctx) {
                                   ctx.space().store<int>(0, 1);
                                   ctx.work(c);
                                 },
                                 nullptr});
    }
    out = run_alternatives(rt, root, alts);
  }
};

std::vector<trace::TraceEvent> run_and_collect(ScriptedRace& race) {
  (void)race;  // constructed (and traced) by the caller under enable
  trace::set_enabled(false);
  return trace::collect();
}

TEST(TraceRace, ExactLifecycleSequence) {
#if defined(MW_TRACE_DISABLED)
  GTEST_SKIP() << "tracing compiled out (MW_TRACE=OFF)";
#endif
  trace::reset();
  trace::set_enabled(true);
  ScriptedRace race;
  const auto events = run_and_collect(race);
  EXPECT_EQ(race.out.winner_name, "alt1");
  EXPECT_EQ(race.out.elapsed, vt_ms(10));

  // Filter to the alt lifecycle; world/page events interleave but the
  // lifecycle order is exact and deterministic.
  std::vector<trace::TraceEvent> alt;
  for (const auto& e : events)
    if (e.kind >= trace::EventKind::kAltBlockBegin &&
        e.kind <= trace::EventKind::kAltBlockEnd)
      alt.push_back(e);

  using K = trace::EventKind;
  const K expected[] = {K::kAltBlockBegin, K::kAltSpawn,    K::kAltSpawn,
                        K::kAltSpawn,      K::kAltWait,     K::kAltChildBegin,
                        K::kAltChildEnd,   K::kAltChildBegin, K::kAltChildEnd,
                        K::kAltChildBegin, K::kAltChildEnd, K::kAltSync,
                        K::kAltEliminate,  K::kAltEliminate, K::kAltBlockEnd};
  ASSERT_EQ(alt.size(), std::size(expected));
  for (std::size_t i = 0; i < alt.size(); ++i)
    EXPECT_EQ(alt[i].kind, expected[i]) << "at lifecycle index " << i;

  const Pid parent = alt[0].pid;
  const std::uint64_t group = alt[0].a;
  EXPECT_EQ(alt[0].b, 3u);  // block_begin.b = alternative count
  EXPECT_EQ(alt[0].t, 0);

  // Spawns name the parent and 1-based alternative indices, in order.
  const Pid spawned[] = {alt[1].pid, alt[2].pid, alt[3].pid};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(alt[1 + i].other, parent);
    EXPECT_EQ(alt[1 + i].a, group);
    EXPECT_EQ(alt[1 + i].b, static_cast<std::uint64_t>(i + 1));
  }

  // alt1 (index 1, cost 10 ms) wins at t = 10 ms; both losers are
  // eliminated at the same instant under the free cost model.
  EXPECT_EQ(alt[11].pid, spawned[1]);
  EXPECT_EQ(alt[11].other, parent);
  EXPECT_EQ(alt[11].t, vt_ms(10));
  EXPECT_EQ(alt[12].pid, spawned[0]);
  EXPECT_EQ(alt[13].pid, spawned[2]);
  EXPECT_EQ(alt[12].t, vt_ms(10));
  EXPECT_EQ(alt[13].t, vt_ms(10));

  // Child spans: all three begin at 0; all three end at the win time —
  // losers stop burning cycles when eliminated, not at their own cost.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(alt[5 + 2 * i].t, 0);
    EXPECT_EQ(alt[6 + 2 * i].t, vt_ms(10));
  }

  EXPECT_EQ(alt[14].pid, parent);
  EXPECT_EQ(alt[14].b, 0u);  // AltFailure::kNone
  EXPECT_EQ(alt[14].t, vt_ms(10));

  // The world layer recorded one fork per alternative and one commit.
  std::size_t forks = 0, commits = 0;
  for (const auto& e : events) {
    if (e.kind == trace::EventKind::kWorldFork) ++forks;
    if (e.kind == trace::EventKind::kWorldCommit) ++commits;
  }
  EXPECT_EQ(forks, 3u);
  EXPECT_EQ(commits, 1u);
  trace::reset();
}

TEST(TraceRace, SpecProfileHandComputed) {
#if defined(MW_TRACE_DISABLED)
  GTEST_SKIP() << "tracing compiled out (MW_TRACE=OFF)";
#endif
  trace::reset();
  trace::set_enabled(true);
  ScriptedRace race;
  const auto events = run_and_collect(race);
  const trace::SpecProfile prof = trace::build_spec_profile(events);

  ASSERT_EQ(prof.races.size(), 1u);
  const trace::RaceProfile& r = prof.races[0];
  EXPECT_EQ(r.spawned, 3u);
  EXPECT_EQ(r.survived, 1u);
  EXPECT_EQ(r.eliminated, 2u);
  EXPECT_EQ(r.aborted, 0u);
  EXPECT_FALSE(r.timed_out);

  // All three children run from 0 to the 10 ms win: 30 ms of execution,
  // of which the two losers' 20 ms is wasted. Ratio = 2/3.
  EXPECT_EQ(r.work_total, 3 * vt_ms(10));
  EXPECT_EQ(r.work_wasted, 2 * vt_ms(10));
  EXPECT_NEAR(r.wasted_ratio(), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(r.first_win, vt_ms(10));
  EXPECT_EQ(r.quiesce, vt_ms(10));  // DES backends eliminate instantly

  EXPECT_EQ(prof.worlds_spawned(), 3u);
  EXPECT_EQ(prof.worlds_survived(), 1u);
  EXPECT_NEAR(prof.wasted_ratio(), 2.0 / 3.0, 1e-9);

  // The compact summary carries the headline numbers.
  const std::string s = prof.to_string();
  EXPECT_NE(s.find("3 world(s) spawned"), std::string::npos);
  EXPECT_NE(s.find("wasted-work ratio 0.667"), std::string::npos);
  trace::reset();
}

TEST(TraceRace, AuditorCrossChecksTrace) {
#if defined(MW_TRACE_DISABLED)
  GTEST_SKIP() << "tracing compiled out (MW_TRACE=OFF)";
#endif
  trace::reset();
  trace::set_enabled(true);
  ScriptedRace race;
  const auto events = run_and_collect(race);

  RuntimeAuditor auditor;
  auditor.add_world(race.root);
  const AuditReport report =
      auditor.run(race.rt.processes(), events, trace::dropped());
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_TRUE(report.trace_checked);
  EXPECT_EQ(report.trace_events, events.size());

  // A spawn the process table never saw is a violation.
  auto forged = events;
  trace::TraceEvent fake = forged.front();
  fake.kind = trace::EventKind::kAltSpawn;
  fake.pid = 9999;
  fake.other = 1;
  fake.a = forged.front().a;
  forged.push_back(fake);
  const AuditReport bad = auditor.run(race.rt.processes(), forged, 0);
  EXPECT_FALSE(bad.clean());

  // A lossy stream is skipped with a note, not failed.
  const AuditReport lossy = auditor.run(race.rt.processes(), events, 5);
  EXPECT_TRUE(lossy.clean());
  EXPECT_FALSE(lossy.trace_checked);
  ASSERT_FALSE(lossy.notes.empty());
  trace::reset();
}

TEST(TraceRace, ChromeExportWellFormed) {
#if defined(MW_TRACE_DISABLED)
  GTEST_SKIP() << "tracing compiled out (MW_TRACE=OFF)";
#endif
  trace::reset();
  trace::set_enabled(true);
  ScriptedRace race;
  const auto events = run_and_collect(race);
  const std::string json = trace::to_chrome_json(events);

  // Structural sanity (CI additionally json.loads the exported file).
  EXPECT_EQ(json.find("{\"displayTimeUnit\""), 0u);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);

  auto count = [&json](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size()))
      ++n;
    return n;
  };
  // One parent block span + three world spans.
  EXPECT_EQ(count("\"ph\":\"X\""), 4u);
  // Flow arrows pair up: every start has a finish.
  EXPECT_EQ(count("\"ph\":\"s\""), count("\"ph\":\"f\""));
  EXPECT_GE(count("\"ph\":\"s\""), 3u);  // at least one per spawned world
  // Fates are labelled for the lineage view.
  EXPECT_EQ(count("\"fate\":\"won\""), 1u);
  EXPECT_EQ(count("\"fate\":\"eliminated\""), 2u);
  EXPECT_NE(json.find("alt block #"), std::string::npos);

  // Braces and brackets balance (no truncated records).
  std::int64_t depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  trace::reset();
}

}  // namespace
}  // namespace mw
