// Collector mechanics: ring overflow, drop accounting, enable gating and
// the thread-local trace clock. Each TEST runs as its own ctest process,
// but the cases are also written to survive sharing one process: every
// capacity-sensitive case emits from a fresh thread, because
// set_ring_capacity only applies to rings created after the call.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace mw::trace {
namespace {

// Events emitted by `fn` on a brand-new thread (and therefore a
// brand-new ring with the currently configured capacity).
void on_fresh_thread(const std::function<void()>& fn) {
  std::thread t(fn);
  t.join();
}

std::vector<TraceEvent> events_of_kind(EventKind k) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : collect())
    if (e.kind == k) out.push_back(e);
  return out;
}

TEST(TraceRing, OverflowDropsOldestAndCounts) {
  reset();
  set_ring_capacity(8);
  set_enabled(true);
  on_fresh_thread([] {
    for (std::uint64_t i = 0; i < 100; ++i)
      emit(EventKind::kPageCopy, 7, kNoPid, i, i * 3);
  });
  set_enabled(false);

  // 100 pushed into an 8-slot ring: the 8 newest survive, 92 dropped.
  EXPECT_EQ(dropped(), 92u);
  std::vector<TraceEvent> copies = events_of_kind(EventKind::kPageCopy);
  ASSERT_EQ(copies.size(), 8u);
  std::sort(copies.begin(), copies.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              return x.a < y.a;
            });
  for (std::size_t i = 0; i < 8; ++i) {
    const std::uint64_t expect_a = 92 + i;
    EXPECT_EQ(copies[i].a, expect_a);
    // Drop-oldest must never tear a surviving record.
    EXPECT_EQ(copies[i].b, expect_a * 3);
    EXPECT_EQ(copies[i].pid, 7u);
    EXPECT_EQ(copies[i].kind, EventKind::kPageCopy);
  }
  set_ring_capacity(std::size_t{1} << 16);
  reset();
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  reset();
  set_ring_capacity(5);  // rounds to 8
  set_enabled(true);
  on_fresh_thread([] {
    for (std::uint64_t i = 0; i < 8; ++i)
      emit(EventKind::kPageAlloc, 1, kNoPid, i);
  });
  set_enabled(false);
  EXPECT_EQ(dropped(), 0u);
  EXPECT_EQ(events_of_kind(EventKind::kPageAlloc).size(), 8u);
  set_ring_capacity(std::size_t{1} << 16);
  reset();
}

TEST(TraceRing, DisabledEmitsNothing) {
  reset();
  set_enabled(false);
  const std::uint64_t before = emitted();
  MW_TRACE_EVENT(EventKind::kWorldFork, 1, 2);
  emit(EventKind::kWorldFork, 1, 2);  // direct call is also a no-op
  EXPECT_EQ(emitted(), before);
  EXPECT_TRUE(collect().empty());
}

TEST(TraceRing, ThreadClockStampsEvents) {
  reset();
  set_enabled(true);
  set_now(1234);
  emit(EventKind::kGateDefer, 3);            // inherits the thread clock
  emit(EventKind::kGateRelease, 3, kNoPid, 0, 0, 99);  // explicit t wins
  set_enabled(false);
  const auto defers = events_of_kind(EventKind::kGateDefer);
  const auto releases = events_of_kind(EventKind::kGateRelease);
  ASSERT_EQ(defers.size(), 1u);
  ASSERT_EQ(releases.size(), 1u);
  EXPECT_EQ(defers[0].t, 1234);
  EXPECT_EQ(releases[0].t, 99);
  set_now(kNoTraceTime);
  reset();
}

TEST(TraceRing, DrainEmptiesAndResets) {
  reset();
  set_enabled(true);
  emit(EventKind::kMsgAccept, 1);
  emit(EventKind::kMsgIgnore, 2);
  set_enabled(false);
  EXPECT_EQ(drain().size(), 2u);
  EXPECT_TRUE(collect().empty());
  EXPECT_EQ(emitted(), 0u);  // drain rewinds the global sequence
}

TEST(TraceRing, RecordIs48Bytes) {
  // The schema contract documented in docs/OBSERVABILITY.md.
  EXPECT_EQ(sizeof(TraceEvent), 48u);
}

}  // namespace
}  // namespace mw::trace
