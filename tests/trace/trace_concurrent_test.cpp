// Concurrent emitters: each thread writes its own ring, so the only
// shared state on the emit path is the relaxed sequence counter. The
// sanitizer CI job runs this under ASan+UBSan and TSan.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

namespace mw::trace {
namespace {

TEST(TraceConcurrent, ParallelEmittersLoseNothing) {
#if defined(MW_TRACE_DISABLED)
  GTEST_SKIP() << "tracing compiled out (MW_TRACE=OFF)";
#endif
  reset();
  set_ring_capacity(std::size_t{1} << 16);
  set_enabled(true);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        MW_TRACE_EVENT(EventKind::kPageCopy,
                       static_cast<Pid>(t + 1), kNoPid, i);
    });
  }
  for (auto& t : threads) t.join();
  set_enabled(false);

  EXPECT_EQ(dropped(), 0u);
  std::vector<TraceEvent> copies;
  for (const TraceEvent& e : collect())
    if (e.kind == EventKind::kPageCopy) copies.push_back(e);
  ASSERT_EQ(copies.size(), kThreads * kPerThread);

  // Sequence numbers are globally unique and collect() returns them in
  // ascending order (its merge sorts by seq).
  std::set<std::uint64_t> seqs;
  for (std::size_t i = 0; i < copies.size(); ++i) {
    seqs.insert(copies[i].seq);
    if (i > 0) {
      EXPECT_LT(copies[i - 1].seq, copies[i].seq);
    }
  }
  EXPECT_EQ(seqs.size(), copies.size());

  // Per-emitter streams arrive intact and in order: every thread's a
  // payloads are exactly 0..kPerThread-1 when filtered by pid.
  for (int t = 0; t < kThreads; ++t) {
    std::vector<std::uint64_t> payload;
    for (const TraceEvent& e : copies)
      if (e.pid == static_cast<Pid>(t + 1)) payload.push_back(e.a);
    ASSERT_EQ(payload.size(), kPerThread);
    EXPECT_TRUE(std::is_sorted(payload.begin(), payload.end()));
    EXPECT_EQ(payload.front(), 0u);
    EXPECT_EQ(payload.back(), kPerThread - 1);
  }
  reset();
}

TEST(TraceConcurrent, EnableDisableRacesAreBenign) {
  // Flipping the master switch while emitters run must only gate events,
  // never corrupt them (the switch is a relaxed atomic bool).
  reset();
  set_ring_capacity(std::size_t{1} << 16);
  std::atomic<bool> stop{false};
  std::thread flipper([&stop] {
    while (!stop.load()) {
      set_enabled(true);
      set_enabled(false);
    }
  });
  std::vector<std::thread> emitters;
  for (int t = 0; t < 4; ++t)
    emitters.emplace_back([&stop, t] {
      for (std::uint64_t i = 0; i < 20000 && !stop.load(); ++i)
        MW_TRACE_EVENT(EventKind::kMsgAccept, static_cast<Pid>(t + 1),
                       kNoPid, i, i ^ 0xabcdef);
    });
  for (auto& t : emitters) t.join();
  stop.store(true);
  flipper.join();
  set_enabled(false);

  // Whatever made it through is well-formed.
  for (const TraceEvent& e : collect()) {
    if (e.kind != EventKind::kMsgAccept) continue;
    EXPECT_GE(e.pid, 1u);
    EXPECT_LE(e.pid, 4u);
    EXPECT_EQ(e.b, e.a ^ 0xabcdef);
  }
  reset();
}

}  // namespace
}  // namespace mw::trace
