#include "msg/mailbox.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

TEST(Mailbox, FifoOrder) {
  Mailbox mb;
  for (int i = 0; i < 5; ++i) mb.push(Message::of_text(std::to_string(i)));
  for (int i = 0; i < 5; ++i) {
    auto m = mb.pop();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->text(), std::to_string(i));
  }
  EXPECT_FALSE(mb.pop().has_value());
}

TEST(Mailbox, SequenceNumbersMonotone) {
  Mailbox mb;
  mb.push(Message::of_text("a"));
  mb.push(Message::of_text("b"));
  EXPECT_EQ(mb.pop()->seq, 0u);
  EXPECT_EQ(mb.pop()->seq, 1u);
}

TEST(Mailbox, SizeAndEmpty) {
  Mailbox mb;
  EXPECT_TRUE(mb.empty());
  mb.push(Message::of_text("x"));
  EXPECT_EQ(mb.size(), 1u);
  mb.pop();
  EXPECT_TRUE(mb.empty());
}

TEST(Mailbox, PruneDropsDoomedKeepsOrder) {
  Mailbox mb;
  Message doomed = Message::of_text("dead");
  doomed.predicate.assume_completes(9);
  mb.push(Message::of_text("first"));
  mb.push(doomed);
  mb.push(Message::of_text("last"));
  const std::size_t dropped = mb.prune(
      [](PredicateSet& p) { return !p.assumes_completes(9); });
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(mb.pop()->text(), "first");
  EXPECT_EQ(mb.pop()->text(), "last");
}

TEST(Mailbox, PruneOnEmptyIsNoop) {
  Mailbox mb;
  EXPECT_EQ(mb.prune([](PredicateSet&) { return true; }), 0u);
}

}  // namespace
}  // namespace mw
