#include "msg/delivery.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

Message msg_from(Pid sender, PredicateSet preds) {
  Message m;
  m.sender = sender;
  m.predicate = std::move(preds);
  return m;
}

TEST(Delivery, CertainSenderAlwaysAccepted) {
  PredicateSet receiver;
  receiver.assume_completes(4);
  auto d = decide_delivery(receiver, msg_from(9, PredicateSet{}));
  EXPECT_EQ(d.action, DeliveryAction::kAccept);
  EXPECT_EQ(d.accept_preds, receiver);  // unchanged
}

TEST(Delivery, ImpliedWhenReceiverAlreadyAssumesAll) {
  PredicateSet sender;
  sender.assume_completes(1);
  PredicateSet receiver;
  receiver.assume_completes(1);
  receiver.assume_fails(2);
  auto d = decide_delivery(receiver, msg_from(1, sender));
  EXPECT_EQ(d.action, DeliveryAction::kAccept);
}

TEST(Delivery, ConflictIsIgnored) {
  // Sender assumes process 5 completes; receiver assumes it does not.
  PredicateSet sender;
  sender.assume_completes(5);
  sender.assume_completes(7);  // sender is pid 7, assumes itself
  PredicateSet receiver;
  receiver.assume_fails(5);
  auto d = decide_delivery(receiver, msg_from(7, sender));
  EXPECT_EQ(d.action, DeliveryAction::kIgnore);
}

TEST(Delivery, ExtensionSplitsReceiver) {
  // Sender (pid 3) assumes complete(3), not-complete(4); receiver has no
  // opinion: the receiver splits on complete(3).
  PredicateSet sender;
  sender.assume_completes(3);
  sender.assume_fails(4);
  PredicateSet receiver;
  receiver.assume_completes(100);  // unrelated prior assumption

  auto d = decide_delivery(receiver, msg_from(3, sender));
  ASSERT_EQ(d.action, DeliveryAction::kSplit);
  // Accepting copy: prior assumptions plus complete(sender) — and only
  // that; complete(3) implies the rest of the sender's assumptions.
  EXPECT_TRUE(d.accept_preds.assumes_completes(100));
  EXPECT_TRUE(d.accept_preds.assumes_completes(3));
  EXPECT_FALSE(d.accept_preds.assumes_fails(4));
  // Rejecting copy: prior assumptions plus not-complete(sender).
  EXPECT_TRUE(d.reject_preds.assumes_completes(100));
  EXPECT_TRUE(d.reject_preds.assumes_fails(3));
  EXPECT_FALSE(d.reject_preds.assumes_fails(4));
}

TEST(Delivery, ReceiverBelievingSenderAcceptsTransitively) {
  // Receiver already assumes complete(sender); the sender's additional
  // assumptions are implied transitively — accept without extension.
  PredicateSet sender;
  sender.assume_completes(3);
  sender.assume_fails(4);
  PredicateSet receiver;
  receiver.assume_completes(3);
  auto d = decide_delivery(receiver, msg_from(3, sender));
  EXPECT_EQ(d.action, DeliveryAction::kAccept);
}

TEST(Delivery, ReceiverRejectingSenderIgnores) {
  PredicateSet sender;
  sender.assume_completes(3);
  PredicateSet receiver;
  receiver.assume_fails(3);
  auto d = decide_delivery(receiver, msg_from(3, sender));
  EXPECT_EQ(d.action, DeliveryAction::kIgnore);
}

TEST(Delivery, EmptyReceiverEmptySenderAccepts) {
  auto d = decide_delivery(PredicateSet{}, msg_from(2, PredicateSet{}));
  EXPECT_EQ(d.action, DeliveryAction::kAccept);
}

TEST(SimplifyAgainstOracle, RemovesResolvedFacts) {
  ProcessTable t;
  Pid a = t.create(kNoPid);
  Pid b = t.create(kNoPid);
  t.set_status(a, ProcStatus::kSynced);
  PredicateSet s;
  s.assume_completes(a);
  s.assume_fails(b);
  EXPECT_TRUE(simplify_against_oracle(s, t));
  EXPECT_FALSE(s.assumes_completes(a));  // fact absorbed
  EXPECT_TRUE(s.assumes_fails(b));       // still speculative
}

TEST(SimplifyAgainstOracle, DoomsOnFalsifiedAssumption) {
  ProcessTable t;
  Pid a = t.create(kNoPid);
  t.set_status(a, ProcStatus::kEliminated);
  PredicateSet s;
  s.assume_completes(a);
  EXPECT_FALSE(simplify_against_oracle(s, t));
}

TEST(SimplifyAgainstOracle, FailedCantCompleteSimplifies) {
  ProcessTable t;
  Pid a = t.create(kNoPid);
  t.set_status(a, ProcStatus::kFailed);
  PredicateSet s;
  s.assume_fails(a);
  EXPECT_TRUE(simplify_against_oracle(s, t));
  EXPECT_TRUE(s.empty());
}

TEST(SimplifyAgainstOracle, UnknownPidsAreLeftAlone) {
  ProcessTable t;
  PredicateSet s;
  s.assume_completes(424242);
  EXPECT_TRUE(simplify_against_oracle(s, t));
  EXPECT_TRUE(s.assumes_completes(424242));
}

TEST(DeliveryDeath, AnonymousExtensionAborts) {
  PredicateSet sender;
  sender.assume_completes(3);
  PredicateSet receiver;
  Message m = msg_from(kNoPid, sender);
  EXPECT_DEATH(decide_delivery(receiver, m), "MW_CHECK");
}

}  // namespace
}  // namespace mw
