// Property fuzz for the delivery decision: for random receiver/sender
// predicate sets the decision must be consistent with the §2.4.2 rules,
// and split copies must be complementary and internally consistent.
#include <gtest/gtest.h>

#include "msg/delivery.hpp"
#include "util/rng.hpp"

namespace mw {
namespace {

PredicateSet random_set(Rng& rng, Pid lo, Pid hi) {
  PredicateSet s;
  const int n = static_cast<int>(rng.next_below(6));
  for (int i = 0; i < n; ++i) {
    const Pid p = static_cast<Pid>(rng.next_in(lo, hi));
    if (rng.next_bool(0.5)) {
      s.assume_completes(p);
    } else {
      s.assume_fails(p);
    }
  }
  return s;
}

class DeliveryPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DeliveryPropertyTest, DecisionInvariantsHold) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const Pid sender_pid = static_cast<Pid>(rng.next_in(50, 60));
    PredicateSet receiver = random_set(rng, 1, 20);
    Message msg;
    msg.sender = sender_pid;
    msg.predicate = random_set(rng, 1, 20);
    // Senders believe in themselves (sibling rivalry always adds this).
    msg.predicate.assume_completes(sender_pid);

    const DeliveryDecision d = decide_delivery(receiver, msg);
    switch (d.action) {
      case DeliveryAction::kAccept: {
        // Acceptance implies no conflict: either the receiver already
        // believed in the sender, or the relation was implied.
        EXPECT_FALSE(receiver.assumes_fails(sender_pid));
        if (!receiver.assumes_completes(sender_pid)) {
          EXPECT_EQ(receiver.relation_to(msg.predicate),
                    PredRelation::kImplied);
        }
        break;
      }
      case DeliveryAction::kIgnore: {
        // Ignoring requires a conflict somewhere: an opposite opinion on
        // the sender or on some pid in the message predicate.
        const bool sender_conflict = receiver.assumes_fails(sender_pid);
        const bool set_conflict =
            receiver.relation_to(msg.predicate) == PredRelation::kConflict;
        EXPECT_TRUE(sender_conflict || set_conflict);
        break;
      }
      case DeliveryAction::kSplit: {
        // The two copies are complementary on exactly the sender...
        EXPECT_TRUE(d.accept_preds.assumes_completes(sender_pid));
        EXPECT_TRUE(d.reject_preds.assumes_fails(sender_pid));
        // ...and agree with the receiver everywhere else.
        for (Pid p : receiver.must_complete()) {
          EXPECT_TRUE(d.accept_preds.assumes_completes(p));
          EXPECT_TRUE(d.reject_preds.assumes_completes(p));
        }
        for (Pid p : receiver.cant_complete()) {
          EXPECT_TRUE(d.accept_preds.assumes_fails(p));
          EXPECT_TRUE(d.reject_preds.assumes_fails(p));
        }
        // Each copy grew by exactly one assumption.
        EXPECT_EQ(d.accept_preds.size(), receiver.size() + 1);
        EXPECT_EQ(d.reject_preds.size(), receiver.size() + 1);
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeliveryPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace mw
