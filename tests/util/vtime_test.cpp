#include "util/vtime.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

TEST(VTime, UnitConstructors) {
  EXPECT_EQ(vt_us(5), 5);
  EXPECT_EQ(vt_ms(5), 5'000);
  EXPECT_EQ(vt_sec(5), 5'000'000);
  EXPECT_EQ(vt_ms(1), vt_us(1000));
  EXPECT_EQ(vt_sec(1), vt_ms(1000));
}

TEST(VTime, Conversions) {
  EXPECT_DOUBLE_EQ(vt_to_sec(vt_sec(3)), 3.0);
  EXPECT_DOUBLE_EQ(vt_to_ms(vt_ms(7)), 7.0);
  EXPECT_DOUBLE_EQ(vt_to_sec(vt_ms(1500)), 1.5);
  EXPECT_DOUBLE_EQ(vt_to_ms(vt_us(500)), 0.5);
}

TEST(VTime, NegativeDurationsConvert) {
  EXPECT_DOUBLE_EQ(vt_to_sec(-vt_sec(2)), -2.0);
}

TEST(VTime, MaxIsSentinel) {
  EXPECT_GT(kVTimeMax, vt_sec(1'000'000'000));
}

}  // namespace
}  // namespace mw
