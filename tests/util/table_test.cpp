#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mw {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"procs", "par"});
  t.add_row({"1", "4.37"});
  t.add_row({"12", "10.01"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  // Header present, underline present, both rows present.
  EXPECT_NE(s.find("procs"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_NE(s.find("4.37"), std::string::npos);
  EXPECT_NE(s.find("10.01"), std::string::npos);
  // Every line has the same length (alignment).
  std::istringstream is(s);
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len) << "line: '" << line << "'";
  }
}

TEST(TablePrinter, TitlePrecedesTable) {
  TablePrinter t({"a"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os, "Table I");
  EXPECT_EQ(os.str().rfind("Table I", 0), 0u);
}

TEST(TablePrinter, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::num(4.014, 2), "4.01");
  EXPECT_EQ(TablePrinter::num(4.0, 0), "4");
  EXPECT_EQ(TablePrinter::num(static_cast<std::int64_t>(-7)), "-7");
}

TEST(TablePrinterDeath, RowArityMismatchAborts) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.add_row({"1"}), "MW_CHECK");
}

}  // namespace
}  // namespace mw
