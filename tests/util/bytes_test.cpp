#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_i64(-42);
  w.put_f64(3.14159);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.14159);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, RoundTripString) {
  ByteWriter w;
  w.put_string("multiple worlds");
  w.put_string("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "multiple worlds");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.ok());
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.put_u32(0x01020304);
  ASSERT_EQ(w.bytes().size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(Bytes, OverrunSetsNotOk) {
  ByteWriter w;
  w.put_u8(1);
  ByteReader r(w.bytes());
  r.get_u8();
  EXPECT_EQ(r.get_u32(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, OverrunIsStickyAndZero) {
  ByteReader r(std::span<const std::uint8_t>{});
  EXPECT_EQ(r.get_u64(), 0u);
  EXPECT_EQ(r.get_string(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, BlobRoundTrip) {
  ByteWriter w;
  Bytes payload{1, 2, 3, 4, 5};
  w.put_bytes(payload);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_blob(5), payload);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, TruncatedStringFails) {
  ByteWriter w;
  w.put_u32(100);  // claims 100 bytes, provides none
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, RemainingTracksCursor) {
  ByteWriter w;
  w.put_u64(1);
  w.put_u64(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 16u);
  r.get_u64();
  EXPECT_EQ(r.remaining(), 8u);
}

}  // namespace
}  // namespace mw
