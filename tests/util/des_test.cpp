#include "util/des.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mw {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule_at(7, [&, i] { order.push_back(i); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HandlersScheduleMoreEvents) {
  EventQueue q;
  std::vector<VTime> fired;
  q.schedule_at(1, [&] {
    fired.push_back(q.now());
    q.schedule_after(5, [&] { fired.push_back(q.now()); });
  });
  q.run();
  EXPECT_EQ(fired, (std::vector<VTime>{1, 6}));
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int count = 0;
  q.schedule_at(5, [&] { ++count; });
  q.schedule_at(10, [&] { ++count; });
  q.schedule_at(15, [&] { ++count; });
  q.run_until(10);
  EXPECT_EQ(count, 2);     // the event at exactly the deadline runs
  EXPECT_EQ(q.now(), 10);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  q.run_until(100);
  EXPECT_EQ(q.now(), 100);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  q.schedule_at(0, [] {});
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

TEST(EventQueueDeath, PastSchedulingAborts) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.run();
  EXPECT_DEATH(q.schedule_at(5, [] {}), "MW_CHECK");
}

}  // namespace
}  // namespace mw
