#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

Cli make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Cli(static_cast<int>(args.size()),
             const_cast<char**>(args.data()));
}

TEST(Cli, KeyValueFlags) {
  Cli c = make({"--procs=4", "--mode=virtual"});
  EXPECT_EQ(c.get_int("procs", 0), 4);
  EXPECT_EQ(c.get("mode", ""), "virtual");
}

TEST(Cli, BareFlagIsTrue) {
  Cli c = make({"--verbose"});
  EXPECT_TRUE(c.get_bool("verbose", false));
  EXPECT_TRUE(c.has("verbose"));
}

TEST(Cli, DefaultsWhenAbsent) {
  Cli c = make({});
  EXPECT_EQ(c.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(c.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(c.get_bool("flag", false));
  EXPECT_EQ(c.get("s", "dflt"), "dflt");
}

TEST(Cli, PositionalArguments) {
  Cli c = make({"input.txt", "--n=3", "out.txt"});
  ASSERT_EQ(c.positional().size(), 2u);
  EXPECT_EQ(c.positional()[0], "input.txt");
  EXPECT_EQ(c.positional()[1], "out.txt");
}

TEST(Cli, ExplicitFalseValues) {
  EXPECT_FALSE(make({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=no"}).get_bool("x", true));
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x", false));
}

TEST(Cli, DoubleParsing) {
  Cli c = make({"--ratio=0.5"});
  EXPECT_DOUBLE_EQ(c.get_double("ratio", 0), 0.5);
}

TEST(Cli, NegativeIntegers) {
  Cli c = make({"--delta=-12"});
  EXPECT_EQ(c.get_int("delta", 0), -12);
}

}  // namespace
}  // namespace mw
