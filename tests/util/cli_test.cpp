#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

Cli make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Cli(static_cast<int>(args.size()),
             const_cast<char**>(args.data()));
}

TEST(Cli, KeyValueFlags) {
  Cli c = make({"--procs=4", "--mode=virtual"});
  EXPECT_EQ(c.get_int("procs", 0), 4);
  EXPECT_EQ(c.get("mode", ""), "virtual");
}

TEST(Cli, BareFlagIsTrue) {
  Cli c = make({"--verbose"});
  EXPECT_TRUE(c.get_bool("verbose", false));
  EXPECT_TRUE(c.has("verbose"));
}

TEST(Cli, DefaultsWhenAbsent) {
  Cli c = make({});
  EXPECT_EQ(c.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(c.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(c.get_bool("flag", false));
  EXPECT_EQ(c.get("s", "dflt"), "dflt");
}

TEST(Cli, PositionalArguments) {
  Cli c = make({"input.txt", "--n=3", "out.txt"});
  ASSERT_EQ(c.positional().size(), 2u);
  EXPECT_EQ(c.positional()[0], "input.txt");
  EXPECT_EQ(c.positional()[1], "out.txt");
}

TEST(Cli, ExplicitFalseValues) {
  EXPECT_FALSE(make({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=no"}).get_bool("x", true));
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x", false));
}

TEST(Cli, DoubleParsing) {
  Cli c = make({"--ratio=0.5"});
  EXPECT_DOUBLE_EQ(c.get_double("ratio", 0), 0.5);
}

TEST(Cli, NegativeIntegers) {
  Cli c = make({"--delta=-12"});
  EXPECT_EQ(c.get_int("delta", 0), -12);
}

TEST(Cli, MalformedNumbersYieldDefault) {
  // Strict full-string parsing: trailing junk, garbage, and empty values
  // must not become plausible-looking prefix parses.
  EXPECT_EQ(make({"--n=12x"}).get_int("n", 7), 7);
  EXPECT_EQ(make({"--n=abc"}).get_int("n", 7), 7);
  EXPECT_EQ(make({"--n="}).get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(make({"--x=1.5y"}).get_double("x", 2.5), 2.5);
  EXPECT_DOUBLE_EQ(make({"--x=."}).get_double("x", 2.5), 2.5);
}

TEST(Cli, OverflowYieldsDefault) {
  EXPECT_EQ(make({"--n=99999999999999999999999"}).get_int("n", 7), 7);
  EXPECT_EQ(make({"--n=-99999999999999999999999"}).get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(make({"--x=1e999"}).get_double("x", 2.5), 2.5);
}

TEST(Cli, DurationSuffixes) {
  EXPECT_EQ(make({"--t=500us"}).get_duration("t", 0), vt_us(500));
  EXPECT_EQ(make({"--t=500ms"}).get_duration("t", 0), vt_ms(500));
  EXPECT_EQ(make({"--t=2s"}).get_duration("t", 0), vt_sec(2));
  EXPECT_EQ(make({"--t=1.5ms"}).get_duration("t", 0), vt_us(1500));
  EXPECT_EQ(make({"--t=0.25s"}).get_duration("t", 0), vt_ms(250));
}

TEST(Cli, DurationBareNumberIsTicks) {
  EXPECT_EQ(make({"--t=1234"}).get_duration("t", 0), 1234);
  EXPECT_EQ(make({"--t=0"}).get_duration("t", 5), 0);
}

TEST(Cli, DurationEdgeCases) {
  // Negative durations, overflow, bare suffixes, and junk all fall back.
  EXPECT_EQ(make({"--t=-5ms"}).get_duration("t", 42), 42);
  EXPECT_EQ(make({"--t=1e30s"}).get_duration("t", 42), 42);
  EXPECT_EQ(make({"--t=ms"}).get_duration("t", 42), 42);
  EXPECT_EQ(make({"--t=s"}).get_duration("t", 42), 42);
  EXPECT_EQ(make({"--t=abc"}).get_duration("t", 42), 42);
  EXPECT_EQ(make({"--t="}).get_duration("t", 42), 42);
  EXPECT_EQ(make({}).get_duration("t", 42), 42);
}

TEST(ParseDuration, DirectApi) {
  EXPECT_EQ(parse_duration("250us").value_or(-1), 250);
  EXPECT_EQ(parse_duration("3ms").value_or(-1), 3000);
  EXPECT_FALSE(parse_duration("").has_value());
  EXPECT_FALSE(parse_duration("-1").has_value());
  // "us" must win over the bare "s" suffix.
  EXPECT_EQ(parse_duration("7us").value_or(-1), 7);
}

}  // namespace
}  // namespace mw
