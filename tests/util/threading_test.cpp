#include "util/threading.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace mw {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&] { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, TasksCanSubmitFromWorkers) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] {
    count.fetch_add(1);
    pool.submit([&] { count.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(CancelToken, StartsClear) {
  CancelToken t;
  EXPECT_FALSE(t.cancelled());
}

TEST(CancelToken, RequestIsStickyAndIdempotent) {
  CancelToken t;
  t.request();
  t.request();
  EXPECT_TRUE(t.cancelled());
}

TEST(CancelToken, VisibleAcrossThreads) {
  CancelToken t;
  std::atomic<bool> observed{false};
  std::thread watcher([&] {
    while (!t.cancelled()) std::this_thread::yield();
    observed = true;
  });
  t.request();
  watcher.join();
  EXPECT_TRUE(observed.load());
}

}  // namespace
}  // namespace mw
