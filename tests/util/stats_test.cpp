#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squares = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Percentile, MedianOfOddSample) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 3.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.75), 7.5);
}

TEST(Percentile, Extremes) {
  std::vector<double> v{3, 7, 9};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 9.0);
}

TEST(Percentile, SingleElement) {
  std::vector<double> v{42};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 42.0);
}

TEST(Summarize, EmptyInput) {
  Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(Summarize, FullSummary) {
  Summary s = summarize({5, 1, 3, 2, 4});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Summarize, DoesNotMutateInput) {
  std::vector<double> v{3, 1, 2};
  summarize(v);
  EXPECT_EQ(v[0], 3.0);
  EXPECT_EQ(v[1], 1.0);
}

}  // namespace
}  // namespace mw
