#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mw {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng r(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextInHitsBothEndpoints) {
  Rng r(11);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = r.next_in(0, 3);
    lo |= v == 0;
    hi |= v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng r(5);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng r(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = r.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.next_exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, BoolProbability) {
  Rng r(19);
  int yes = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (r.next_bool(0.3)) ++yes;
  EXPECT_NEAR(static_cast<double>(yes) / n, 0.3, 0.02);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(21);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(33), p2(33);
  Rng a = p1.split(5), b = p2.split(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, PermutationIsAPermutation) {
  Rng r(23);
  auto p = r.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, PermutationEmptyAndSingle) {
  Rng r(29);
  EXPECT_TRUE(r.permutation(0).empty());
  auto one = r.permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), a);
  EXPECT_EQ(sm2.next(), b);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace mw
