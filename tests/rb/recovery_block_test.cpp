#include "rb/recovery_block.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

RuntimeConfig virtual_config() {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = 4;
  cfg.cost = CostModel::free();
  cfg.page_size = 64;
  cfg.num_pages = 32;
  return cfg;
}

/// The block computes an integer square root of the value at offset 0 and
/// stores it at offset 8; acceptance verifies r*r <= v < (r+1)^2.
std::function<bool(const World&)> sqrt_acceptance() {
  return [](const World& w) {
    const std::int64_t v = w.space().load<std::int64_t>(0);
    const std::int64_t r = w.space().load<std::int64_t>(8);
    return r >= 0 && r * r <= v && (r + 1) * (r + 1) > v;
  };
}

std::function<void(AltContext&)> good_sqrt(VDuration work = 10) {
  return [work](AltContext& ctx) {
    ctx.work(work);
    const std::int64_t v = ctx.space().load<std::int64_t>(0);
    std::int64_t r = 0;
    while ((r + 1) * (r + 1) <= v) ++r;
    ctx.space().store<std::int64_t>(8, r);
  };
}

std::function<void(AltContext&)> buggy_sqrt() {
  return [](AltContext& ctx) {
    ctx.work(1);
    ctx.space().store<std::int64_t>(8, -999);  // garbage: fails acceptance
  };
}

std::function<void(AltContext&)> crashing_sqrt() {
  return [](AltContext& ctx) {
    ctx.work(1);
    throw std::runtime_error("segfault stand-in");
  };
}

class RecoveryBlockTest : public ::testing::Test {
 protected:
  RecoveryBlockTest() : rt_(virtual_config()), world_(rt_.make_root()) {
    world_.space().store<std::int64_t>(0, 37);
  }
  Runtime rt_;
  World world_;
};

TEST_F(RecoveryBlockTest, PrimarySucceedsSequential) {
  RecoveryBlock rb("isqrt", sqrt_acceptance());
  rb.ensure_by("primary", good_sqrt());
  auto r = rb.run_sequential(rt_, world_);
  ASSERT_TRUE(r.succeeded);
  EXPECT_EQ(r.alternate_used, 0u);
  EXPECT_EQ(r.rejected, 0);
  EXPECT_EQ(world_.space().load<std::int64_t>(8), 6);
}

TEST_F(RecoveryBlockTest, StandbySpareTakesOverSequential) {
  RecoveryBlock rb("isqrt", sqrt_acceptance());
  rb.ensure_by("buggy", buggy_sqrt());
  rb.ensure_by("spare", good_sqrt());
  auto r = rb.run_sequential(rt_, world_);
  ASSERT_TRUE(r.succeeded);
  EXPECT_EQ(r.alternate_used, 1u);
  EXPECT_EQ(r.alternate_name, "spare");
  EXPECT_EQ(r.rejected, 1);
  EXPECT_EQ(world_.space().load<std::int64_t>(8), 6);
}

TEST_F(RecoveryBlockTest, CrashIsContainedSequential) {
  RecoveryBlock rb("isqrt", sqrt_acceptance());
  rb.ensure_by("crashes", crashing_sqrt());
  rb.ensure_by("spare", good_sqrt());
  auto r = rb.run_sequential(rt_, world_);
  ASSERT_TRUE(r.succeeded);
  EXPECT_EQ(r.alternate_used, 1u);
}

TEST_F(RecoveryBlockTest, TotalFailureLeavesWorldUntouched) {
  RecoveryBlock rb("isqrt", sqrt_acceptance());
  rb.ensure_by("bad1", buggy_sqrt());
  rb.ensure_by("bad2", crashing_sqrt());
  auto r = rb.run_sequential(rt_, world_);
  EXPECT_FALSE(r.succeeded);
  EXPECT_EQ(r.rejected, 2);
  EXPECT_EQ(world_.space().load<std::int64_t>(8), 0);  // untouched
}

TEST_F(RecoveryBlockTest, ConcurrentPrimaryWins) {
  RecoveryBlock rb("isqrt", sqrt_acceptance());
  rb.ensure_by("fast", good_sqrt(5));
  rb.ensure_by("slow", good_sqrt(500));
  auto r = rb.run_concurrent(rt_, world_);
  ASSERT_TRUE(r.succeeded);
  EXPECT_EQ(r.alternate_used, 0u);
  EXPECT_EQ(world_.space().load<std::int64_t>(8), 6);
}

TEST_F(RecoveryBlockTest, ConcurrentSpareWinsWhenPrimaryBuggy) {
  RecoveryBlock rb("isqrt", sqrt_acceptance());
  rb.ensure_by("buggy", buggy_sqrt());
  rb.ensure_by("spare", good_sqrt());
  auto r = rb.run_concurrent(rt_, world_);
  ASSERT_TRUE(r.succeeded);
  EXPECT_EQ(r.alternate_name, "spare");
  EXPECT_EQ(world_.space().load<std::int64_t>(8), 6);
}

TEST_F(RecoveryBlockTest, ConcurrentRecoveryIsCheaperThanSequential) {
  // §5: "there is no execution time penalty paid for recovery" — when the
  // primary fails, the concurrent spare has been running all along, while
  // the sequential spare starts only after the primary's failure.
  RuntimeConfig cfg = virtual_config();
  cfg.processors = 2;
  auto build = [] {
    RecoveryBlock rb("isqrt", sqrt_acceptance());
    rb.ensure_by("buggy-slow", [](AltContext& ctx) {
      ctx.work(1000);
      ctx.space().store<std::int64_t>(8, -1);
    });
    rb.ensure_by("spare", good_sqrt(1000));
    return rb;
  };
  Runtime rt1(cfg);
  World w1 = rt1.make_root();
  w1.space().store<std::int64_t>(0, 37);
  auto seq = build().run_sequential(rt1, w1);

  Runtime rt2(cfg);
  World w2 = rt2.make_root();
  w2.space().store<std::int64_t>(0, 37);
  auto conc = build().run_concurrent(rt2, w2);

  ASSERT_TRUE(seq.succeeded);
  ASSERT_TRUE(conc.succeeded);
  EXPECT_LT(conc.elapsed, seq.elapsed);
}

TEST_F(RecoveryBlockTest, ConcurrentAllFail) {
  RecoveryBlock rb("isqrt", sqrt_acceptance());
  rb.ensure_by("bad1", buggy_sqrt());
  rb.ensure_by("bad2", crashing_sqrt());
  auto r = rb.run_concurrent(rt_, world_);
  EXPECT_FALSE(r.succeeded);
  EXPECT_EQ(world_.space().load<std::int64_t>(8), 0);
}

TEST_F(RecoveryBlockTest, NestedRecoveryBlocks) {
  // An alternate that internally runs its own recovery block.
  RecoveryBlock inner("inner", sqrt_acceptance());
  inner.ensure_by("inner-buggy", buggy_sqrt());
  inner.ensure_by("inner-good", good_sqrt());

  RecoveryBlock outer("outer", sqrt_acceptance());
  outer.ensure_by("delegates", [&](AltContext& ctx) {
    auto r = inner.run_sequential(rt_, ctx.world());
    ctx.work(r.elapsed);
    if (!r.succeeded) ctx.fail("inner block failed");
  });
  auto r = outer.run_sequential(rt_, world_);
  ASSERT_TRUE(r.succeeded);
  EXPECT_EQ(world_.space().load<std::int64_t>(8), 6);
}

TEST(FaultPlan, FailFirstN) {
  FaultPlan p = FaultPlan::fail_first(2);
  EXPECT_TRUE(p.next_fails());
  EXPECT_TRUE(p.next_fails());
  EXPECT_FALSE(p.next_fails());
  EXPECT_EQ(p.invocations(), 3);
}

TEST(FaultPlan, AlwaysAndNone) {
  FaultPlan a = FaultPlan::always();
  FaultPlan n = FaultPlan::none();
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(a.next_fails());
    EXPECT_FALSE(n.next_fails());
  }
}

TEST(FaultPlan, Periodic) {
  FaultPlan p = FaultPlan::periodic(3);
  std::vector<bool> pattern;
  for (int i = 0; i < 6; ++i) pattern.push_back(p.next_fails());
  EXPECT_EQ(pattern, (std::vector<bool>{true, false, false, true, false,
                                        false}));
}

TEST(FaultPlan, TransientFaultRecoversWithRetryBlock) {
  // A transiently-failing primary modeled with FaultPlan: first run fails,
  // second block invocation succeeds.
  RuntimeConfig cfg = virtual_config();
  Runtime rt(cfg);
  World world = rt.make_root();
  world.space().store<std::int64_t>(0, 81);
  auto plan = std::make_shared<FaultPlan>(FaultPlan::fail_first(1));

  RecoveryBlock rb("isqrt", sqrt_acceptance());
  rb.ensure_by("transient", [plan](AltContext& ctx) {
    ctx.work(1);
    if (plan->next_fails()) ctx.fail("transient");
    const std::int64_t v = ctx.space().load<std::int64_t>(0);
    std::int64_t r = 0;
    while ((r + 1) * (r + 1) <= v) ++r;
    ctx.space().store<std::int64_t>(8, r);
  });

  auto first = rb.run_sequential(rt, world);
  EXPECT_FALSE(first.succeeded);
  auto second = rb.run_sequential(rt, world);
  ASSERT_TRUE(second.succeeded);
  EXPECT_EQ(world.space().load<std::int64_t>(8), 9);
}

}  // namespace
}  // namespace mw
