#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "dist/socket_transport.hpp"
#include "dist/transport_channel.hpp"
#include "fault/fault.hpp"

namespace mw {
namespace {

Bytes make_payload(std::size_t n, std::uint8_t salt = 0) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = static_cast<std::uint8_t>(i * 131 + salt);
  return b;
}

class Recorder : public TransportReceiver {
 public:
  void on_message(NodeId from, std::span<const std::uint8_t> payload) override {
    froms.push_back(from);
    payloads.emplace_back(payload.begin(), payload.end());
  }
  std::vector<NodeId> froms;
  std::vector<Bytes> payloads;
};

/// Drives a set of transports until `pred` holds or `budget_ms` of real
/// time elapses. The socket backend is caller-driven, so tests pump it.
bool pump_until(std::vector<SocketTransport*> transports,
                const std::function<bool()>& pred, int budget_ms = 3000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    bool any = false;
    for (SocketTransport* t : transports) any = t->poll() || any;
    if (!any) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

TEST(SocketTransport, BindsEphemeralDistinctPorts) {
  // The EADDRINUSE discipline: every instance asks the kernel for a port,
  // so any number of parallel test binaries coexist on one machine.
  std::vector<std::unique_ptr<SocketTransport>> many;
  std::set<std::uint16_t> ports;
  for (NodeId n = 0; n < 8; ++n) {
    many.push_back(std::make_unique<SocketTransport>(n));
    EXPECT_NE(many.back()->port(), 0);
    ports.insert(many.back()->port());
  }
  EXPECT_EQ(ports.size(), many.size());
}

TEST(SocketTransport, LoopbackEchoDeliversPayloadIntact) {
  SocketTransport a(0), b(1);
  Recorder rx_a, rx_b;
  a.bind(0, rx_a);
  b.bind(1, rx_b);
  a.add_peer(1, b.port());

  const Bytes payload = make_payload(2000, 7);
  EXPECT_TRUE(a.send(0, 1, payload));
  ASSERT_TRUE(pump_until({&a, &b}, [&] { return !rx_b.payloads.empty(); }));
  EXPECT_EQ(rx_b.payloads[0], payload);
  EXPECT_EQ(rx_b.froms[0], 0u);

  // b learned a's address from the inbound frame: the reply needs no
  // add_peer bootstrap.
  EXPECT_TRUE(b.knows_peer(0));
  EXPECT_TRUE(b.send(1, 0, make_payload(64)));
  ASSERT_TRUE(pump_until({&a, &b}, [&] { return !rx_a.payloads.empty(); }));
  EXPECT_EQ(rx_a.froms[0], 1u);
}

TEST(SocketTransport, GarbageDatagramsAreCountedCorruptNotDelivered) {
  SocketTransport a(0);
  Recorder rx;
  a.bind(0, rx);

  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  to.sin_port = htons(a.port());
  // Three forgeries: too short, bad magic, and a length-forged header.
  const char shortpkt[4] = {1, 2, 3, 4};
  ::sendto(fd, shortpkt, sizeof shortpkt, 0,
           reinterpret_cast<const sockaddr*>(&to), sizeof to);
  std::vector<std::uint8_t> badmagic(64, 0xee);
  ::sendto(fd, badmagic.data(), badmagic.size(), 0,
           reinterpret_cast<const sockaddr*>(&to), sizeof to);
  std::vector<std::uint8_t> forged(64, 0);
  forged[0] = 0x50; forged[1] = 0x54; forged[2] = 0x57; forged[3] = 0x4d;
  forged[4] = 0xff;  // claims a 255-byte payload in a 64-byte datagram
  ::sendto(fd, forged.data(), forged.size(), 0,
           reinterpret_cast<const sockaddr*>(&to), sizeof to);
  ::close(fd);

  ASSERT_TRUE(
      pump_until({&a}, [&] { return a.stats().messages_corrupt >= 3; }));
  EXPECT_TRUE(rx.payloads.empty());
}

TEST(SocketTransport, SendSidePartitionSwallowsFrames) {
  SocketTransport a(0), b(1);
  Recorder rx;
  b.bind(1, rx);
  a.add_peer(1, b.port());
  a.set_link_blocked(0, 1, true);
  EXPECT_TRUE(a.send(0, 1, make_payload(32)));
  EXPECT_FALSE(pump_until({&a, &b}, [&] { return !rx.payloads.empty(); },
                          /*budget_ms=*/150));
  EXPECT_EQ(a.stats().messages_partitioned, 1u);

  a.set_link_blocked(0, 1, false);
  EXPECT_TRUE(a.send(0, 1, make_payload(32)));
  EXPECT_TRUE(pump_until({&a, &b}, [&] { return !rx.payloads.empty(); }));
}

TEST(SocketTransport, ReceiveSidePartitionSwallowsFrames) {
  // How a test partitions two real *processes*: the receiver cuts itself
  // off, since nobody can reach into the sender's address space.
  SocketTransport a(0), b(1);
  Recorder rx;
  b.bind(1, rx);
  a.add_peer(1, b.port());
  b.set_link_blocked(0, 1, true);
  EXPECT_TRUE(a.send(0, 1, make_payload(32)));
  EXPECT_FALSE(pump_until({&a, &b}, [&] { return !rx.payloads.empty(); },
                          /*budget_ms=*/150));
  EXPECT_EQ(b.stats().messages_partitioned, 1u);
}

TEST(SocketTransport, FaultPointsApplyToRealSockets) {
  SocketTransport a(0), b(1);
  Recorder rx;
  b.bind(1, rx);
  a.add_peer(1, b.port());
  FaultInjector inj(1);
  inj.arm("net.drop", FaultSpec::once(FaultKind::kDropMessage, 0));
  FaultScope scope(inj);
  EXPECT_TRUE(a.send(0, 1, make_payload(16)));  // eaten by the point
  EXPECT_TRUE(a.send(0, 1, make_payload(16)));
  ASSERT_TRUE(pump_until({&a, &b}, [&] { return !rx.payloads.empty(); }));
  EXPECT_EQ(rx.payloads.size(), 1u);
  EXPECT_EQ(a.stats().messages_dropped, 1u);
}

TEST(SocketTransport, DuplicateFramesRaiseOutOfOrderCounter) {
  SocketTransport a(0), b(1);
  Recorder rx;
  b.bind(1, rx);
  a.add_peer(1, b.port());
  FaultInjector inj(1);
  inj.arm("net.dup", FaultSpec::once(FaultKind::kDuplicateMessage, 0));
  FaultScope scope(inj);
  EXPECT_TRUE(a.send(0, 1, make_payload(16)));
  ASSERT_TRUE(pump_until({&a, &b}, [&] { return rx.payloads.size() >= 2; }));
  // The second copy replays seq 0: visible in the per-peer counter.
  EXPECT_GE(b.stats().messages_out_of_order, 1u);
}

TEST(SocketTransport, TimersFireOnRealClock) {
  SocketTransport a(0);
  std::vector<int> fired;
  a.schedule(vt_ms(5), [&] { fired.push_back(1); });
  const TimerId doomed = a.schedule(vt_ms(10), [&] { fired.push_back(9); });
  a.cancel(doomed);
  a.schedule(vt_ms(15), [&] { fired.push_back(2); });
  ASSERT_TRUE(pump_until({&a}, [&] { return fired.size() >= 2; }));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(SocketTransport, RunUntilReturnsAtDeadline) {
  SocketTransport a(0);
  const VTime before = a.now();
  a.run_until(before + vt_ms(30));
  EXPECT_GE(a.now(), before + vt_ms(30));
  // Sanity: the wait was a bounded sleep, not a spin into the far future.
  EXPECT_LT(a.now(), before + vt_ms(3000));
}

TEST(TransportChannelSocket, MultiFragmentMessageOverRealSockets) {
  SocketTransport a(0), b(1);
  a.add_peer(1, b.port());
  TransportChannel ca(a, 0);
  TransportChannel cb(b, 1);
  const Bytes payload = make_payload(300 * 1024, 9);  // ~6 fragments
  Bytes got;
  cb.set_handler([&](NodeId, const Bytes& p) { got = p; });
  int delivered = 0;
  ASSERT_TRUE(ca.send(1, payload, [&] { ++delivered; }));
  ASSERT_TRUE(pump_until({&a, &b}, [&] { return delivered == 1; }));
  EXPECT_EQ(got, payload);
  EXPECT_EQ(ca.inflight(), 0u);
}

TEST(TransportChannelSocket, RetryMasksInjectedLossOnRealSockets) {
  SocketTransport a(0), b(1);
  a.add_peer(1, b.port());
  RetryPolicy policy;
  policy.rto_initial = vt_ms(10);  // keep the real-time test fast
  policy.rto_cap = vt_ms(40);
  TransportChannel ca(a, 0, policy);
  TransportChannel cb(b, 1, policy);
  FaultInjector inj(1);
  inj.arm("net.drop", FaultSpec::once(FaultKind::kDropMessage, 0));
  FaultScope scope(inj);
  int delivered = 0;
  ASSERT_TRUE(ca.send(1, make_payload(128), [&] { ++delivered; }));
  ASSERT_TRUE(pump_until({&a, &b}, [&] { return delivered == 1; }));
  EXPECT_GE(ca.stats().retransmissions, 1u);
  EXPECT_GE(ca.stats().timeouts, 1u);
}

TEST(TransportChannelSocket, SilentPeerGoesSuspectThenDead) {
  SocketTransport a(0);
  PeerHealthConfig health;
  health.heartbeat_interval = vt_ms(5);
  health.suspect_after = vt_ms(20);
  health.dead_after = vt_ms(60);
  TransportChannel ca(a, 0, RetryPolicy{}, health);
  std::vector<PeerState> seen;
  ca.watch_peer(1);  // nobody home on node 1
  ca.enable_heartbeats([&](NodeId, PeerState s) { seen.push_back(s); });
  ASSERT_TRUE(pump_until({&a}, [&] { return seen.size() >= 2; }));
  EXPECT_EQ(seen[0], PeerState::kSuspect);
  EXPECT_EQ(seen[1], PeerState::kDead);
}

}  // namespace
}  // namespace mw
