// Incremental (delta) checkpoints and image forgery rejection (PR 3).
//
// A delta image serializes only the pages that diverged from the COW
// snapshot of the previous image, names its base by checksum, and can only
// restore as part of its chain. Any corrupt, mischained, misordered, or
// forged image must surface as ok == false — never as a silently wrong
// address space.
#include <gtest/gtest.h>

#include "dist/checkpoint.hpp"

namespace mw {
namespace {

constexpr std::size_t kPageSize = 64;
constexpr std::size_t kNumPages = 16;

// Byte offset of the first page record in an image with no segments:
// 6 header u64s, 10 register u64s, segment count + watermark, page count.
constexpr std::size_t kPagesOff = (6 + 10 + 2 + 1) * 8;
constexpr std::size_t kPageRec = 8 + kPageSize;

std::uint64_t read_u64_at(const Bytes& b, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[off + static_cast<std::size_t>(i)];
  return v;
}

void write_u64_at(Bytes& b, std::size_t off, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    b[off + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
}

TEST(CheckpointDelta, ChainRoundTripAppliesNewestWins) {
  AddressSpace as(kPageSize, kNumPages);
  as.store<int>(0, 1);               // page 0
  as.store<int>(kPageSize * 3, 3);   // page 3
  as.store<int>(kPageSize * 9, 9);   // page 9
  Registers regs;
  regs.pc = 100;
  CheckpointImage full = take_checkpoint(as, regs);

  AddressSpace snap = as.fork();
  as.store<int>(0, 11);                // rewrite page 0
  as.store<int>(kPageSize * 5, 5);     // brand-new page 5
  regs.pc = 200;
  regs.gp[0] = 7;  // e.g. the effect-ledger resume point
  CheckpointImage d1 = take_delta_checkpoint(as, regs, snap, full);
  EXPECT_TRUE(d1.delta);
  EXPECT_EQ(d1.base_checksum, full.checksum);

  std::vector<CheckpointImage> chain{full, d1};
  RestoreResult r = restore_chain(chain);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.space.load<int>(0), 11);               // delta wins
  EXPECT_EQ(r.space.load<int>(kPageSize * 3), 3);    // base survives
  EXPECT_EQ(r.space.load<int>(kPageSize * 5), 5);    // new page applied
  EXPECT_EQ(r.space.load<int>(kPageSize * 9), 9);
  // Registers come from the newest image.
  EXPECT_EQ(r.regs.pc, 200u);
  EXPECT_EQ(r.regs.gp[0], 7u);
  EXPECT_EQ(r.regs.ret, Registers::kRestored);
}

TEST(CheckpointDelta, SizeTracksWriteSetNotResidentSet) {
  AddressSpace as(kPageSize, kNumPages);
  for (std::size_t p = 0; p < 12; ++p)
    as.store<int>(kPageSize * p, static_cast<int>(p));  // 12 resident pages
  CheckpointImage full = take_checkpoint(as, Registers{});
  EXPECT_EQ(full.resident_pages, 12u);

  AddressSpace snap = as.fork();
  as.store<int>(kPageSize * 2, 99);
  as.store<int>(kPageSize * 7, 98);  // write set: 2 pages
  CheckpointImage d = take_delta_checkpoint(as, Registers{}, snap, full);
  EXPECT_EQ(d.resident_pages, 2u);
  EXPECT_LT(d.size_bytes(), full.size_bytes() / 2);
}

TEST(CheckpointDelta, EmptyWriteSetMakesEmptyDelta) {
  AddressSpace as(kPageSize, kNumPages);
  as.store<int>(0, 1);
  CheckpointImage full = take_checkpoint(as, Registers{});
  AddressSpace snap = as.fork();
  CheckpointImage d = take_delta_checkpoint(as, Registers{}, snap, full);
  EXPECT_EQ(d.resident_pages, 0u);
  RestoreResult r = restore_chain(std::vector<CheckpointImage>{full, d});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.space.load<int>(0), 1);
}

TEST(CheckpointDelta, DeltaCannotStandAlone) {
  AddressSpace as(kPageSize, kNumPages);
  as.store<int>(0, 1);
  CheckpointImage full = take_checkpoint(as, Registers{});
  AddressSpace snap = as.fork();
  as.store<int>(0, 2);
  CheckpointImage d = take_delta_checkpoint(as, Registers{}, snap, full);
  EXPECT_FALSE(restore_checkpoint(d).ok);
  EXPECT_FALSE(restore_chain(std::vector<CheckpointImage>{d}).ok);
}

TEST(CheckpointDelta, WrongBaseRejected) {
  AddressSpace a(kPageSize, kNumPages);
  a.store<int>(0, 1);
  CheckpointImage full_a = take_checkpoint(a, Registers{});

  AddressSpace b(kPageSize, kNumPages);
  b.store<int>(0, 2);
  CheckpointImage full_b = take_checkpoint(b, Registers{});
  AddressSpace snap_b = b.fork();
  b.store<int>(kPageSize, 3);
  CheckpointImage d_on_b = take_delta_checkpoint(b, Registers{}, snap_b, full_b);

  // d_on_b names full_b as its base; applying it over full_a must fail.
  EXPECT_FALSE(restore_chain(std::vector<CheckpointImage>{full_a, d_on_b}).ok);
}

TEST(CheckpointDelta, ReorderedChainRejected) {
  AddressSpace as(kPageSize, kNumPages);
  as.store<int>(0, 1);
  CheckpointImage full = take_checkpoint(as, Registers{});
  AddressSpace snap1 = as.fork();
  as.store<int>(0, 2);
  CheckpointImage d1 = take_delta_checkpoint(as, Registers{}, snap1, full);
  AddressSpace snap2 = as.fork();
  as.store<int>(0, 3);
  CheckpointImage d2 = take_delta_checkpoint(as, Registers{}, snap2, d1);

  EXPECT_TRUE(restore_chain(std::vector<CheckpointImage>{full, d1, d2}).ok);
  EXPECT_FALSE(restore_chain(std::vector<CheckpointImage>{full, d2, d1}).ok);
  EXPECT_FALSE(restore_chain(std::vector<CheckpointImage>{full, d2}).ok);
}

TEST(CheckpointDelta, CorruptedDeltaFailsWholeChain) {
  AddressSpace as(kPageSize, kNumPages);
  as.store<int>(0, 1);
  CheckpointImage full = take_checkpoint(as, Registers{});
  AddressSpace snap = as.fork();
  as.store<int>(0, 2);
  CheckpointImage d = take_delta_checkpoint(as, Registers{}, snap, full);
  d.blob[d.blob.size() - 1] ^= 0x01;  // flip one bit of page data
  EXPECT_FALSE(restore_chain(std::vector<CheckpointImage>{full, d}).ok);
}

TEST(CheckpointDelta, SegmentDirectoryComesFromNewestImage) {
  AddressSpace as(kPageSize, kNumPages);
  as.alloc_segment("code", kPageSize * 2);
  as.store<int>(0, 1);
  CheckpointImage full = take_checkpoint(as, Registers{});

  AddressSpace snap = as.fork();
  const Segment data = as.alloc_segment("data", kPageSize);
  as.store<int>(data.base, 42);
  CheckpointImage d = take_delta_checkpoint(as, Registers{}, snap, full);

  RestoreResult r = restore_chain(std::vector<CheckpointImage>{full, d});
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.space.segments().size(), 2u);
  auto seg = r.space.find_segment("data");
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ(seg->base, data.base);
  EXPECT_EQ(r.space.load<int>(seg->base), 42);
  EXPECT_EQ(r.space.segment_watermark(), as.segment_watermark());
}

// --- Forged page records (satellite: restore rejects duplicates and
// out-of-order indices even when the checksum is consistently resealed) ---

CheckpointImage two_page_image() {
  AddressSpace as(kPageSize, kNumPages);
  as.store<int>(kPageSize * 2, 2);
  as.store<int>(kPageSize * 5, 5);
  CheckpointImage img = take_checkpoint(as, Registers{});
  // Self-check the assumed layout before forging anything with it.
  EXPECT_EQ(img.resident_pages, 2u);
  EXPECT_EQ(read_u64_at(img.blob, kPagesOff - 8), 2u);  // page count
  EXPECT_EQ(read_u64_at(img.blob, kPagesOff), 2u);      // first index
  EXPECT_EQ(read_u64_at(img.blob, kPagesOff + kPageRec), 5u);
  return img;
}

TEST(CheckpointDelta, DuplicatePageIndexRejected) {
  CheckpointImage img = two_page_image();
  write_u64_at(img.blob, kPagesOff + kPageRec, 2);  // second record: idx 5→2
  reseal_checkpoint(img);
  EXPECT_FALSE(restore_checkpoint(img).ok);
}

TEST(CheckpointDelta, OutOfOrderPageIndicesRejected) {
  CheckpointImage img = two_page_image();
  write_u64_at(img.blob, kPagesOff, 5);
  write_u64_at(img.blob, kPagesOff + kPageRec, 2);
  reseal_checkpoint(img);
  EXPECT_FALSE(restore_checkpoint(img).ok);
}

TEST(CheckpointDelta, OutOfBoundsPageIndexRejected) {
  CheckpointImage img = two_page_image();
  write_u64_at(img.blob, kPagesOff + kPageRec, kNumPages);
  reseal_checkpoint(img);
  EXPECT_FALSE(restore_checkpoint(img).ok);
}

TEST(CheckpointDelta, BitFlipWithoutResealRejected) {
  CheckpointImage img = two_page_image();
  img.blob[kPagesOff + 8] ^= 0x40;  // flip a bit inside page data
  EXPECT_FALSE(restore_checkpoint(img).ok);
}

TEST(CheckpointDelta, ResealAfterLegitimateEditAccepted) {
  // reseal_checkpoint exists for forging tests; sanity-check that a
  // resealed *well-formed* edit round-trips (the checksum, not the seal
  // ritual, is what gates acceptance).
  CheckpointImage img = two_page_image();
  img.blob[kPagesOff + 8] ^= 0x40;
  reseal_checkpoint(img);
  RestoreResult r = restore_checkpoint(img);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.space.load<int>(kPageSize * 2) , 2 ^ 0x40);
}

}  // namespace
}  // namespace mw
