#include "dist/checkpoint.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

AddressSpace make_space() {
  AddressSpace as(64, 16);
  as.store<int>(0, 42);
  as.store<double>(64 * 3, 2.5);
  as.store<int>(64 * 7 + 4, 7);
  return as;
}

TEST(Checkpoint, RoundTripRestoresMemory) {
  AddressSpace as = make_space();
  Registers regs;
  regs.pc = 0x1000;
  regs.sp = 0x2000;
  regs.gp[3] = 33;
  CheckpointImage img = take_checkpoint(as, regs);
  auto r = restore_checkpoint(img);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.space.load<int>(0), 42);
  EXPECT_DOUBLE_EQ(r.space.load<double>(64 * 3), 2.5);
  EXPECT_EQ(r.space.load<int>(64 * 7 + 4), 7);
}

TEST(Checkpoint, ReturnValueDistinguishesRestore) {
  // "A return value is used to distinguish between return of control in
  // the checkpoint and in the calling process."
  AddressSpace as = make_space();
  Registers caller;
  EXPECT_EQ(caller.ret, Registers::kInCaller);
  auto r = restore_checkpoint(take_checkpoint(as, caller));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.regs.ret, Registers::kRestored);
  EXPECT_EQ(r.regs.pc, caller.pc);
  EXPECT_EQ(r.regs.gp[3], caller.gp[3]);
}

TEST(Checkpoint, SizeTracksResidentSetNotAddressSpace) {
  AddressSpace small(64, 1024);
  small.store<int>(0, 1);  // one resident page of a 64 KiB space
  CheckpointImage img = take_checkpoint(small, Registers{});
  EXPECT_EQ(img.resident_pages, 1u);
  EXPECT_LT(img.size_bytes(), 64u * 4);  // header + regs + one page

  AddressSpace big(64, 1024);
  for (int p = 0; p < 100; ++p) big.store<int>(64 * p, p);
  CheckpointImage img2 = take_checkpoint(big, Registers{});
  EXPECT_EQ(img2.resident_pages, 100u);
  EXPECT_GT(img2.size_bytes(), 100u * 64);
}

TEST(Checkpoint, EmptySpaceRoundTrips) {
  AddressSpace as(64, 8);
  auto r = restore_checkpoint(take_checkpoint(as, Registers{}));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.space.load<int>(0), 0);
}

TEST(Checkpoint, CorruptMagicRejected) {
  AddressSpace as = make_space();
  CheckpointImage img = take_checkpoint(as, Registers{});
  img.blob[0] ^= 0xFF;
  EXPECT_FALSE(restore_checkpoint(img).ok);
}

TEST(Checkpoint, TruncatedImageRejected) {
  AddressSpace as = make_space();
  CheckpointImage img = take_checkpoint(as, Registers{});
  img.blob.resize(img.blob.size() / 2);
  EXPECT_FALSE(restore_checkpoint(img).ok);
}

TEST(Checkpoint, TrailingGarbageRejected) {
  AddressSpace as = make_space();
  CheckpointImage img = take_checkpoint(as, Registers{});
  img.blob.push_back(0);
  EXPECT_FALSE(restore_checkpoint(img).ok);
}

TEST(Checkpoint, RestoredSpaceIsIndependent) {
  AddressSpace as = make_space();
  auto r = restore_checkpoint(take_checkpoint(as, Registers{}));
  ASSERT_TRUE(r.ok);
  r.space.store<int>(0, 99);
  EXPECT_EQ(as.load<int>(0), 42);
}

}  // namespace
}  // namespace mw
