#include "dist/rfork.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

/// A 70 KB resident process on 4 KiB pages — the paper's rfork subject.
AddressSpace process_70k() {
  AddressSpace as(4096, 64);
  for (int p = 0; p < 17; ++p) as.store<int>(4096ull * p, p + 1);
  return as;
}

TEST(LinkModel, TransferTimeComponents) {
  LinkModel link;
  // 1 MB at 1 MB/s = 1 s serialization plus fixed costs.
  const VDuration t = link.transfer_time(1'000'000);
  EXPECT_NEAR(vt_to_sec(t), 1.0 + vt_to_sec(link.latency) +
                                vt_to_sec(link.per_message_overhead),
              1e-6);
  // Zero-byte message still pays latency + overhead.
  EXPECT_EQ(link.transfer_time(0), link.latency + link.per_message_overhead);
}

TEST(NetSim, DeliversAfterTransferTime) {
  EventQueue q;
  NetSim net(q, LinkModel{});
  bool delivered = false;
  net.send(1, 2, 1000, [&] { delivered = true; });
  EXPECT_FALSE(delivered);
  q.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(q.now(), net.link().transfer_time(1000));
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.bytes_sent(), 1000u);
}

TEST(Rfork, FullCopy70kTakesAboutASecond) {
  // §3.4: "An rfork() of a 70K process requires slightly less than a
  // second, and network delays gave us an observed average execution time
  // of about 1.3 seconds."
  RemoteForker forker{LinkModel{}, DistCost{}};
  auto r = forker.full_copy(process_70k());
  EXPECT_EQ(r.pages_shipped, 17u);
  const double sec = vt_to_sec(r.total_elapsed);
  EXPECT_GT(sec, 0.6);
  EXPECT_LT(sec, 1.5);
  // The checkpoint is the major cost (the paper's observation).
  EXPECT_GT(r.checkpoint_cost, r.transfer_cost);
  EXPECT_GT(r.checkpoint_cost, r.restore_cost);
}

TEST(Rfork, BytesShippedMatchCheckpointSize) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  AddressSpace as = process_70k();
  auto r = forker.full_copy(as);
  const CheckpointImage img = take_checkpoint(as, Registers{});
  EXPECT_EQ(r.bytes_shipped, img.size_bytes());
  EXPECT_GT(r.bytes_shipped, 17u * 4096);
}

TEST(Rfork, OnDemandStartsMuchFaster) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  AddressSpace as = process_70k();
  auto full = forker.full_copy(as);
  auto od = forker.on_demand(as, 0.3);
  EXPECT_LT(od.start_elapsed, full.start_elapsed / 5);
}

TEST(Rfork, OnDemandCostScalesWithTouchFraction) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  AddressSpace as = process_70k();
  auto low = forker.on_demand(as, 0.1);
  auto high = forker.on_demand(as, 0.9);
  EXPECT_LT(low.fault_cost, high.fault_cost);
  EXPECT_LT(low.pages_shipped, high.pages_shipped);
}

TEST(Rfork, LocalityMakesOnDemandWinEndToEnd) {
  // With good locality (§3.4: "most programs exhibit locality of
  // reference"), on-demand beats full copy even end-to-end.
  RemoteForker forker{LinkModel{}, DistCost{}};
  AddressSpace as = process_70k();
  auto full = forker.full_copy(as);
  auto od = forker.on_demand(as, 0.2);
  EXPECT_LT(od.total_elapsed, full.total_elapsed);
}

TEST(Rfork, FullTouchOnDemandStillAvoidsCheckpointCost) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  AddressSpace as = process_70k();
  auto od = forker.on_demand(as, 1.0);
  EXPECT_EQ(od.pages_shipped, 17u);
  EXPECT_EQ(od.checkpoint_cost, 0);
}

TEST(Rfork, EmptyProcessIsCheap) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  AddressSpace as(4096, 16);
  auto r = forker.full_copy(as);
  EXPECT_EQ(r.pages_shipped, 0u);
  EXPECT_LT(vt_to_sec(r.total_elapsed), 0.3);
}

TEST(RforkDeath, BadTouchFractionAborts) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  AddressSpace as(4096, 4);
  EXPECT_DEATH(forker.on_demand(as, 1.5), "MW_CHECK");
}

}  // namespace
}  // namespace mw
