#include <gtest/gtest.h>

#include <vector>

#include "dist/net_sim.hpp"
#include "dist/reliable.hpp"
#include "util/des.hpp"
#include "util/rng.hpp"

namespace mw {
namespace {

// --- retry-budget exhaustion ---------------------------------------------

TEST(RetryPolicy, SingleAttemptBudgetNeverRetries) {
  EventQueue q;
  LinkModel link;
  link.loss_probability = 1.0;
  NetSim net(q, link, /*seed=*/2);
  RetryPolicy policy;
  policy.max_attempts = 1;
  ReliableChannel ch(net, policy);
  int failed = 0;
  ch.send(0, 1, 100, [] {}, [&] { ++failed; });
  q.run();
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(ch.stats().retransmissions, 0u);
  EXPECT_EQ(ch.stats().timeouts, 1u);  // the one RTO that killed it
  EXPECT_EQ(ch.stats().backoff_total, policy.rto_for(0));
}

TEST(RetryPolicy, ExhaustionAccountsEveryRtoInBackoffTotal) {
  EventQueue q;
  LinkModel link;
  link.loss_probability = 1.0;
  NetSim net(q, link, /*seed=*/2);
  RetryPolicy policy;  // 5 attempts
  ReliableChannel ch(net, policy);
  int failed = 0;
  ch.send(0, 1, 100, [] {}, [&] { ++failed; });
  q.run();
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(ch.stats().timeouts, policy.max_attempts);
  EXPECT_EQ(ch.stats().backoff_total, policy.exhausted_budget());
  EXPECT_EQ(ch.stats().deadline_failures, 0u);
}

// --- backoff cap saturation ----------------------------------------------

TEST(RetryPolicy, CapSaturatesForAllLaterAttempts) {
  RetryPolicy p;
  p.rto_initial = vt_ms(10);
  p.backoff = 3.0;
  p.rto_cap = vt_ms(50);
  p.max_attempts = 20;
  EXPECT_EQ(p.rto_for(0), vt_ms(10));
  EXPECT_EQ(p.rto_for(1), vt_ms(30));
  for (std::size_t k = 2; k < p.max_attempts; ++k)
    EXPECT_EQ(p.rto_for(k), vt_ms(50)) << "attempt " << k;
  EXPECT_EQ(p.exhausted_budget(), vt_ms(10) + vt_ms(30) + 18 * vt_ms(50));
}

TEST(RetryPolicy, HugeAttemptIndexDoesNotOverflow) {
  RetryPolicy p;  // backoff^1000 overflows any integer; the cap must win
  EXPECT_EQ(p.rto_for(1000), p.rto_cap);
}

TEST(RetryPolicy, CapBelowInitialClampsEveryAttempt) {
  RetryPolicy p;
  p.rto_initial = vt_ms(100);
  p.rto_cap = vt_ms(40);
  EXPECT_EQ(p.rto_for(0), vt_ms(40));
  EXPECT_EQ(p.rto_for(7), vt_ms(40));
}

// --- zero-timeout requests -----------------------------------------------

TEST(RetryPolicy, ZeroRtoStillTerminatesAtAttemptBudget) {
  // A zero RTO means "retry immediately": the budget, not the clock, must
  // bound the work — the sender may never spin forever.
  EventQueue q;
  LinkModel link;
  link.loss_probability = 1.0;
  link.latency = 0;
  link.per_message_overhead = 0;
  NetSim net(q, link, /*seed=*/5);
  RetryPolicy policy;
  policy.rto_initial = 0;
  policy.rto_cap = 0;
  ReliableChannel ch(net, policy);
  int failed = 0;
  ch.send(0, 1, 100, [] {}, [&] { ++failed; });
  q.run();
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(ch.stats().retransmissions, policy.max_attempts - 1);
  EXPECT_EQ(ch.stats().backoff_total, 0);
}

// --- jitter determinism under a fixed seed -------------------------------

TEST(RetryPolicy, JitterIsDeterministicPerSeed) {
  RetryPolicy p;
  p.jitter = 0.5;
  auto draw = [&](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<VDuration> rtos;
    for (std::size_t k = 0; k < 8; ++k) rtos.push_back(p.rto_jittered(k, rng));
    return rtos;
  };
  EXPECT_EQ(draw(7), draw(7));
  EXPECT_NE(draw(7), draw(8));
}

TEST(RetryPolicy, JitterScalesWithinItsBand) {
  RetryPolicy p;
  p.jitter = 0.5;
  Rng rng(3);
  for (std::size_t k = 0; k < 64; ++k) {
    const VDuration base = p.rto_for(k % 6);
    const VDuration j = p.rto_jittered(k % 6, rng);
    EXPECT_GE(j, base);
    // The jittered RTO is deliberately NOT re-capped: the band rides on
    // top of the capped base schedule.
    EXPECT_LE(j, static_cast<VDuration>(base * (1.0 + p.jitter)) + 1);
  }
}

TEST(RetryPolicy, ZeroJitterStillConsumesOneDraw) {
  // Toggling jitter must never shift the rest of a caller's seeded stream:
  // the draw happens either way.
  RetryPolicy plain;
  RetryPolicy jittered;
  jittered.jitter = 0.25;
  Rng a(9), b(9);
  EXPECT_EQ(plain.rto_jittered(2, a), plain.rto_for(2));
  (void)jittered.rto_jittered(2, b);
  EXPECT_EQ(a.next_u64(), b.next_u64());  // streams still in lockstep
}

// --- deadlines ------------------------------------------------------------

TEST(RetryPolicy, DeadlineZeroMeansRetryBudgetAlone) {
  RetryPolicy p;
  EXPECT_EQ(p.deadline, 0);  // the default: no deadline discipline
}

}  // namespace
}  // namespace mw
