#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dist/net_sim.hpp"
#include "dist/sim_transport.hpp"
#include "dist/transport_channel.hpp"
#include "fault/fault.hpp"
#include "trace/spec_profile.hpp"
#include "trace/trace.hpp"
#include "util/des.hpp"

namespace mw {
namespace {

Bytes make_payload(std::size_t n, std::uint8_t salt = 0) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = static_cast<std::uint8_t>(i * 31 + salt);
  return b;
}

/// Records every delivery: the receiver half of most tests here.
class Recorder : public TransportReceiver {
 public:
  void on_message(NodeId from, std::span<const std::uint8_t> payload) override {
    froms.push_back(from);
    payloads.emplace_back(payload.begin(), payload.end());
  }
  std::vector<NodeId> froms;
  std::vector<Bytes> payloads;
};

// --- LinkModel partitions (satellite: symmetric + asymmetric) -------------

TEST(LinkModel, AsymmetricBlockIsOneWay) {
  LinkModel link;
  link.block(1, 2);
  EXPECT_TRUE(link.blocks(1, 2));
  EXPECT_FALSE(link.blocks(2, 1));
  link.unblock(1, 2);
  EXPECT_FALSE(link.blocks(1, 2));
}

TEST(LinkModel, SymmetricPartitionBlocksBothDirections) {
  LinkModel link;
  link.partition(1, 2);
  EXPECT_TRUE(link.blocks(1, 2));
  EXPECT_TRUE(link.blocks(2, 1));
  EXPECT_FALSE(link.blocks(1, 3));
  link.heal(1, 2);
  EXPECT_FALSE(link.blocks(1, 2));
  EXPECT_FALSE(link.blocks(2, 1));
}

TEST(LinkModel, HealAllClearsEveryBlock) {
  LinkModel link;
  link.block(1, 2);
  link.partition(3, 4);
  link.heal_all();
  EXPECT_FALSE(link.blocks(1, 2));
  EXPECT_FALSE(link.blocks(3, 4));
  EXPECT_FALSE(link.blocks(4, 3));
}

TEST(NetSim, PartitionedSendIsSwallowedAndCounted) {
  EventQueue q;
  LinkModel link;
  link.partition(0, 1);
  NetSim net(q, link);
  int delivered = 0;
  net.send(0, 1, 100, [&] { ++delivered; });
  net.send(1, 0, 100, [&] { ++delivered; });
  net.send(0, 2, 100, [&] { ++delivered; });
  q.run();
  EXPECT_EQ(delivered, 1);  // only the unpartitioned pair
  EXPECT_EQ(net.messages_partitioned(), 2u);
  EXPECT_EQ(net.messages_dropped(), 0u);  // partitions are not loss
}

TEST(NetSim, HealingMidRunRestoresDeliveryWithoutPerturbingSchedule) {
  // The partition check runs before every stochastic draw, so healing must
  // not shift the delivery times of messages sent after the heal relative
  // to a run that never partitioned.
  auto deliveries_after = [](bool partition_first) {
    EventQueue q;
    LinkModel link;
    link.jitter = vt_ms(2);
    NetSim net(q, link, /*seed=*/11);
    if (partition_first) {
      net.mutable_link().partition(0, 1);
      net.send(0, 1, 64, [] { FAIL() << "delivered through a partition"; });
      q.run();
      net.mutable_link().heal(0, 1);
    }
    std::vector<VTime> times;
    const VTime base = q.now();
    for (int i = 0; i < 16; ++i)
      net.send(0, 1, 64, [&q, &times, base] { times.push_back(q.now() - base); });
    q.run();
    return times;
  };
  EXPECT_EQ(deliveries_after(false), deliveries_after(true));
}

// --- SimTransport determinism ---------------------------------------------

TEST(SimTransport, DeliveryScheduleMatchesRawNetSimExactly) {
  // The transport must ride NetSim byte-for-byte: same link, same seed,
  // same send sizes => the identical delivery timestamps the pre-transport
  // dist tests pinned down.
  LinkModel link;
  link.loss_probability = 0.3;
  link.duplicate_probability = 0.1;
  link.jitter = vt_ms(2);

  std::vector<VTime> raw;
  {
    EventQueue q;
    NetSim net(q, link, /*seed=*/21);
    for (int i = 0; i < 40; ++i)
      net.send(0, 1, 100, [&q, &raw] { raw.push_back(q.now()); });
    q.run();
  }

  std::vector<VTime> wrapped;
  {
    EventQueue q;
    SimTransport t(q, link, /*seed=*/21);
    class TimeTap : public TransportReceiver {
     public:
      TimeTap(EventQueue& q, std::vector<VTime>& out) : q_(q), out_(out) {}
      void on_message(NodeId, std::span<const std::uint8_t>) override {
        out_.push_back(q_.now());
      }
      EventQueue& q_;
      std::vector<VTime>& out_;
    } tap(q, wrapped);
    t.bind(1, tap);
    const Bytes payload = make_payload(100);
    for (int i = 0; i < 40; ++i) t.send(0, 1, payload);
    t.run();
  }
  EXPECT_EQ(raw, wrapped);
}

TEST(SimTransport, PayloadBytesArriveIntact) {
  EventQueue q;
  SimTransport t(q, LinkModel{});
  Recorder rx;
  t.bind(1, rx);
  const Bytes payload = make_payload(777, 3);
  EXPECT_TRUE(t.send(0, 1, payload));
  t.run();
  ASSERT_EQ(rx.payloads.size(), 1u);
  EXPECT_EQ(rx.payloads[0], payload);
  EXPECT_EQ(rx.froms[0], 0u);
  EXPECT_EQ(t.stats().messages_delivered, 1u);
  EXPECT_EQ(t.stats().bytes_delivered, 777u);
}

TEST(SimTransport, OversizedPayloadIsRejectedNotTruncated) {
  EventQueue q;
  SimTransport t(q, LinkModel{}, /*seed=*/0, /*max_payload=*/64);
  Recorder rx;
  t.bind(1, rx);
  EXPECT_FALSE(t.send(0, 1, make_payload(65)));
  t.run();
  EXPECT_TRUE(rx.payloads.empty());
  EXPECT_EQ(t.stats().send_errors, 1u);
}

TEST(SimTransport, UnboundDestinationCountsUnroutable) {
  EventQueue q;
  SimTransport t(q, LinkModel{});
  EXPECT_TRUE(t.send(0, 9, make_payload(8)));  // best-effort: sent, no home
  t.run();
  EXPECT_EQ(t.stats().messages_unroutable, 1u);
}

TEST(SimTransport, TimersFireInOrderAndCancelledTimersDont) {
  EventQueue q;
  SimTransport t(q, LinkModel{});
  std::vector<int> fired;
  t.schedule(vt_ms(30), [&] { fired.push_back(3); });
  t.schedule(vt_ms(10), [&] { fired.push_back(1); });
  const TimerId doomed = t.schedule(vt_ms(20), [&] { fired.push_back(2); });
  t.cancel(doomed);
  t.cancel(doomed);  // double-cancel must be safe
  t.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(SimTransport, BlockedLinkPartitionsUntilUnblocked) {
  EventQueue q;
  SimTransport t(q, LinkModel{});
  Recorder rx;
  t.bind(1, rx);
  t.set_link_blocked(0, 1, true);
  t.send(0, 1, make_payload(10));
  t.run();
  EXPECT_TRUE(rx.payloads.empty());
  EXPECT_EQ(t.stats().messages_partitioned, 1u);
  t.set_link_blocked(0, 1, false);
  t.send(0, 1, make_payload(10));
  t.run();
  EXPECT_EQ(rx.payloads.size(), 1u);
}

// --- fault points on the sim backend --------------------------------------

TEST(SimTransport, NetDropPointLosesExactlyTheTargetedFrame) {
  EventQueue q;
  SimTransport t(q, LinkModel{});
  Recorder rx;
  t.bind(1, rx);
  FaultInjector inj(1);
  inj.arm("net.drop", FaultSpec::once(FaultKind::kDropMessage, 1));
  FaultScope scope(inj);
  for (int i = 0; i < 3; ++i) t.send(0, 1, make_payload(16));
  t.run();
  EXPECT_EQ(rx.payloads.size(), 2u);
  EXPECT_EQ(t.stats().messages_dropped, 1u);
}

TEST(SimTransport, NetDupPointDeliversTwice) {
  EventQueue q;
  SimTransport t(q, LinkModel{});
  Recorder rx;
  t.bind(1, rx);
  FaultInjector inj(1);
  inj.arm("net.dup", FaultSpec::once(FaultKind::kDuplicateMessage, 0));
  FaultScope scope(inj);
  t.send(0, 1, make_payload(16));
  t.run();
  EXPECT_EQ(rx.payloads.size(), 2u);
  EXPECT_EQ(t.stats().messages_duplicated, 1u);
}

TEST(SimTransport, NetDelayPointDefersDelivery) {
  EventQueue q;
  SimTransport t(q, LinkModel{});
  FaultInjector inj(1);
  inj.arm("net.delay",
          FaultSpec::always(FaultKind::kDelay).delayed(vt_ms(500)));
  FaultScope scope(inj);
  std::vector<VTime> times;
  class TimeTap : public TransportReceiver {
   public:
    TimeTap(EventQueue& q, std::vector<VTime>& out) : q_(q), out_(out) {}
    void on_message(NodeId, std::span<const std::uint8_t>) override {
      out_.push_back(q_.now());
    }
    EventQueue& q_;
    std::vector<VTime>& out_;
  } tap(q, times);
  t.bind(1, tap);
  t.send(0, 1, make_payload(16));
  t.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_GE(times[0], vt_ms(500));
}

TEST(SimTransport, NetPartitionPointSwallowsWithoutStochasticSideEffects) {
  EventQueue q;
  SimTransport t(q, LinkModel{});
  Recorder rx;
  t.bind(1, rx);
  FaultInjector inj(7);
  inj.arm("net.partition", FaultSpec::every_nth(FaultKind::kDropMessage, 2));
  FaultScope scope(inj);
  for (int i = 0; i < 6; ++i) t.send(0, 1, make_payload(16));
  t.run();
  EXPECT_EQ(rx.payloads.size(), 3u);
  EXPECT_EQ(t.stats().messages_partitioned, 3u);
}

// --- TransportChannel on the sim backend ----------------------------------

TEST(TransportChannel, DeliversMultiFragmentPayloadExactlyOnce) {
  EventQueue q;
  SimTransport t(q, LinkModel{}, /*seed=*/0, /*max_payload=*/256);
  TransportChannel a(t, 0);
  TransportChannel b(t, 1);
  const Bytes payload = make_payload(3000, 5);  // ~13 fragments at 256B
  std::vector<Bytes> got;
  b.set_handler([&](NodeId, const Bytes& p) { got.push_back(p); });
  int delivered = 0, failed = 0;
  EXPECT_TRUE(a.send(1, payload, [&] { ++delivered; }, [&] { ++failed; }));
  t.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], payload);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(failed, 0);
  EXPECT_EQ(a.stats().retransmissions, 0u);
  EXPECT_EQ(a.inflight(), 0u);
}

TEST(TransportChannel, OversizedMessageRejectedUpFront) {
  EventQueue q;
  SimTransport t(q, LinkModel{}, /*seed=*/0, /*max_payload=*/128);
  TransportChannel a(t, 0);
  EXPECT_FALSE(a.send(1, make_payload(a.max_message_bytes() + 1)));
  EXPECT_TRUE(a.send(1, make_payload(a.max_message_bytes())));
}

TEST(TransportChannel, RetransmitsMaskHeavyLossExactlyOnce) {
  EventQueue q;
  LinkModel link;
  link.loss_probability = 0.4;
  SimTransport t(q, link, /*seed=*/13);
  TransportChannel a(t, 0);
  TransportChannel b(t, 1);
  int got = 0;
  b.set_handler([&](NodeId, const Bytes&) { ++got; });
  int delivered = 0, failed = 0;
  for (int i = 0; i < 20; ++i)
    a.send(1, make_payload(600, static_cast<std::uint8_t>(i)),
           [&] { ++delivered; }, [&] { ++failed; });
  t.run();
  // Sender side: every transfer resolves exactly once. Receiver side: no
  // transfer delivers twice. The two may disagree (a delivered transfer
  // whose acks all died reports failed) — that residue is the protocol's
  // documented two-generals limit, so got may exceed `delivered` but
  // never the transfer count.
  EXPECT_EQ(delivered + failed, 20);
  EXPECT_LE(got, 20);
  EXPECT_GE(got, delivered);
  EXPECT_GT(a.stats().retransmissions, 0u);
  EXPECT_GT(a.stats().timeouts, 0u);
  EXPECT_GT(a.stats().backoff_total, 0);
  EXPECT_GT(got, 10);
}

TEST(TransportChannel, TotalLossExhaustsBudgetAndReportsFailure) {
  EventQueue q;
  LinkModel link;
  link.loss_probability = 1.0;
  SimTransport t(q, link, /*seed=*/3);
  RetryPolicy policy;
  TransportChannel a(t, 0, policy);
  int delivered = 0, failed = 0;
  a.send(1, make_payload(64), [&] { ++delivered; }, [&] { ++failed; });
  t.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(a.stats().failures, 1u);
  EXPECT_EQ(a.stats().deadline_failures, 0u);
  EXPECT_EQ(a.stats().timeouts, policy.max_attempts);
  EXPECT_EQ(a.inflight(), 0u);
}

TEST(TransportChannel, DeadlineKillsRequestBeforeRetryBudget) {
  EventQueue q;
  LinkModel link;
  link.loss_probability = 1.0;
  SimTransport t(q, link, /*seed=*/3);
  RetryPolicy policy;
  policy.max_attempts = 50;  // budget would take seconds
  policy.deadline = vt_ms(100);
  TransportChannel a(t, 0, policy);
  int failed = 0;
  a.send(1, make_payload(64), [] {}, [&] { ++failed; });
  t.run();
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(a.stats().deadline_failures, 1u);
  // Died at the first RTO check past the deadline, not after 50 attempts.
  EXPECT_LT(a.stats().timeouts, 10u);
}

TEST(TransportChannel, DuplicateFragmentsAreSuppressedNotRedelivered) {
  EventQueue q;
  LinkModel link;
  link.duplicate_probability = 1.0;  // every frame arrives twice
  SimTransport t(q, link, /*seed=*/4);
  TransportChannel a(t, 0);
  TransportChannel b(t, 1);
  int got = 0;
  b.set_handler([&](NodeId, const Bytes&) { ++got; });
  a.send(1, make_payload(100));
  t.run();
  EXPECT_EQ(got, 1);
  EXPECT_GT(b.stats().duplicates_suppressed, 0u);
}

TEST(TransportChannel, HeartbeatsKeepPeersAliveAndSilenceKillsThem) {
  EventQueue q;
  SimTransport t(q, LinkModel{});
  PeerHealthConfig health;  // suspect at 100ms, dead at 300ms
  TransportChannel a(t, 0, RetryPolicy{}, health);
  TransportChannel b(t, 1, RetryPolicy{}, health);
  std::vector<std::pair<NodeId, PeerState>> seen;
  a.watch_peer(1);
  a.enable_heartbeats(
      [&](NodeId p, PeerState s) { seen.emplace_back(p, s); });
  b.watch_peer(0);
  b.enable_heartbeats();
  t.run_until(vt_ms(400));
  EXPECT_TRUE(seen.empty());  // mutual beats: nobody degraded

  // Partition b away: silence accumulates and the state ladder descends.
  t.set_link_blocked(1, 0, true);
  t.run_until(vt_ms(900));
  ASSERT_GE(seen.size(), 2u);
  EXPECT_EQ(seen[0].second, PeerState::kSuspect);
  EXPECT_EQ(seen[1].second, PeerState::kDead);
  EXPECT_EQ(seen[0].first, 1u);

  // Heal: the next beat resurrects the peer.
  t.set_link_blocked(1, 0, false);
  t.run_until(vt_ms(1300));
  ASSERT_GE(seen.size(), 3u);
  EXPECT_EQ(seen.back().second, PeerState::kAlive);
}

TEST(PeerHealth, UnwatchedPeerReportsDead) {
  PeerHealth h;
  EXPECT_EQ(h.state(42, vt_ms(0)), PeerState::kDead);
  h.watch(42, vt_ms(0));
  EXPECT_EQ(h.state(42, vt_ms(0)), PeerState::kAlive);
  h.forget(42);
  EXPECT_EQ(h.state(42, vt_ms(0)), PeerState::kDead);
}

TEST(PeerHealth, LadderDescendsWithSilence) {
  PeerHealthConfig cfg;
  PeerHealth h(cfg);
  h.watch(7, 0);
  EXPECT_EQ(h.state(7, cfg.suspect_after - 1), PeerState::kAlive);
  EXPECT_EQ(h.state(7, cfg.suspect_after), PeerState::kSuspect);
  EXPECT_EQ(h.state(7, cfg.dead_after), PeerState::kDead);
  h.heard_from(7, cfg.dead_after);  // resurrection
  EXPECT_EQ(h.state(7, cfg.dead_after), PeerState::kAlive);
}

// --- trace / SpecProfile plumbing (satellite 1) ---------------------------

TEST(TransportTrace, RetryCountersSurfaceInSpecProfile) {
  trace::reset();
  trace::Scope scope;
  EventQueue q;
  LinkModel link;
  link.loss_probability = 1.0;
  SimTransport t(q, link, /*seed=*/3);
  TransportChannel a(t, 0);
  a.send(1, make_payload(64));
  t.run();
  const trace::SpecProfile p = trace::build_spec_profile(trace::drain());
  EXPECT_GT(p.net_sends, 0u);
  EXPECT_GT(p.net_send_bytes, 0u);
  EXPECT_EQ(p.net_retransmits, a.policy().max_attempts - 1);
  EXPECT_EQ(p.net_timeouts, 1u);
  EXPECT_GT(p.net_backoff_total, 0);
  const std::string s = p.to_string();
  EXPECT_NE(s.find("transport:"), std::string::npos);
  EXPECT_NE(s.find("retransmit"), std::string::npos);
}

TEST(TransportTrace, PeerDeathEventsSurfaceInSpecProfile) {
  trace::reset();
  trace::Scope scope;
  EventQueue q;
  SimTransport t(q, LinkModel{});
  TransportChannel a(t, 0);
  a.watch_peer(1);  // never speaks: suspect then dead
  a.enable_heartbeats();
  t.run_until(vt_ms(500));
  const trace::SpecProfile p = trace::build_spec_profile(trace::drain());
  EXPECT_EQ(p.net_peer_suspects, 1u);
  EXPECT_EQ(p.net_peer_deaths, 1u);
}

}  // namespace
}  // namespace mw
