#include "dist/remote_alt.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

AddressSpace small_image() {
  AddressSpace as(4096, 64);
  for (int p = 0; p < 8; ++p) as.store<int>(p * 4096, p);
  return as;
}

std::vector<RemoteAltSpec> specs(std::initializer_list<double> secs,
                                 std::initializer_list<bool> ok) {
  std::vector<RemoteAltSpec> out;
  auto s = secs.begin();
  auto o = ok.begin();
  for (; s != secs.end(); ++s, ++o)
    out.push_back(RemoteAltSpec{static_cast<VDuration>(*s * 1e6), *o});
  return out;
}

TEST(RemoteAlt, FastestSuccessfulNodeWins) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  auto r = distributed_race(forker, small_image(),
                            specs({3.0, 1.0, 2.0}, {true, true, true}));
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.winner, 1u);
}

TEST(RemoteAlt, FailuresSkipped) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  auto r = distributed_race(forker, small_image(),
                            specs({1.0, 5.0}, {false, true}));
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.winner, 1u);
}

TEST(RemoteAlt, AllFailIsFailure) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  auto r = distributed_race(forker, small_image(),
                            specs({1.0, 2.0}, {false, false}));
  EXPECT_TRUE(r.failed);
}

TEST(RemoteAlt, ElapsedIncludesShippingAndReply) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  AddressSpace img = small_image();
  auto one = distributed_race(forker, img, specs({1.0}, {true}));
  const RforkResult rf = forker.full_copy(img);
  ASSERT_FALSE(one.failed);
  EXPECT_GT(one.elapsed, rf.total_elapsed + vt_sec(1));
}

TEST(RemoteAlt, SerialSpawnDelaysLaterNodes) {
  // With identical work, the first-spawned node wins: later nodes start
  // after more checkpoint work has serialized in the parent.
  RemoteForker forker{LinkModel{}, DistCost{}};
  auto r = distributed_race(forker, small_image(),
                            specs({2.0, 2.0, 2.0}, {true, true, true}));
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.winner, 0u);
}

TEST(RemoteAlt, OnDemandCutsBytesShipped) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  AddressSpace img = small_image();
  auto full = distributed_race(forker, img, specs({1.0}, {true}), false);
  auto lazy = distributed_race(forker, img, specs({1.0}, {true}), true, 0.2);
  EXPECT_LT(lazy.bytes_shipped, full.bytes_shipped);
  EXPECT_LT(lazy.elapsed, full.elapsed);
}

TEST(RemoteAlt, LocalRaceMatchesPsScheduler) {
  // Two identical tasks, two CPUs: finish = fork stagger + duration.
  auto sp = specs({1.0, 1.0}, {true, true});
  const VDuration fork = vt_ms(10);
  const VDuration t = local_race(2, fork, sp);
  EXPECT_EQ(t, fork + vt_sec(1));
}

TEST(RemoteAlt, LocalRaceFailsWhenAllFail) {
  auto sp = specs({1.0}, {false});
  EXPECT_EQ(local_race(2, 0, sp), kVTimeMax);
}

TEST(RemoteAlt, LongWorkFavoursDistribution) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  AddressSpace img = small_image();
  auto sp = specs({8.0, 9.0, 10.0, 11.0}, {true, true, true, true});
  const VDuration local = local_race(2, vt_ms(12), sp);
  auto dist = distributed_race(forker, img, sp);
  EXPECT_LT(dist.elapsed, local);
}

TEST(RemoteAlt, ShortWorkFavoursLocal) {
  RemoteForker forker{LinkModel{}, DistCost{}};
  AddressSpace img = small_image();
  auto sp = specs({0.05, 0.06}, {true, true});
  const VDuration local = local_race(2, vt_ms(12), sp);
  auto dist = distributed_race(forker, img, sp);
  EXPECT_LT(local, dist.elapsed);
}

}  // namespace
}  // namespace mw
