#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/runtime_auditor.hpp"
#include "dist/sim_transport.hpp"
#include "dist/socket_transport.hpp"
#include "dist/transport_race.hpp"
#include "fault/fault.hpp"
#include "util/des.hpp"

namespace mw {
namespace {

RaceConfig sim_config() {
  RaceConfig c;
  c.steps_per_checkpoint = 64;
  c.slice_delay = vt_ms(1);
  return c;
}

/// One in-process sim cluster: a coordinator plus `n` workers sharing a
/// SimTransport. Nodes: coordinator = 100, workers = 1..n.
struct SimCluster {
  explicit SimCluster(std::size_t n, RaceConfig config = sim_config(),
                      LinkModel link = {}, std::uint64_t seed = 1)
      : transport(queue, link, seed), coordinator(transport, 100, config) {
    for (std::size_t i = 1; i <= n; ++i)
      workers.push_back(
          std::make_unique<RaceWorker>(transport, NodeId(i), 100, config));
    transport.run_until(vt_ms(10));  // let the joins land
  }
  EventQueue queue;
  SimTransport transport;
  RaceCoordinator coordinator;
  std::vector<std::unique_ptr<RaceWorker>> workers;
};

TEST(RaceReference, RecurrenceIsDeterministic) {
  EXPECT_EQ(race_reference(0), 0u);
  EXPECT_EQ(race_reference(1000), race_reference(1000));
  EXPECT_NE(race_reference(1000), race_reference(1001));
}

TEST(RaceSim, UndisturbedRaceCompletesWithCorrectAccumulators) {
  SimCluster c(2);
  ASSERT_EQ(c.coordinator.joined(), 2u);
  c.coordinator.start({1000, 600});
  c.transport.run_until(vt_sec(2));
  ASSERT_TRUE(c.coordinator.done());
  const RaceOutcome& out = c.coordinator.outcome();
  EXPECT_TRUE(out.all_completed);
  ASSERT_EQ(out.alts.size(), 2u);
  for (const RaceAltOutcome& alt : out.alts) {
    EXPECT_TRUE(alt.accumulator_ok);
    EXPECT_EQ(alt.start_step, 0u);  // nobody restored anything
    EXPECT_EQ(alt.failovers, 0u);
    EXPECT_FALSE(alt.finished_locally);
  }
  EXPECT_EQ(out.alts[0].accumulator, race_reference(1000));
  EXPECT_EQ(out.alts[1].accumulator, race_reference(600));
  EXPECT_GT(out.checkpoints_received, 0u);
  EXPECT_EQ(out.failovers, 0u);
  EXPECT_FALSE(out.used_local_fallback);
}

TEST(RaceSim, KilledWorkerFailsOverToStandbyPreservingWork) {
  SimCluster c(3);  // 2 assigned + 1 standby
  ASSERT_EQ(c.coordinator.joined(), 3u);
  c.coordinator.start({4000, 500});

  // Let the victim ship real deltas, then kill it mid-run.
  while (c.coordinator.chain_length(0) < 4) c.transport.poll();
  ASSERT_FALSE(c.coordinator.done());
  const NodeId victim = c.coordinator.workers()[0];
  c.workers[victim - 1]->kill();

  c.transport.run_until(c.transport.now() + vt_sec(5));
  ASSERT_TRUE(c.coordinator.done());
  const RaceOutcome& out = c.coordinator.outcome();
  EXPECT_TRUE(out.all_completed);
  EXPECT_EQ(out.failovers, 1u);
  const RaceAltOutcome& failed_over = out.alts[0];
  EXPECT_TRUE(failed_over.accumulator_ok);
  EXPECT_EQ(failed_over.accumulator, race_reference(4000));
  EXPECT_EQ(failed_over.failovers, 1u);
  // The proof of work preservation: the replacement resumed from shipped
  // state, not from zero.
  EXPECT_GT(failed_over.start_step, 0u);
  EXPECT_FALSE(failed_over.finished_locally);
  EXPECT_FALSE(out.used_local_fallback);
}

TEST(RaceSim, FailoverIsDeterministicPerSeed) {
  auto run = [] {
    SimCluster c(3);
    c.coordinator.start({4000, 500});
    while (c.coordinator.chain_length(0) < 4) c.transport.poll();
    c.workers[c.coordinator.workers()[0] - 1]->kill();
    c.transport.run_until(c.transport.now() + vt_sec(5));
    EXPECT_TRUE(c.coordinator.done());
    const RaceOutcome& out = c.coordinator.outcome();
    return std::tuple(out.checkpoints_received, out.bytes_shipped,
                      out.alts[0].start_step, out.alts[0].accumulator);
  };
  EXPECT_EQ(run(), run());
}

TEST(RaceSim, TotalPartitionDegradesToLocalExecution) {
  SimCluster c(1);
  c.coordinator.start({4000});
  while (c.coordinator.chain_length(0) < 4) c.transport.poll();
  ASSERT_FALSE(c.coordinator.done());

  // Sever both directions: the worker is alive but unreachable — the
  // coordinator must finish the alternative itself from the shipped chain.
  const NodeId worker = c.coordinator.workers()[0];
  c.transport.set_link_blocked(100, worker, true);
  c.transport.set_link_blocked(worker, 100, true);
  c.transport.run_until(c.transport.now() + vt_sec(5));

  ASSERT_TRUE(c.coordinator.done());
  const RaceOutcome& out = c.coordinator.outcome();
  EXPECT_TRUE(out.used_local_fallback);
  EXPECT_TRUE(out.alts[0].finished_locally);
  EXPECT_TRUE(out.alts[0].accumulator_ok);
  EXPECT_GT(out.alts[0].start_step, 0u);
  EXPECT_GT(c.transport.stats().messages_partitioned, 0u);
}

TEST(RaceSim, FailoverCompletesAuditorClean) {
  // Checkpoint shipping + chain restore churns a lot of COW pages; a
  // failover must not leak any of them. Baseline before the cluster
  // exists, audit after it is torn down.
  RuntimeAuditor auditor;
  {
    SimCluster c(3);
    c.coordinator.start({4000, 500});
    while (c.coordinator.chain_length(0) < 4) c.transport.poll();
    c.workers[c.coordinator.workers()[0] - 1]->kill();
    c.transport.run_until(c.transport.now() + vt_sec(5));
    ASSERT_TRUE(c.coordinator.done());
    EXPECT_TRUE(c.coordinator.outcome().all_completed);
    EXPECT_EQ(c.coordinator.outcome().failovers, 1u);
  }
  const ProcessTable empty;
  const AuditReport report = auditor.run(empty);
  EXPECT_EQ(report.leaked_pages, 0)
      << (report.violations.empty() ? "" : report.violations.front());
}

TEST(RaceSimFaultMatrix, DropAndDelayFaultsNeverBreakTheRace) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    FaultInjector inj(seed);
    inj.arm("net.drop",
            FaultSpec::with_probability(FaultKind::kDropMessage, 0.05));
    inj.arm("net.delay",
            FaultSpec::with_probability(FaultKind::kDelay, 0.1)
                .delayed(vt_ms(3)));
    inj.arm("net.dup",
            FaultSpec::with_probability(FaultKind::kDuplicateMessage, 0.05));
    FaultScope scope(inj);
    SimCluster c(2, sim_config(), LinkModel{}, seed);
    c.coordinator.start({1500, 800});
    c.transport.run_until(vt_sec(10));
    ASSERT_TRUE(c.coordinator.done())
        << "seed " << seed << "\n" << inj.log_string();
    EXPECT_TRUE(c.coordinator.outcome().all_completed)
        << "seed " << seed << "\n" << inj.log_string();
  }
}

// --- the multi-process socket race ----------------------------------------

/// Forked worker process body: joins the coordinator over loopback UDP,
/// serves the race protocol, exits on shutdown (or a 30 s safety budget).
[[noreturn]] void worker_process(NodeId node, std::uint16_t coord_port,
                                 const RaceConfig& config) {
  SocketTransport transport(node);
  transport.add_peer(100, coord_port);
  RaceWorker worker(transport, node, 100, config);
  const VTime budget = transport.now() + 30 * vt_sec(1);
  while (!worker.done() && transport.now() < budget)
    transport.run_until(transport.now() + vt_ms(2));
  _exit(0);
}

RaceConfig socket_config() {
  RaceConfig c;
  c.steps_per_checkpoint = 64;
  c.slice_delay = vt_ms(2);  // real milliseconds
  c.retry.rto_initial = vt_ms(10);
  c.retry.rto_cap = vt_ms(80);
  c.retry.max_attempts = 8;
  c.health.heartbeat_interval = vt_ms(10);
  c.health.suspect_after = vt_ms(60);
  c.health.dead_after = vt_ms(150);
  return c;
}

/// Reaps every child at scope exit so a failing ASSERT can't leak zombies
/// or orphaned workers into the test runner.
struct ChildReaper {
  std::vector<pid_t> pids;
  ~ChildReaper() {
    for (pid_t p : pids) ::kill(p, SIGKILL);
    for (pid_t p : pids) ::waitpid(p, nullptr, 0);
  }
};

TEST(RaceSocket, MultiProcessRaceSurvivesSigkilledWorker) {
  const RaceConfig config = socket_config();
  SocketTransport transport(100);  // bound before forking: children know it
  RaceCoordinator coordinator(transport, 100, config);

  ChildReaper children;
  for (NodeId node = 1; node <= 3; ++node) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) worker_process(node, transport.port(), config);
    children.pids.push_back(pid);
  }

  auto pump = [&](const std::function<bool()>& pred, int budget_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(budget_ms);
    while (!pred()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      transport.run_until(transport.now() + vt_ms(2));
    }
    return true;
  };

  ASSERT_TRUE(pump([&] { return coordinator.joined() == 3; }, 5000));
  coordinator.start({6000, 2000});

  // Kill the worker running alt 0 — a real SIGKILL of a real process —
  // but only after its checkpoints have actually crossed the wire.
  ASSERT_TRUE(pump([&] { return coordinator.chain_length(0) >= 3; }, 5000));
  ASSERT_FALSE(coordinator.done());
  const NodeId victim = coordinator.workers()[0];
  const pid_t victim_pid = children.pids[victim - 1];
  ASSERT_EQ(::kill(victim_pid, SIGKILL), 0);
  ::waitpid(victim_pid, nullptr, 0);

  ASSERT_TRUE(pump([&] { return coordinator.done(); }, 20000));
  const RaceOutcome& out = coordinator.outcome();
  EXPECT_TRUE(out.all_completed);
  EXPECT_GE(out.failovers, 1u);
  const RaceAltOutcome& failed_over = out.alts[0];
  EXPECT_TRUE(failed_over.accumulator_ok);
  EXPECT_EQ(failed_over.accumulator, race_reference(6000));
  // Failover re-dispatched the newest shipped chain: the replacement
  // resumed mid-run instead of recomputing from step 0.
  EXPECT_GT(failed_over.start_step, 0u);
  EXPECT_TRUE(out.alts[1].accumulator_ok);

  // The survivors exit on kShutdown; reap them here so the reaper's
  // SIGKILL backstop stays a no-op on the happy path.
  for (pid_t p : children.pids) {
    if (p == victim_pid) continue;
    int status = 0;
    EXPECT_EQ(::waitpid(p, &status, 0), p);
    EXPECT_TRUE(WIFEXITED(status));
  }
  children.pids.clear();
}

TEST(RaceSocketFaultMatrix, InjectedDropsNeverBreakTheMultiProcessRace) {
  // Faults are injected in the *coordinator* process (children inherit no
  // injector): its sends and acks are the ones randomly eaten.
  FaultInjector inj(3);
  inj.arm("net.drop",
          FaultSpec::with_probability(FaultKind::kDropMessage, 0.05));
  FaultScope scope(inj);

  const RaceConfig config = socket_config();
  SocketTransport transport(100);
  RaceCoordinator coordinator(transport, 100, config);
  ChildReaper children;
  for (NodeId node = 1; node <= 2; ++node) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) worker_process(node, transport.port(), config);
    children.pids.push_back(pid);
  }
  auto pump = [&](const std::function<bool()>& pred, int budget_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(budget_ms);
    while (!pred()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      transport.run_until(transport.now() + vt_ms(2));
    }
    return true;
  };
  ASSERT_TRUE(pump([&] { return coordinator.joined() == 2; }, 5000));
  coordinator.start({3000, 1500});
  ASSERT_TRUE(pump([&] { return coordinator.done(); }, 20000));
  EXPECT_TRUE(coordinator.outcome().all_completed) << inj.log_string();
}

}  // namespace
}  // namespace mw
