// §4.3's information build-up: failed methods leave behind confirmed
// partial roots that warm-start later methods.
#include <gtest/gtest.h>

#include "num/jenkins_traub.hpp"
#include "num/methods.hpp"
#include "num/polyalgorithm.hpp"
#include "num/workload.hpp"

namespace mw {
namespace {

TEST(InformedPolyalgorithm, HarvestKeepsOnlyVerifiedRoots) {
  std::vector<Cx> roots{Cx(1, 0), Cx(-2, 0), Cx(0, 3)};
  Poly p = Poly::from_roots(roots);
  RootResult attempt;
  attempt.roots = {Cx(1, 0), Cx(5, 5)};  // one real root, one garbage
  ProblemNotes notes;
  harvest_partial_roots(p, attempt, &notes);
  ASSERT_EQ(notes.confirmed_partial_roots.size(), 1u);
  EXPECT_LT(std::abs(notes.confirmed_partial_roots[0] - Cx(1, 0)), 1e-9);
}

TEST(InformedPolyalgorithm, HarvestDeduplicates) {
  std::vector<Cx> roots{Cx(1, 0), Cx(2, 0)};
  Poly p = Poly::from_roots(roots);
  RootResult a1, a2;
  a1.roots = {Cx(1, 0)};
  a2.roots = {Cx(1, 0), Cx(2, 0)};
  ProblemNotes notes;
  harvest_partial_roots(p, a1, &notes);
  harvest_partial_roots(p, a2, &notes);
  EXPECT_EQ(notes.confirmed_partial_roots.size(), 2u);
}

TEST(InformedPolyalgorithm, DeflateByNotesReducesDegree) {
  std::vector<Cx> roots{Cx(1, 0), Cx(-1, 0), Cx(0, 2), Cx(0, -2)};
  Poly p = Poly::from_roots(roots);
  ProblemNotes notes;
  notes.confirmed_partial_roots = {Cx(1, 0), Cx(-1, 0)};
  Poly rest = deflate_by_notes(p, notes);
  EXPECT_EQ(rest.degree(), 2);
  EXPECT_LT(std::abs(rest.eval(Cx(0, 2))), 1e-9);
}

TEST(InformedPolyalgorithm, WarmStartUsesPartialProgress) {
  // A failing scout followed by the warm-start member: the warm start
  // must solve only the remainder. We inject the scout as a method that
  // "fails" after finding half the roots.
  Rng rng(77);
  WorkloadConfig cfg;
  cfg.degree = 12;
  cfg.clusters = 0;
  PolyWorkload w = make_clustered_poly(rng, cfg);

  // Precompute 6 genuine roots to hand back from the fake failing scout.
  std::vector<Cx> half(w.true_roots.begin(), w.true_roots.begin() + 6);

  std::vector<InformedMethod> suite;
  suite.push_back({"half-then-die",
                   [&half](const Poly&, const ProblemNotes&) {
                     RootResult r;
                     r.roots = half;
                     r.iterations = 10;
                     r.note = "gave up halfway";
                     return r;  // converged=false
                   },
                   nullptr});
  auto informed = informed_method_suite();
  suite.push_back(informed[1]);  // laguerre-warmstart

  auto out = run_informed_polyalgorithm(w.poly, suite);
  ASSERT_TRUE(out.result.converged) << out.result.note;
  EXPECT_EQ(out.method_used, "laguerre-warmstart");
  EXPECT_EQ(out.methods_tried, 2);
  EXPECT_LT(match_roots(w.true_roots, out.result.roots), 1e-4);

  // The warm start beat a cold Laguerre on the full problem.
  auto cold = mw::laguerre(w.poly);
  ASSERT_TRUE(cold.converged);
  EXPECT_LT(out.total_iterations, cold.iterations + 10);
}

TEST(InformedPolyalgorithm, StandardSuiteSolvesRoutineProblems) {
  Rng rng(31);
  WorkloadConfig cfg;
  cfg.degree = 14;
  cfg.clusters = 2;
  cfg.cluster_gap = 0.05;
  PolyWorkload w = make_clustered_poly(rng, cfg);
  auto out = run_informed_polyalgorithm(w.poly, informed_method_suite());
  ASSERT_TRUE(out.result.converged) << out.result.note;
  EXPECT_LT(match_roots(w.true_roots, out.result.roots), 1e-3);
}

TEST(InformedPolyalgorithm, FailureLogAccumulates) {
  std::vector<InformedMethod> suite;
  for (const char* name : {"a", "b"}) {
    suite.push_back({name,
                     [](const Poly&, const ProblemNotes&) {
                       RootResult r;
                       r.note = "nope";
                       return r;
                     },
                     nullptr});
  }
  Poly p = Poly::from_roots(std::vector<Cx>{Cx(1, 0)});
  auto out = run_informed_polyalgorithm(p, suite);
  EXPECT_FALSE(out.result.converged);
  EXPECT_EQ(out.methods_tried, 2);
}

TEST(InformedPolyalgorithm, NotesVisibleToApplicabilityHeuristics) {
  // A method gated on "only after something else failed".
  int gated_ran = 0;
  std::vector<InformedMethod> suite;
  suite.push_back({"fails",
                   [](const Poly&, const ProblemNotes&) {
                     RootResult r;
                     r.note = "x";
                     return r;
                   },
                   nullptr});
  suite.push_back(
      {"gated",
       [&gated_ran](const Poly& p, const ProblemNotes&) {
         ++gated_ran;
         return jenkins_traub_seq(p);
       },
       [](const Poly&, const ProblemNotes& n) {
         return n.failed_methods >= 1;  // only as a second opinion
       }});
  Poly p = Poly::from_roots(std::vector<Cx>{Cx(2, 1), Cx(-1, 0.5)});
  auto out = run_informed_polyalgorithm(p, suite);
  EXPECT_TRUE(out.result.converged);
  EXPECT_EQ(gated_ran, 1);
}

}  // namespace
}  // namespace mw
