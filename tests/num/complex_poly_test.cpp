#include "num/complex_poly.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

TEST(Poly, FromCoeffsTrimsTrailingZeros) {
  Poly p = Poly::from_coeffs({Cx(1, 0), Cx(2, 0), Cx(0, 0)});
  EXPECT_EQ(p.degree(), 1);
}

TEST(Poly, EvalHorner) {
  // p(z) = 3 + 2z + z^2; p(2) = 3 + 4 + 4 = 11.
  Poly p = Poly::from_coeffs({Cx(3, 0), Cx(2, 0), Cx(1, 0)});
  EXPECT_NEAR(std::abs(p.eval(Cx(2, 0)) - Cx(11, 0)), 0.0, 1e-12);
}

TEST(Poly, EvalComplexPoint) {
  // p(z) = z^2 + 1; p(i) = 0.
  Poly p = Poly::from_coeffs({Cx(1, 0), Cx(0, 0), Cx(1, 0)});
  EXPECT_NEAR(std::abs(p.eval(Cx(0, 1))), 0.0, 1e-12);
}

TEST(Poly, FromRootsEvaluatesToZeroAtRoots) {
  std::vector<Cx> roots{Cx(1, 2), Cx(-0.5, 0.3), Cx(2, -1), Cx(0, 0.7)};
  Poly p = Poly::from_roots(roots);
  EXPECT_EQ(p.degree(), 4);
  for (const Cx& r : roots) EXPECT_LT(std::abs(p.eval(r)), 1e-10);
}

TEST(Poly, FromRootsIsMonic) {
  std::vector<Cx> roots{Cx(1, 0), Cx(2, 0)};
  Poly p = Poly::from_roots(roots);
  EXPECT_NEAR(std::abs(p.leading() - Cx(1, 0)), 0.0, 1e-15);
}

TEST(Poly, EvalWithDerivMatchesDerivativePoly) {
  Poly p = Poly::from_coeffs({Cx(1, 1), Cx(-2, 0), Cx(0, 3), Cx(4, 0)});
  Poly d = p.derivative();
  const Cx z(0.7, -1.3);
  Cx dval;
  const Cx pval = p.eval_with_deriv(z, &dval);
  EXPECT_LT(std::abs(pval - p.eval(z)), 1e-12);
  EXPECT_LT(std::abs(dval - d.eval(z)), 1e-12);
}

TEST(Poly, DerivativeOfConstantIsZero) {
  Poly p = Poly::from_coeffs({Cx(5, 0)});
  EXPECT_TRUE(p.derivative().zero());
}

TEST(Poly, DeflateRemovesRoot) {
  std::vector<Cx> roots{Cx(1, 0), Cx(2, 0), Cx(3, 0)};
  Poly p = Poly::from_roots(roots);
  Poly q = p.deflate(Cx(2, 0));
  EXPECT_EQ(q.degree(), 2);
  EXPECT_LT(std::abs(q.eval(Cx(1, 0))), 1e-10);
  EXPECT_LT(std::abs(q.eval(Cx(3, 0))), 1e-10);
  // The deflated root is no longer a zero.
  EXPECT_GT(std::abs(q.eval(Cx(2, 0))), 0.1);
}

TEST(Poly, MonicNormalizesLeading) {
  Poly p = Poly::from_coeffs({Cx(2, 0), Cx(4, 0)});
  Poly m = p.monic();
  EXPECT_NEAR(std::abs(m.leading() - Cx(1, 0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(m.coeff(0) - Cx(0.5, 0)), 0.0, 1e-15);
}

TEST(Poly, RootBoundsSandwichActualRoots) {
  std::vector<Cx> roots{Cx(0.5, 0.1), Cx(-1.5, 0.4), Cx(0, 2.0)};
  Poly p = Poly::from_roots(roots);
  const double lower = p.root_bound_lower();
  const double upper = p.root_bound_upper();
  for (const Cx& r : roots) {
    EXPECT_GE(std::abs(r), lower - 1e-9);
    EXPECT_LE(std::abs(r), upper + 1e-9);
  }
}

TEST(Poly, RootBoundLowerPositiveForNonzeroConstant) {
  Poly p = Poly::from_roots(std::vector<Cx>{Cx(1, 0), Cx(3, 0)});
  EXPECT_GT(p.root_bound_lower(), 0.0);
}

TEST(MaxResidual, ZeroAtTrueRoots) {
  std::vector<Cx> roots{Cx(1, 1), Cx(-1, 2)};
  Poly p = Poly::from_roots(roots);
  EXPECT_LT(max_residual(p, roots), 1e-10);
  std::vector<Cx> wrong{Cx(5, 5)};
  EXPECT_GT(max_residual(p, wrong), 1.0);
}

TEST(MatchRoots, PerfectMatchIsZero) {
  std::vector<Cx> a{Cx(1, 0), Cx(2, 0)};
  std::vector<Cx> b{Cx(2, 0), Cx(1, 0)};  // permuted
  EXPECT_LT(match_roots(a, b), 1e-15);
}

TEST(MatchRoots, ReportsWorstDistance) {
  std::vector<Cx> a{Cx(0, 0), Cx(1, 0)};
  std::vector<Cx> b{Cx(0, 0), Cx(1.5, 0)};
  EXPECT_NEAR(match_roots(a, b), 0.5, 1e-12);
}

TEST(MatchRoots, MissingRootIsInfinite) {
  std::vector<Cx> a{Cx(0, 0), Cx(1, 0)};
  std::vector<Cx> b{Cx(0, 0)};
  EXPECT_TRUE(std::isinf(match_roots(a, b)));
}

}  // namespace
}  // namespace mw
