// Numerics edge cases: special polynomial geometries the rootfinders must
// survive — roots of unity, double roots, wide dynamic range, tiny/huge
// scaling.
#include <gtest/gtest.h>

#include <numbers>

#include "num/jenkins_traub.hpp"
#include "num/methods.hpp"

namespace mw {
namespace {

std::vector<Cx> roots_of_unity(int n) {
  std::vector<Cx> r;
  for (int k = 0; k < n; ++k) {
    const double a = 2.0 * std::numbers::pi * k / n;
    r.emplace_back(std::cos(a), std::sin(a));
  }
  return r;
}

TEST(EdgeCases, RootsOfUnityJt) {
  // z^8 - 1: perfectly symmetric, all roots equimodular — the worst case
  // for smallest-root selection; per-root angle retries must cope.
  auto expected = roots_of_unity(8);
  Poly p = Poly::from_roots(expected);
  auto r = jenkins_traub_seq(p, 8);
  ASSERT_TRUE(r.converged) << r.note;
  EXPECT_LT(match_roots(expected, r.roots), 1e-6);
}

TEST(EdgeCases, RootsOfUnityAberth) {
  auto expected = roots_of_unity(12);
  auto r = aberth(Poly::from_roots(expected));
  ASSERT_TRUE(r.converged) << r.note;
  EXPECT_LT(match_roots(expected, r.roots), 1e-8);
}

TEST(EdgeCases, ExactDoubleRoot) {
  // (z-1)^2 (z+2): a true multiplicity-2 root.
  std::vector<Cx> expected{Cx(1, 0), Cx(1, 0), Cx(-2, 0)};
  Poly p = Poly::from_roots(expected);
  auto r = laguerre(p);
  ASSERT_TRUE(r.converged) << r.note;
  // Multiple roots limit attainable accuracy to ~sqrt(eps).
  EXPECT_LT(match_roots(expected, r.roots), 1e-5);
}

TEST(EdgeCases, TripleRootLaguerre) {
  std::vector<Cx> expected{Cx(0.5, 0.5), Cx(0.5, 0.5), Cx(0.5, 0.5)};
  Poly p = Poly::from_roots(expected);
  auto r = laguerre(p);
  ASSERT_TRUE(r.converged) << r.note;
  EXPECT_LT(match_roots(expected, r.roots), 1e-3);  // cube-root-of-eps
}

TEST(EdgeCases, WideDynamicRangeOfModuli) {
  // Roots spanning 1e-2 .. 1e2.
  std::vector<Cx> expected{Cx(0.01, 0), Cx(1, 0), Cx(100, 0), Cx(0, 10)};
  Poly p = Poly::from_roots(expected);
  auto r = jenkins_traub_seq(p, 8);
  ASSERT_TRUE(r.converged) << r.note;
  // Relative matching: check each expected root has a close match.
  for (const Cx& e : expected) {
    double best = 1e18;
    for (const Cx& f : r.roots) best = std::min(best, std::abs(e - f));
    EXPECT_LT(best / std::max(1.0, std::abs(e)), 1e-6);
  }
}

TEST(EdgeCases, NonMonicHugeLeadingCoefficient) {
  // 1e8 * (z - 3)(z + 1)
  Poly p = Poly::from_coeffs({Cx(-3e8, 0), Cx(-2e8, 0), Cx(1e8, 0)});
  auto r = jenkins_traub(p);
  ASSERT_TRUE(r.converged);
  std::vector<Cx> expected{Cx(3, 0), Cx(-1, 0)};
  EXPECT_LT(match_roots(expected, r.roots), 1e-7);
}

TEST(EdgeCases, PureImaginaryConjugatePairs) {
  std::vector<Cx> expected{Cx(0, 2), Cx(0, -2), Cx(0, 0.5), Cx(0, -0.5)};
  Poly p = Poly::from_roots(expected);
  auto r = jenkins_traub_seq(p, 8);
  ASSERT_TRUE(r.converged) << r.note;
  EXPECT_LT(match_roots(expected, r.roots), 1e-7);
}

TEST(EdgeCases, ManyZeroRoots) {
  // z^3 (z - 1): repeated zero roots extracted before staging.
  std::vector<Cx> expected{Cx(0, 0), Cx(0, 0), Cx(0, 0), Cx(1, 0)};
  Poly p = Poly::from_roots(expected);
  auto r = jenkins_traub(p);
  ASSERT_TRUE(r.converged) << r.note;
  EXPECT_LT(match_roots(expected, r.roots), 1e-8);
}

TEST(EdgeCases, DegreeOneAndTwoShortCircuit) {
  auto r1 = jenkins_traub(Poly::from_coeffs({Cx(-6, 0), Cx(2, 0)}));
  ASSERT_TRUE(r1.converged);
  EXPECT_LT(std::abs(r1.roots[0] - Cx(3, 0)), 1e-12);
  // Iteration count for linear solves is zero: no staging ran.
  EXPECT_EQ(r1.iterations, 0u);
}

TEST(EdgeCases, ChebyshevLikeOscillatoryRoots) {
  // Chebyshev nodes on [-1, 1]: clustered toward the endpoints.
  std::vector<Cx> expected;
  const int n = 10;
  for (int k = 1; k <= n; ++k) {
    expected.emplace_back(
        std::cos((2.0 * k - 1) / (2.0 * n) * std::numbers::pi), 0.0);
  }
  Poly p = Poly::from_roots(expected);
  auto r = laguerre(p);
  ASSERT_TRUE(r.converged) << r.note;
  EXPECT_LT(match_roots(expected, r.roots), 1e-6);
}

TEST(EdgeCases, DurandKernerDeterministicGivenAngle) {
  std::vector<Cx> expected{Cx(1, 1), Cx(-1, 2), Cx(2, -1), Cx(-2, -2)};
  Poly p = Poly::from_roots(expected);
  auto a = durand_kerner(p);
  auto b = durand_kerner(p);
  ASSERT_TRUE(a.converged);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(EdgeCases, InitAngleChangesDkTrajectory) {
  std::vector<Cx> expected{Cx(1, 1), Cx(-1, 2), Cx(2, -1), Cx(-2, -2),
                           Cx(0.5, 0.2), Cx(-0.3, -1.4)};
  Poly p = Poly::from_roots(expected);
  DkConfig c1, c2;
  c1.init_angle_rad = 0.4;
  c2.init_angle_rad = 1.9;
  auto r1 = durand_kerner(p, c1);
  auto r2 = durand_kerner(p, c2);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  // Same roots, different cost: the dispersion speculation feeds on.
  EXPECT_LT(match_roots(r1.roots, r2.roots), 1e-6);
}

TEST(EdgeCases, WilkinsonPolynomial) {
  // Wilkinson's classic ill-conditioned polynomial (roots 1..n): both
  // flagship methods must recover the roots at moderate degree.
  for (int n : {8, 10}) {
    std::vector<Cx> roots;
    for (int k = 1; k <= n; ++k) roots.emplace_back(k, 0);
    Poly p = Poly::from_roots(roots);
    auto jt = jenkins_traub_seq(p, 8);
    ASSERT_TRUE(jt.converged) << "wilkinson " << n;
    EXPECT_LT(match_roots(roots, jt.roots), 1e-5);
    auto lg = laguerre(p);
    ASSERT_TRUE(lg.converged) << "wilkinson " << n;
    EXPECT_LT(match_roots(roots, lg.roots), 1e-5);
  }
}

}  // namespace
}  // namespace mw
