#include <gtest/gtest.h>

#include "num/jenkins_traub.hpp"
#include "num/methods.hpp"
#include "num/workload.hpp"

namespace mw {
namespace {

Poly simple_poly() {
  return Poly::from_roots(
      std::vector<Cx>{Cx(1, 0), Cx(-2, 0), Cx(0, 3), Cx(0.5, -0.5)});
}

std::vector<Cx> simple_roots() {
  return {Cx(1, 0), Cx(-2, 0), Cx(0, 3), Cx(0.5, -0.5)};
}

TEST(JenkinsTraub, FindsSimpleRoots) {
  auto r = jenkins_traub(simple_poly());
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.roots.size(), 4u);
  EXPECT_LT(match_roots(simple_roots(), r.roots), 1e-6);
  EXPECT_GT(r.iterations, 0u);
}

TEST(JenkinsTraub, LinearAndQuadratic) {
  auto r1 = jenkins_traub(Poly::from_roots(std::vector<Cx>{Cx(3, -2)}));
  ASSERT_TRUE(r1.converged);
  EXPECT_LT(std::abs(r1.roots[0] - Cx(3, -2)), 1e-9);

  std::vector<Cx> qroots{Cx(1, 1), Cx(1, -1)};
  auto r2 = jenkins_traub(Poly::from_roots(qroots));
  ASSERT_TRUE(r2.converged);
  EXPECT_LT(match_roots(qroots, r2.roots), 1e-9);
}

TEST(JenkinsTraub, ZeroRootHandled) {
  std::vector<Cx> roots{Cx(0, 0), Cx(2, 0), Cx(-1, 1)};
  auto r = jenkins_traub(Poly::from_roots(roots));
  ASSERT_TRUE(r.converged);
  EXPECT_LT(match_roots(roots, r.roots), 1e-6);
}

TEST(JenkinsTraub, NonMonicInput) {
  // 2z^2 - 8 = 0 -> roots ±2.
  Poly p = Poly::from_coeffs({Cx(-8, 0), Cx(0, 0), Cx(2, 0)});
  auto r = jenkins_traub(p);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(match_roots(std::vector<Cx>{Cx(2, 0), Cx(-2, 0)}, r.roots), 1e-9);
}

TEST(JenkinsTraub, DifferentAnglesSameRoots) {
  Rng rng(5);
  auto w = make_clustered_poly(rng);
  std::vector<Cx> found;
  for (double angle : {49.0, 143.0, 237.0}) {
    JtConfig cfg;
    cfg.start_angle_deg = angle;
    auto r = jenkins_traub(w.poly, cfg);
    if (!r.converged) continue;  // an angle is allowed to fail
    EXPECT_LT(match_roots(w.true_roots, r.roots), 1e-4)
        << "angle " << angle;
    found = r.roots;
  }
  EXPECT_FALSE(found.empty()) << "every angle failed";
}

TEST(JenkinsTraub, IterationCountVariesWithAngle) {
  // The Table I premise: the starting angle changes the cost.
  Rng rng(11);
  auto w = make_clustered_poly(rng);
  std::uint64_t lo = ~0ull, hi = 0;
  for (int k = 0; k < 8; ++k) {
    JtConfig cfg;
    cfg.start_angle_deg = 20.0 + 45.0 * k;
    auto r = jenkins_traub(w.poly, cfg);
    if (!r.converged) continue;
    lo = std::min(lo, r.iterations);
    hi = std::max(hi, r.iterations);
  }
  ASSERT_LT(lo, hi);
  EXPECT_GT(static_cast<double>(hi) / static_cast<double>(lo), 1.05);
}

TEST(JenkinsTraub, SequentialDriverRetriesAngles) {
  Rng rng(3);
  auto w = make_clustered_poly(rng);
  auto r = jenkins_traub_seq(w.poly);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(match_roots(w.true_roots, r.roots), 1e-4);
}

TEST(JenkinsTraub, Deterministic) {
  Rng rng(17);
  auto w = make_clustered_poly(rng);
  auto a = jenkins_traub(w.poly);
  auto b = jenkins_traub(w.poly);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Laguerre, FindsSimpleRoots) {
  auto r = laguerre(simple_poly());
  ASSERT_TRUE(r.converged);
  EXPECT_LT(match_roots(simple_roots(), r.roots), 1e-6);
}

TEST(Laguerre, HandlesClusteredRoots) {
  Rng rng(23);
  auto w = make_clustered_poly(rng);
  auto r = laguerre(w.poly);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(match_roots(w.true_roots, r.roots), 1e-2);
}

TEST(DurandKerner, FindsWellSeparatedRoots) {
  WorkloadConfig cfg;
  cfg.degree = 10;
  cfg.clusters = 0;
  Rng rng(31);
  auto w = make_clustered_poly(rng, cfg);
  auto r = durand_kerner(w.poly);
  ASSERT_TRUE(r.converged) << r.note;
  EXPECT_LT(match_roots(w.true_roots, r.roots), 1e-6);
}

TEST(Aberth, FindsWellSeparatedRoots) {
  WorkloadConfig cfg;
  cfg.degree = 10;
  cfg.clusters = 0;
  Rng rng(37);
  auto w = make_clustered_poly(rng, cfg);
  auto r = aberth(w.poly);
  ASSERT_TRUE(r.converged) << r.note;
  EXPECT_LT(match_roots(w.true_roots, r.roots), 1e-6);
}

TEST(AberthVsDurandKerner, AberthConvergesFaster) {
  WorkloadConfig cfg;
  cfg.degree = 8;
  cfg.clusters = 0;
  Rng rng(41);
  auto w = make_clustered_poly(rng, cfg);
  auto a = aberth(w.poly);
  auto d = durand_kerner(w.poly);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(d.converged);
  EXPECT_LE(a.iterations, d.iterations);
}

TEST(Newton, SucceedsOnEasyPoly) {
  std::vector<Cx> roots{Cx(1, 0), Cx(2, 1), Cx(-1, -1)};
  auto r = newton_deflation(Poly::from_roots(roots));
  ASSERT_TRUE(r.converged) << r.note;
  EXPECT_LT(match_roots(roots, r.roots), 1e-6);
}

TEST(RootsAcceptable, RejectsWrongCountAndBadRoots) {
  Poly p = simple_poly();
  EXPECT_TRUE(roots_acceptable(p, simple_roots()));
  std::vector<Cx> tooFew{Cx(1, 0)};
  EXPECT_FALSE(roots_acceptable(p, tooFew));
  std::vector<Cx> wrong{Cx(9, 9), Cx(8, 8), Cx(7, 7), Cx(6, 6)};
  EXPECT_FALSE(roots_acceptable(p, wrong));
}

// Property sweep: Jenkins-Traub and Laguerre agree with the generating
// roots across a family of random polynomials.
class RootfinderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RootfinderProperty, MethodsRecoverGeneratingRoots) {
  WorkloadConfig cfg;
  cfg.degree = 12;
  cfg.clusters = 1;
  cfg.cluster_gap = 0.05;
  Rng rng(GetParam());
  auto w = make_clustered_poly(rng, cfg);

  auto jt = jenkins_traub_seq(w.poly);
  ASSERT_TRUE(jt.converged) << "seed " << GetParam();
  EXPECT_LT(match_roots(w.true_roots, jt.roots), 1e-3);

  auto lg = laguerre(w.poly);
  ASSERT_TRUE(lg.converged) << "seed " << GetParam();
  EXPECT_LT(match_roots(w.true_roots, lg.roots), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RootfinderProperty,
                         ::testing::Range<std::uint64_t>(1, 15));

TEST(Workload, GeneratorIsDeterministic) {
  auto a = make_workload_batch(5, 3);
  auto b = make_workload_batch(5, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].poly, b[i].poly);
}

TEST(Workload, RespectsDegreeAndRadii) {
  WorkloadConfig cfg;
  cfg.degree = 18;
  Rng rng(9);
  auto w = make_clustered_poly(rng, cfg);
  EXPECT_EQ(w.poly.degree(), 18);
  EXPECT_EQ(w.true_roots.size(), 18u);
  for (const Cx& r : w.true_roots) {
    EXPECT_GT(std::abs(r), cfg.min_radius * 0.5);
    EXPECT_LT(std::abs(r), cfg.max_radius * 1.5);
  }
}

}  // namespace
}  // namespace mw
