#include "num/polyalgorithm.hpp"

#include <gtest/gtest.h>

#include <set>

#include "num/workload.hpp"

namespace mw {
namespace {

TEST(Polyalgorithm, StandardSuiteHasFiveMethods) {
  auto suite = standard_method_suite();
  EXPECT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].name, "jenkins-traub");
}

TEST(Polyalgorithm, SolvesWithFirstMethodWhenItWorks) {
  Rng rng(3);
  WorkloadConfig cfg;
  cfg.degree = 10;
  cfg.clusters = 1;
  cfg.cluster_gap = 0.05;
  auto w = make_clustered_poly(rng, cfg);
  auto out = run_polyalgorithm(w.poly, standard_method_suite());
  ASSERT_TRUE(out.result.converged);
  EXPECT_EQ(out.methods_tried, 1);
  EXPECT_EQ(out.method_used, "jenkins-traub");
  EXPECT_LT(match_roots(w.true_roots, out.result.roots), 1e-3);
}

TEST(Polyalgorithm, FallsThroughFailingMethods) {
  // A suite whose first two methods always fail.
  std::vector<PolyMethod> suite;
  suite.push_back({"never1",
                   [](const Poly&) {
                     RootResult r;
                     r.iterations = 100;
                     return r;
                   },
                   nullptr});
  suite.push_back({"never2",
                   [](const Poly&) {
                     RootResult r;
                     r.iterations = 50;
                     return r;
                   },
                   nullptr});
  auto real_suite = standard_method_suite();
  suite.push_back(real_suite[1]);  // laguerre

  Rng rng(7);
  WorkloadConfig cfg;
  cfg.degree = 8;
  cfg.clusters = 0;
  auto w = make_clustered_poly(rng, cfg);
  auto out = run_polyalgorithm(w.poly, suite);
  ASSERT_TRUE(out.result.converged);
  EXPECT_EQ(out.methods_tried, 3);
  EXPECT_EQ(out.method_used, "laguerre");
  // Costs accumulate across the failed tries.
  EXPECT_GE(out.total_iterations, 150u);
}

TEST(Polyalgorithm, ApplicabilityHeuristicSkipsMethods) {
  auto suite = standard_method_suite();
  // Newton is gated to degree <= 8.
  Rng rng(11);
  WorkloadConfig cfg;
  cfg.degree = 16;
  cfg.clusters = 0;
  auto w = make_clustered_poly(rng, cfg);
  std::vector<PolyMethod> newton_first;
  newton_first.push_back(suite[4]);  // newton (inapplicable at deg 16)
  newton_first.push_back(suite[1]);  // laguerre
  auto out = run_polyalgorithm(w.poly, newton_first);
  ASSERT_TRUE(out.result.converged);
  EXPECT_EQ(out.method_used, "laguerre");
  EXPECT_EQ(out.methods_tried, 1);  // newton was skipped, not tried
}

TEST(Polyalgorithm, AllFailReportsFailure) {
  std::vector<PolyMethod> suite;
  suite.push_back({"never",
                   [](const Poly&) { return RootResult{}; }, nullptr});
  Poly p = Poly::from_roots(std::vector<Cx>{Cx(1, 0)});
  auto out = run_polyalgorithm(p, suite);
  EXPECT_FALSE(out.result.converged);
  EXPECT_EQ(out.result.note, "all methods failed");
}

TEST(Polyalgorithm, RotationsPutEachMethodFirst) {
  auto suite = standard_method_suite();
  auto rots = method_rotations(suite);
  ASSERT_EQ(rots.size(), suite.size());
  for (std::size_t k = 0; k < rots.size(); ++k) {
    EXPECT_EQ(rots[k][0].name, suite[k].name);
    EXPECT_EQ(rots[k].size(), suite.size());
  }
  // Every rotation contains every method exactly once.
  for (const auto& rot : rots) {
    std::set<std::string> names;
    for (const auto& m : rot) names.insert(m.name);
    EXPECT_EQ(names.size(), suite.size());
  }
}

}  // namespace
}  // namespace mw
