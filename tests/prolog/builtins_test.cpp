// Negation as failure (\+) and between/3.
#include <gtest/gtest.h>

#include "prolog/or_parallel.hpp"
#include "prolog/solver.hpp"

namespace mw::prolog {
namespace {

TEST(Builtins, NafGroundGoals) {
  Program p = Program::parse("likes(alice, tea). likes(bob, coffee).");
  Solver s(p);
  EXPECT_TRUE(s.solve("\\+ likes(alice, coffee)").success);
  EXPECT_FALSE(s.solve("\\+ likes(alice, tea)").success);
}

TEST(Builtins, NafParsesAsPrefix) {
  TermPtr t = parse_term("\\+ a = b");
  ASSERT_TRUE(t->is_functor("\\+", 1));
  EXPECT_TRUE(t->args[0]->is_functor("=", 2));
}

TEST(Builtins, NafWithBoundVariables) {
  Program p = Program::parse("edge(a, b). edge(b, c).");
  Solver s(p);
  // Sinks: nodes with no outgoing edge.
  SolveConfig cfg;
  cfg.max_solutions = 10;
  auto r = s.solve("edge(_, X), \\+ edge(X, _)", cfg);
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.solutions.size(), 1u);
  EXPECT_EQ(r.solutions[0].at("X"), "c");
}

TEST(Builtins, NafDoesNotBind) {
  Program p = Program::parse("q(1).");
  Solver s(p);
  // \+ fails on a satisfiable goal but must not leak bindings either way.
  auto r = s.solve("\\+ q(X), X = free");
  EXPECT_FALSE(r.success);  // q(X) is satisfiable -> naf fails
  auto r2 = s.solve("\\+ q(2), X = ok");
  ASSERT_TRUE(r2.success);
  EXPECT_EQ(r2.solutions[0].at("X"), "ok");
}

TEST(Builtins, NafNested) {
  Program p = Program::parse("a.");
  Solver s(p);
  EXPECT_TRUE(s.solve("\\+ \\+ a").success);
  EXPECT_FALSE(s.solve("\\+ \\+ \\+ a").success);
}

TEST(Builtins, NafCountsSubSearchInferences) {
  Program p = Program::parse("big(X) :- member(X, [1,2,3,4,5,6,7,8]).\n"
                             "member(X, [X|_]).\n"
                             "member(X, [_|T]) :- member(X, T).");
  Solver s(p);
  auto r = s.solve("\\+ big(99)");
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.inferences, 8u);  // the failed sub-search was paid for
}

TEST(Builtins, BetweenGenerates) {
  Program p = Program::parse("");
  Solver s(p);
  SolveConfig cfg;
  cfg.max_solutions = 100;
  auto r = s.solve("between(1, 5, X)", cfg);
  ASSERT_EQ(r.solutions.size(), 5u);
  EXPECT_EQ(r.solutions.front().at("X"), "1");
  EXPECT_EQ(r.solutions.back().at("X"), "5");
}

TEST(Builtins, BetweenTests) {
  Program p = Program::parse("");
  Solver s(p);
  EXPECT_TRUE(s.solve("between(1, 5, 3)").success);
  EXPECT_FALSE(s.solve("between(1, 5, 9)").success);
}

TEST(Builtins, BetweenEmptyRange) {
  Program p = Program::parse("");
  Solver s(p);
  EXPECT_FALSE(s.solve("between(5, 1, X)").success);
}

TEST(Builtins, BetweenWithArithmeticBounds) {
  Program p = Program::parse("");
  Solver s(p);
  SolveConfig cfg;
  cfg.max_solutions = 100;
  auto r = s.solve("N is 2 + 1, between(1, N, X), X mod 2 =:= 1", cfg);
  ASSERT_EQ(r.solutions.size(), 2u);  // 1 and 3
}

TEST(Builtins, BetweenAsGeneratorInRules) {
  Program p = Program::parse(
      "square(N, S) :- between(1, 10, N), S is N * N.");
  Solver s(p);
  SolveConfig cfg;
  cfg.max_solutions = 3;
  auto r = s.solve("square(N, S), S > 5", cfg);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions[0].at("N"), "3");
  EXPECT_EQ(r.solutions[0].at("S"), "9");
}

TEST(Builtins, PythagoreanTriplesViaBetween) {
  Program p = Program::parse(R"(
    triple(A, B, C) :-
      between(1, 20, A), between(1, 20, B), A =< B,
      S is A * A + B * B,
      between(1, 29, C), C * C =:= S.
  )");
  Solver s(p);
  SolveConfig cfg;
  cfg.max_solutions = 100;
  auto r = s.solve("triple(A, B, C)", cfg);
  ASSERT_TRUE(r.success);
  // (3,4,5) appears.
  bool has345 = false;
  for (const auto& sol : r.solutions)
    has345 |= sol.at("A") == "3" && sol.at("B") == "4" && sol.at("C") == "5";
  EXPECT_TRUE(has345);
}

TEST(Builtins, NafAndBetweenThroughOrParallel) {
  // The OR-parallel driver must defer these builtins to the leaf solver.
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = 2;
  cfg.cost = CostModel::free();
  cfg.page_size = 64;
  cfg.num_pages = 32;
  Runtime rt(cfg);
  Program p = Program::parse(R"(
    blocked(b).
    route(X) :- between(1, 3, X), \+ bad(X).
    bad(2).
    pick(X) :- route(X).
    pick(99).
  )");
  auto r = solve_or_parallel(rt, p, "pick(X)");
  ASSERT_TRUE(r.success);
  const std::string x = r.solution.at("X");
  EXPECT_TRUE(x == "1" || x == "3" || x == "99") << x;
}

}  // namespace
}  // namespace mw::prolog
