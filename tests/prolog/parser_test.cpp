#include <gtest/gtest.h>

#include "prolog/program.hpp"

namespace mw::prolog {
namespace {

TEST(Parser, ParsesFacts) {
  Program p = Program::parse("parent(tom, bob). parent(bob, ann).");
  ASSERT_EQ(p.clauses().size(), 2u);
  EXPECT_TRUE(p.clauses()[0].head->is_functor("parent", 2));
  EXPECT_TRUE(p.clauses()[0].body.empty());
}

TEST(Parser, ParsesRules) {
  Program p = Program::parse(
      "grandparent(X, Z) :- parent(X, Y), parent(Y, Z).");
  ASSERT_EQ(p.clauses().size(), 1u);
  EXPECT_EQ(p.clauses()[0].body.size(), 2u);
  EXPECT_TRUE(p.clauses()[0].head->is_functor("grandparent", 2));
}

TEST(Parser, ParsesAtomsVarsInts) {
  TermPtr t = parse_term("f(abc, X, 42, -7, _)");
  ASSERT_TRUE(t->is_functor("f", 5));
  EXPECT_EQ(t->args[0]->kind, Term::Kind::kAtom);
  EXPECT_EQ(t->args[1]->kind, Term::Kind::kVar);
  EXPECT_EQ(t->args[2]->value, 42);
  EXPECT_EQ(t->args[3]->value, -7);
  // Anonymous variables are made unique at parse time.
  EXPECT_EQ(t->args[4]->name.rfind("_G", 0), 0u);
}

TEST(Parser, ParsesLists) {
  TermPtr t = parse_term("[a, b, c]");
  EXPECT_EQ(to_string(t), "[a,b,c]");
  TermPtr open = parse_term("[H | T]");
  ASSERT_TRUE(open->is_functor(kCons, 2));
  EXPECT_EQ(to_string(open), "[H|T]");
  TermPtr nil = parse_term("[]");
  EXPECT_TRUE(nil->is_atom(kNil));
}

TEST(Parser, NestedLists) {
  TermPtr t = parse_term("[[1,2],[3]]");
  EXPECT_EQ(to_string(t), "[[1,2],[3]]");
}

TEST(Parser, ArithmeticPrecedence) {
  // 1 + 2 * 3 parses as +(1, *(2,3)).
  TermPtr t = parse_term("1 + 2 * 3");
  ASSERT_TRUE(t->is_functor("+", 2));
  EXPECT_TRUE(t->args[1]->is_functor("*", 2));
}

TEST(Parser, AdditiveIsLeftAssociative) {
  // 1 - 2 - 3 parses as -(-(1,2),3).
  TermPtr t = parse_term("1 - 2 - 3");
  ASSERT_TRUE(t->is_functor("-", 2));
  EXPECT_TRUE(t->args[0]->is_functor("-", 2));
  EXPECT_EQ(t->args[1]->value, 3);
}

TEST(Parser, ComparisonAndIs) {
  TermPtr t = parse_term("X is Y + 1");
  ASSERT_TRUE(t->is_functor("is", 2));
  TermPtr u = parse_term("X =< 3");
  EXPECT_TRUE(u->is_functor("=<", 2));
  TermPtr v = parse_term("X \\= Y");
  EXPECT_TRUE(v->is_functor("\\=", 2));
}

TEST(Parser, ParenthesesOverridePrecedence) {
  TermPtr t = parse_term("(1 + 2) * 3");
  ASSERT_TRUE(t->is_functor("*", 2));
  EXPECT_TRUE(t->args[0]->is_functor("+", 2));
}

TEST(Parser, CommentsSkipped) {
  Program p = Program::parse("% a comment\nfoo(a). % trailing\nbar(b).");
  EXPECT_EQ(p.clauses().size(), 2u);
}

TEST(Parser, QueryConjunction) {
  auto goals = parse_query("parent(X, Y), parent(Y, Z)");
  EXPECT_EQ(goals.size(), 2u);
}

TEST(Parser, CandidatesIndexByFunctorArity) {
  Program p = Program::parse(
      "f(a). f(b). g(c). f(x, y).");
  EXPECT_EQ(p.candidates(parse_term("f(Q)")).size(), 2u);
  EXPECT_EQ(p.candidates(parse_term("f(Q, R)")).size(), 1u);
  EXPECT_EQ(p.candidates(parse_term("g(Q)")).size(), 1u);
  EXPECT_EQ(p.candidates(parse_term("missing(Q)")).size(), 0u);
}

TEST(Term, RenameVarsAddsSuffixEverywhere) {
  TermPtr t = parse_term("f(X, g(Y, X))");
  TermPtr r = rename_vars(t, 7);
  EXPECT_EQ(r->args[0]->name, "X~7");
  EXPECT_EQ(r->args[1]->args[0]->name, "Y~7");
  EXPECT_EQ(r->args[1]->args[1]->name, "X~7");
}

TEST(Term, ToStringStripsRenameSuffix) {
  EXPECT_EQ(to_string(mk_var("X~3")), "X");
}

TEST(Term, EqualIsStructural) {
  EXPECT_TRUE(equal(parse_term("f(a,[1,2])"), parse_term("f(a,[1,2])")));
  EXPECT_FALSE(equal(parse_term("f(a)"), parse_term("f(b)")));
  EXPECT_FALSE(equal(parse_term("f(a)"), parse_term("g(a)")));
}

TEST(Term, MkListBuildsConsChain) {
  TermPtr l = mk_list({mk_int(1), mk_int(2)});
  EXPECT_EQ(to_string(l), "[1,2]");
  TermPtr open = mk_list({mk_int(1)}, mk_var("T"));
  EXPECT_EQ(to_string(open), "[1|T]");
}

}  // namespace
}  // namespace mw::prolog
