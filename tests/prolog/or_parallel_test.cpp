#include "prolog/or_parallel.hpp"

#include <gtest/gtest.h>

namespace mw::prolog {
namespace {

RuntimeConfig virtual_config(std::size_t processors = 4) {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = processors;
  cfg.cost = CostModel::free();
  cfg.page_size = 64;
  cfg.num_pages = 32;
  return cfg;
}

const char* kFamily = R"(
parent(tom, bob).
parent(tom, liz).
parent(bob, ann).
parent(bob, pat).
grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
)";

TEST(OrParallel, SolvesSimpleQuery) {
  Runtime rt(virtual_config());
  Program p = Program::parse(kFamily);
  auto r = solve_or_parallel(rt, p, "parent(tom, X)");
  ASSERT_TRUE(r.success);
  // Committed choice: some valid child of tom.
  EXPECT_TRUE(r.solution.at("X") == "bob" || r.solution.at("X") == "liz");
  EXPECT_GE(r.worlds_spawned, 2u);
}

TEST(OrParallel, AgreesWithSequentialOnDeterministicQuery) {
  Runtime rt(virtual_config());
  Program p = Program::parse(kFamily);
  auto r = solve_or_parallel(rt, p, "grandparent(tom, ann)");
  EXPECT_TRUE(r.success);
}

TEST(OrParallel, FailsWhenNoSolution) {
  Runtime rt(virtual_config());
  Program p = Program::parse(kFamily);
  auto r = solve_or_parallel(rt, p, "parent(ann, X)");
  EXPECT_FALSE(r.success);
}

TEST(OrParallel, GroundQueryNoVariables) {
  Runtime rt(virtual_config());
  Program p = Program::parse(kFamily);
  auto r = solve_or_parallel(rt, p, "parent(tom, bob)");
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.solution.empty());
}

TEST(OrParallel, SolutionIsAValidSequentialSolution) {
  // Whatever branch wins, the binding must be one the sequential engine
  // also derives — speculation must not invent answers.
  Runtime rt(virtual_config());
  Program p = Program::parse(kFamily);
  auto r = solve_or_parallel(rt, p, "parent(bob, X)");
  ASSERT_TRUE(r.success);
  Solver seq(p);
  SolveConfig cfg;
  cfg.max_solutions = 100;
  auto all = seq.solve("parent(bob, X)", cfg);
  bool found = false;
  for (const auto& sol : all.solutions)
    found |= sol.at("X") == r.solution.at("X");
  EXPECT_TRUE(found);
}

TEST(OrParallel, BranchWithFastSolutionWins) {
  // Clause order puts the losing branch (an expensive search) first; the
  // second branch solves immediately. Committed choice picks the fast one.
  const char* prog = R"(
    slowpath(X) :- chain(X).
    chain(X) :- c1(X).
    c1(X) :- c2(X).
    c2(X) :- c3(X).
    c3(X) :- c4(X).
    c4(X) :- c5(X).
    c5(X) :- c6(X).
    c6(X) :- c7(X).
    c7(hard).
    pick(X) :- slowpath(X).
    pick(easy).
  )";
  Runtime rt(virtual_config(2));
  Program p = Program::parse(prog);
  auto r = solve_or_parallel(rt, p, "pick(X)");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solution.at("X"), "easy");
}

TEST(OrParallel, SpeculationBeatsSequentialWhenFirstClauseIsDead) {
  // The sequential engine must exhaust the huge dead branch before the
  // second clause; the OR-parallel engine explores both at once.
  const char* prog = R"(
    n(z).
    n(s(X)) :- n(X).
    deep(X) :- n(X), fail_at(X).
    fail_at(nothing_matches).
    answer(X) :- deep(X).
    answer(found).
  )";
  Runtime rt(virtual_config(2));
  Program p = Program::parse(prog);
  OrParallelConfig cfg;
  cfg.max_inferences = 3000;  // bounds the dead branch
  auto r = solve_or_parallel(rt, p, "answer(X)", cfg);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solution.at("X"), "found");
  // Response time beats the sequential first-solution cost.
  EXPECT_LT(r.elapsed,
            static_cast<VDuration>(r.sequential_inferences) *
                cfg.ticks_per_inference);
  // Throughput price: total work exceeds the winner's work.
  EXPECT_GT(r.total_inferences, 10u);
}

TEST(OrParallel, DeterministicReplay) {
  Program p = Program::parse(kFamily);
  auto run = [&] {
    Runtime rt(virtual_config());
    return solve_or_parallel(rt, p, "grandparent(tom, X)");
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.solution, b.solution);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.total_inferences, b.total_inferences);
}

TEST(OrParallel, SpawnDepthControlsWorldCount) {
  const char* prog = R"(
    a(1). a(2).
    b(1). b(2).
    q(X, Y) :- a(X), b(Y).
  )";
  Program p = Program::parse(prog);
  OrParallelConfig shallow;
  shallow.spawn_depth = 1;
  OrParallelConfig deep;
  deep.spawn_depth = 3;
  Runtime rt1(virtual_config());
  auto r1 = solve_or_parallel(rt1, p, "q(X, Y)", shallow);
  Runtime rt2(virtual_config());
  auto r2 = solve_or_parallel(rt2, p, "q(X, Y)", deep);
  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(r2.success);
  EXPECT_GE(r2.worlds_spawned, r1.worlds_spawned);
}

TEST(OrParallel, ArithmeticThroughSpeculation) {
  const char* prog = R"(
    way(X) :- X is 10 + 5.
    way(X) :- X is 3 * 5.
  )";
  Runtime rt(virtual_config());
  Program p = Program::parse(prog);
  auto r = solve_or_parallel(rt, p, "way(V)");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solution.at("V"), "15");  // both branches agree here
}

TEST(OrParallel, ListAnswersSerializeCorrectly) {
  const char* prog = R"(
    build([1,2,3]).
    build([4,5]).
  )";
  Runtime rt(virtual_config());
  Program p = Program::parse(prog);
  auto r = solve_or_parallel(rt, p, "build(L)");
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(r.solution.at("L") == "[1,2,3]" || r.solution.at("L") == "[4,5]");
}

}  // namespace
}  // namespace mw::prolog
