#include "prolog/solver.hpp"

#include <gtest/gtest.h>

namespace mw::prolog {
namespace {

const char* kFamily = R"(
parent(tom, bob).
parent(tom, liz).
parent(bob, ann).
parent(bob, pat).
parent(pat, jim).
grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
)";

const char* kLists = R"(
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.
)";

TEST(Solver, GroundFactSucceeds) {
  Program p = Program::parse(kFamily);
  Solver s(p);
  EXPECT_TRUE(s.solve("parent(tom, bob)").success);
  EXPECT_FALSE(s.solve("parent(bob, tom)").success);
}

TEST(Solver, BindsQueryVariables) {
  Program p = Program::parse(kFamily);
  Solver s(p);
  auto r = s.solve("parent(tom, X)");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions[0].at("X"), "bob");  // first clause order
}

TEST(Solver, EnumeratesAllSolutions) {
  Program p = Program::parse(kFamily);
  Solver s(p);
  SolveConfig cfg;
  cfg.max_solutions = 100;
  auto r = s.solve("parent(bob, X)", cfg);
  ASSERT_EQ(r.solutions.size(), 2u);
  EXPECT_EQ(r.solutions[0].at("X"), "ann");
  EXPECT_EQ(r.solutions[1].at("X"), "pat");
}

TEST(Solver, ConjunctionAndRules) {
  Program p = Program::parse(kFamily);
  Solver s(p);
  auto r = s.solve("grandparent(tom, X)");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions[0].at("X"), "ann");
}

TEST(Solver, RecursiveRules) {
  Program p = Program::parse(kFamily);
  Solver s(p);
  SolveConfig cfg;
  cfg.max_solutions = 100;
  auto r = s.solve("ancestor(tom, X)", cfg);
  // tom's descendants: bob, liz, ann, pat, jim.
  EXPECT_EQ(r.solutions.size(), 5u);
}

TEST(Solver, AppendForward) {
  Program p = Program::parse(kLists);
  Solver s(p);
  auto r = s.solve("append([1,2], [3], X)");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions[0].at("X"), "[1,2,3]");
}

TEST(Solver, AppendBackwardEnumeratesSplits) {
  Program p = Program::parse(kLists);
  Solver s(p);
  SolveConfig cfg;
  cfg.max_solutions = 10;
  auto r = s.solve("append(A, B, [1,2,3])", cfg);
  ASSERT_EQ(r.solutions.size(), 4u);
  EXPECT_EQ(r.solutions[0].at("A"), "[]");
  EXPECT_EQ(r.solutions[3].at("B"), "[]");
}

TEST(Solver, MemberChecksAndEnumerates) {
  Program p = Program::parse(kLists);
  Solver s(p);
  EXPECT_TRUE(s.solve("member(2, [1,2,3])").success);
  EXPECT_FALSE(s.solve("member(9, [1,2,3])").success);
}

TEST(Solver, ArithmeticWithIs) {
  Program p = Program::parse(kLists);
  Solver s(p);
  auto r = s.solve("len([a,b,c], N)");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions[0].at("N"), "3");
}

TEST(Solver, ArithmeticExpressions) {
  Program p = Program::parse("");
  Solver s(p);
  auto r = s.solve("X is 2 + 3 * 4, X > 10, X =< 14");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions[0].at("X"), "14");
  EXPECT_FALSE(s.solve("X is 5, X < 5").success);
}

TEST(Solver, ModAndIntegerDivision) {
  Program p = Program::parse("");
  Solver s(p);
  auto r = s.solve("X is 17 mod 5, Y is 17 // 5");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions[0].at("X"), "2");
  EXPECT_EQ(r.solutions[0].at("Y"), "3");
}

TEST(Solver, NotUnifiable) {
  Program p = Program::parse("");
  Solver s(p);
  EXPECT_TRUE(s.solve("a \\= b").success);
  EXPECT_FALSE(s.solve("a \\= a").success);
  // A free variable can unify with anything: \= fails.
  EXPECT_FALSE(s.solve("X \\= b").success);
}

TEST(Solver, UnificationBuiltin) {
  Program p = Program::parse("");
  Solver s(p);
  auto r = s.solve("X = f(Y), Y = 3");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions[0].at("X"), "f(3)");
}

TEST(Solver, TrueAndFail) {
  Program p = Program::parse("");
  Solver s(p);
  EXPECT_TRUE(s.solve("true").success);
  EXPECT_FALSE(s.solve("fail").success);
}

TEST(Solver, InferenceBudgetStopsRunaway) {
  Program p = Program::parse("loop :- loop.");
  Solver s(p);
  SolveConfig cfg;
  cfg.max_inferences = 1000;
  auto r = s.solve("loop", cfg);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_LE(r.inferences, 1001u);
}

TEST(Solver, InferencesCounted) {
  Program p = Program::parse(kFamily);
  Solver s(p);
  auto r = s.solve("grandparent(tom, ann)");
  EXPECT_TRUE(r.success);
  EXPECT_GT(r.inferences, 2u);
}

TEST(Solver, OnInferenceHookFires) {
  Program p = Program::parse(kFamily);
  Solver s(p);
  std::uint64_t count = 0;
  s.on_inference = [&] { ++count; };
  auto r = s.solve("parent(tom, X)");
  EXPECT_EQ(count, r.inferences);
}

TEST(Solver, RestrictFirstChoiceCommitsToClause) {
  Program p = Program::parse(kFamily);
  // Clause 1 is parent(tom, liz).
  Solver s(p);
  s.restrict_first_choice(1);
  auto r = s.solve("parent(tom, X)");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions[0].at("X"), "liz");
  // The restriction is consumed: a second solve is unrestricted.
  auto r2 = s.solve("parent(tom, X)");
  EXPECT_EQ(r2.solutions[0].at("X"), "bob");
}

TEST(Solver, RestrictToNonMatchingClauseFails) {
  Program p = Program::parse(kFamily);
  Solver s(p);
  s.restrict_first_choice(2);  // parent(bob, ann): head mismatch for tom
  EXPECT_FALSE(s.solve("parent(tom, X)").success);
}

TEST(Solver, SharedVariablesAcrossGoals) {
  Program p = Program::parse(kFamily);
  Solver s(p);
  SolveConfig cfg;
  cfg.max_solutions = 10;
  // X must be both a child of tom and a parent: only bob qualifies.
  auto r = s.solve("parent(tom, X), parent(X, Y)", cfg);
  ASSERT_TRUE(r.success);
  for (const auto& sol : r.solutions) EXPECT_EQ(sol.at("X"), "bob");
}

TEST(Solver, NQueens4HasSolutions) {
  // Classic 4-queens via permutation + safety check.
  Program p = Program::parse(R"(
    select(X, [X|T], T).
    select(X, [H|T], [H|R]) :- select(X, T, R).
    perm([], []).
    perm(L, [H|T]) :- select(H, L, R), perm(R, T).
    safe([]).
    safe([Q|Qs]) :- safe(Qs, Q, 1), safe(Qs).
    safe([], _, _).
    safe([Q|Qs], Q0, D) :-
      Q =\= Q0 + D, Q =\= Q0 - D, D1 is D + 1, safe(Qs, Q0, D1).
    queens(Qs) :- perm([1,2,3,4], Qs), safe(Qs).
  )");
  Solver s(p);
  SolveConfig cfg;
  cfg.max_solutions = 10;
  auto r = s.solve("queens(Qs)", cfg);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions.size(), 2u);  // 4-queens has exactly 2 solutions
  EXPECT_EQ(r.solutions[0].at("Qs"), "[2,4,1,3]");
  EXPECT_EQ(r.solutions[1].at("Qs"), "[3,1,4,2]");
}

}  // namespace
}  // namespace mw::prolog
