// Classic Prolog programs exercising the engine end to end.
#include <gtest/gtest.h>

#include "prolog/solver.hpp"

namespace mw::prolog {
namespace {

TEST(Programs, MapColoringWithDisequality) {
  // Color a 4-region map (triangle + appendix) with 3 colors.
  Program p = Program::parse(R"(
    color(red). color(green). color(blue).
    map(A, B, C, D) :-
      color(A), color(B), color(C), color(D),
      A \= B, A \= C, B \= C, C \= D.
  )");
  Solver s(p);
  auto r = s.solve("map(A, B, C, D)");
  ASSERT_TRUE(r.success);
  const auto& sol = r.solutions[0];
  EXPECT_NE(sol.at("A"), sol.at("B"));
  EXPECT_NE(sol.at("A"), sol.at("C"));
  EXPECT_NE(sol.at("B"), sol.at("C"));
  EXPECT_NE(sol.at("C"), sol.at("D"));
}

TEST(Programs, MapColoringCountsAllSolutions) {
  Program p = Program::parse(R"(
    color(red). color(green). color(blue).
    tri(A, B, C) :- color(A), color(B), color(C), A \= B, A \= C, B \= C.
  )");
  Solver s(p);
  SolveConfig cfg;
  cfg.max_solutions = 100;
  auto r = s.solve("tri(A, B, C)", cfg);
  EXPECT_EQ(r.solutions.size(), 6u);  // 3! colorings of a triangle
}

TEST(Programs, NaiveReverse) {
  Program p = Program::parse(R"(
    append([], L, L).
    append([H|T], L, [H|R]) :- append(T, L, R).
    nrev([], []).
    nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
  )");
  Solver s(p);
  auto r = s.solve("nrev([1,2,3,4,5], R)");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions[0].at("R"), "[5,4,3,2,1]");
  // nrev of an n-list costs O(n^2) inferences — the classic LIPS workload.
  EXPECT_GT(r.inferences, 15u);
}

TEST(Programs, FactorialViaArithmetic) {
  Program p = Program::parse(R"(
    fact(0, 1).
    fact(N, F) :- N > 0, M is N - 1, fact(M, G), F is N * G.
  )");
  Solver s(p);
  auto r = s.solve("fact(10, F)");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions[0].at("F"), "3628800");
}

// The solver's continuation-passing recursion keeps every pending goal on
// the C++ stack, so naive fib's proof tree goes a few thousand frames deep.
// That fits comfortably in normal builds, but ASan's instrumented frames
// are several times larger and fib(15) overflows the default stack — shrink
// the argument there (same code paths, shallower tree).
#if defined(__SANITIZE_ADDRESS__)
#define MW_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MW_TEST_ASAN 1
#endif
#endif

TEST(Programs, FibonacciNaive) {
  Program p = Program::parse(R"(
    fib(0, 0).
    fib(1, 1).
    fib(N, F) :- N > 1, A is N - 1, B is N - 2,
                 fib(A, FA), fib(B, FB), F is FA + FB.
  )");
  Solver s(p);
#ifdef MW_TEST_ASAN
  auto r = s.solve("fib(11, F)");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions[0].at("F"), "89");
#else
  auto r = s.solve("fib(15, F)");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions[0].at("F"), "610");
#endif
}

TEST(Programs, GcdEuclid) {
  Program p = Program::parse(R"(
    gcd(A, 0, A).
    gcd(A, B, G) :- B > 0, R is A mod B, gcd(B, R, G).
  )");
  Solver s(p);
  auto r = s.solve("gcd(252, 105, G)");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions[0].at("G"), "21");
}

TEST(Programs, ListLengthBothDirections) {
  Program p = Program::parse(R"(
    len([], 0).
    len([_|T], N) :- len(T, M), N is M + 1.
  )");
  Solver s(p);
  auto r = s.solve("len([a,b,c,d], N)");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions[0].at("N"), "4");
}

TEST(Programs, GraphReachability) {
  Program p = Program::parse(R"(
    edge(a, b). edge(b, c). edge(c, d). edge(a, e).
    path(X, X).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )");
  Solver s(p);
  EXPECT_TRUE(s.solve("path(a, d)").success);
  EXPECT_TRUE(s.solve("path(a, e)").success);
  EXPECT_FALSE(s.solve("path(e, a)").success);
}

TEST(Programs, ZebraStyleConstraintSlice) {
  // A small constraint puzzle: three houses, three owners, the dog owner
  // lives next to the red house (positions encoded as integers).
  Program p = Program::parse(R"(
    pos(1). pos(2). pos(3).
    distinct(A, B, C) :- A \= B, A \= C, B \= C.
    nextto(X, Y) :- D is X - Y, D =:= 1.
    nextto(X, Y) :- D is Y - X, D =:= 1.
    puzzle(Red, Dog) :-
      pos(Red), pos(Green), pos(Blue), distinct(Red, Green, Blue),
      pos(Dog), nextto(Dog, Red), Dog \= Red.
  )");
  Solver s(p);
  SolveConfig cfg;
  cfg.max_solutions = 50;
  auto r = s.solve("puzzle(Red, Dog)", cfg);
  ASSERT_TRUE(r.success);
  for (const auto& sol : r.solutions) {
    const int red = std::stoi(sol.at("Red"));
    const int dog = std::stoi(sol.at("Dog"));
    EXPECT_EQ(std::abs(red - dog), 1);
  }
}

TEST(Programs, MutualRecursionEvenOdd) {
  Program p = Program::parse(R"(
    even(0).
    even(N) :- N > 0, M is N - 1, odd(M).
    odd(N) :- N > 0, M is N - 1, even(M).
  )");
  Solver s(p);
  EXPECT_TRUE(s.solve("even(10)").success);
  EXPECT_TRUE(s.solve("odd(7)").success);
  EXPECT_FALSE(s.solve("even(7)").success);
}

}  // namespace
}  // namespace mw::prolog
