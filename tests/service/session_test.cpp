#include "service/session.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

TEST(SessionTable, FreshSequencesExecuteInOrder) {
  SessionTable t;
  EXPECT_EQ(t.begin(7, 1), SessionVerdict::kExecute);
  EffectLog log;
  EXPECT_TRUE(t.commit(7, 1, SvcStatus::kOk, 11, log));
  EXPECT_EQ(t.begin(7, 2), SessionVerdict::kExecute);
  EXPECT_TRUE(t.commit(7, 2, SvcStatus::kOk, 22, log));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.duplicates(), 0u);
}

TEST(SessionTable, DuplicateOfCommittedSeqReplaysWithoutReexecution) {
  SessionTable t;
  EffectLog log;
  t.begin(7, 1);
  t.commit(7, 1, SvcStatus::kOk, 42, log);
  // The same request arrives again (client retry or net.dup): the verdict
  // is replay, the cached response carries the original value, and the
  // effect log does not grow.
  EXPECT_EQ(t.begin(7, 1), SessionVerdict::kReplay);
  const SessionTable::Session* s = t.find(7);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->status, SvcStatus::kOk);
  EXPECT_EQ(s->value, 42u);
  EXPECT_EQ(t.replays(), 1u);
  EXPECT_EQ(log.size(), 1u);
}

TEST(SessionTable, ConcurrentDuplicateIsDropped) {
  SessionTable t;
  t.begin(7, 1);  // in flight, not yet committed
  EXPECT_EQ(t.begin(7, 1), SessionVerdict::kInFlight);
  EXPECT_EQ(t.peek(7, 1), SessionVerdict::kInFlight);
}

TEST(SessionTable, StaleSequenceIsRefused) {
  SessionTable t;
  EffectLog log;
  t.begin(7, 5);
  t.commit(7, 5, SvcStatus::kOk, 1, log);
  EXPECT_EQ(t.begin(7, 3), SessionVerdict::kStale);
}

TEST(SessionTable, DoubleCommitAdmitsTheEffectOnce) {
  SessionTable t;
  EffectLog log;
  t.begin(7, 1);
  EXPECT_TRUE(t.commit(7, 1, SvcStatus::kOk, 42, log));
  // A hedged race can produce two winners internally; the second commit of
  // the same (client, seq) must be ledger-suppressed.
  EXPECT_FALSE(t.commit(7, 1, SvcStatus::kOk, 42, log));
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(t.effects_admitted(), 1u);
  EXPECT_EQ(t.effects_suppressed(), 1u);
}

TEST(SessionTable, FailedCommitsCacheTheResponseButNoEffect) {
  SessionTable t;
  EffectLog log;
  t.begin(7, 1);
  EXPECT_FALSE(t.commit(7, 1, SvcStatus::kFailed, 0, log));
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(t.begin(7, 1), SessionVerdict::kReplay);
  EXPECT_EQ(t.find(7)->status, SvcStatus::kFailed);
}

TEST(SessionTable, SnapshotRoundTripsEverySession) {
  SessionTable t;
  EffectLog log;
  for (NodeId c = 1; c <= 5; ++c) {
    t.begin(c, 1);
    t.commit(c, 1, SvcStatus::kOk, c * 10, log);
  }
  const Bytes image = t.snapshot();
  SessionTable u;
  ASSERT_TRUE(u.restore(image));
  EXPECT_EQ(u.size(), 5u);
  for (NodeId c = 1; c <= 5; ++c) {
    EXPECT_EQ(u.begin(c, 1), SessionVerdict::kReplay);
    EXPECT_EQ(u.find(c)->value, c * 10);
    EXPECT_EQ(u.begin(c, 2), SessionVerdict::kExecute);
  }
}

TEST(SessionTable, RestoreRejectsCorruptImages) {
  SessionTable t;
  EffectLog log;
  t.begin(1, 1);
  t.commit(1, 1, SvcStatus::kOk, 1, log);
  Bytes image = t.snapshot();
  SessionTable u;
  EXPECT_FALSE(u.restore(Bytes{}));
  Bytes truncated(image.begin(), image.end() - 4);
  EXPECT_FALSE(u.restore(truncated));
  Bytes magic = image;
  magic[0] ^= 0xff;
  EXPECT_FALSE(u.restore(magic));
  // A failed restore must leave prior state intact.
  ASSERT_TRUE(u.restore(image));
  EXPECT_EQ(u.size(), 1u);
}

TEST(SessionTable, InFlightAtSnapshotReexecutesAfterRestore) {
  SessionTable t;
  t.begin(7, 3);  // crash happens before this commits
  const Bytes image = t.snapshot();
  SessionTable u;
  ASSERT_TRUE(u.restore(image));
  // The effect never reached the log, so the client's retry may execute
  // again — that is at-most-once, not at-most-zero.
  EXPECT_EQ(u.begin(7, 3), SessionVerdict::kExecute);
}

TEST(SessionTable, ReconcileRedoesCommitsNewerThanTheImage) {
  // Snapshot, then commit twice more (one new client, one new seq), then
  // "crash": the successor restores the stale image plus the full log.
  SessionTable t;
  EffectLog log;
  t.begin(1, 1);
  t.commit(1, 1, SvcStatus::kOk, 100, log);
  const Bytes image = t.snapshot();
  t.begin(1, 2);
  t.commit(1, 2, SvcStatus::kOk, 200, log);
  t.begin(2, 1);
  t.commit(2, 1, SvcStatus::kOk, 300, log);

  SessionTable u;
  ASSERT_TRUE(u.restore(image));
  EXPECT_EQ(u.reconcile(log), 2u);  // the two post-snapshot commits
  // Without reconcile these would re-execute and duplicate the effect;
  // with it they replay from cache.
  EXPECT_EQ(u.begin(1, 2), SessionVerdict::kReplay);
  EXPECT_EQ(u.find(1)->value, 200u);
  EXPECT_EQ(u.begin(2, 1), SessionVerdict::kReplay);
  EXPECT_EQ(u.find(2)->value, 300u);
  // And a genuinely new request still executes.
  EXPECT_EQ(u.begin(1, 3), SessionVerdict::kExecute);
}

TEST(SessionTable, LedgerExactAfterRestoreAndReconcile) {
  // The ISSUE's satellite: duplicated requests (net.dup shape) around a
  // restart must leave the ledger exact — one admission per (client, seq),
  // replays suppressed, no duplicate in the external log.
  SessionTable t;
  EffectLog log;
  t.begin(9, 1);
  t.commit(9, 1, SvcStatus::kOk, 10, log);
  t.commit(9, 1, SvcStatus::kOk, 10, log);  // duplicate commit, suppressed
  const Bytes image = t.snapshot();
  t.begin(9, 2);
  t.commit(9, 2, SvcStatus::kOk, 20, log);

  SessionTable u;
  ASSERT_TRUE(u.restore(image));
  u.reconcile(log);
  // Replayed duplicates after restart: no new effects.
  EXPECT_EQ(u.begin(9, 1), SessionVerdict::kStale);
  EXPECT_EQ(u.begin(9, 2), SessionVerdict::kReplay);
  EXPECT_EQ(u.begin(9, 2), SessionVerdict::kReplay);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.duplicates(), 0u);
  // A third call executes and admits exactly once.
  EXPECT_EQ(u.begin(9, 3), SessionVerdict::kExecute);
  EXPECT_TRUE(u.commit(9, 3, SvcStatus::kOk, 30, log));
  EXPECT_FALSE(u.commit(9, 3, SvcStatus::kOk, 30, log));
  EXPECT_EQ(log.duplicates(), 0u);
}

TEST(SessionTable, SnapshotClientsFiltersAndEraseClientsDrops) {
  SessionTable t;
  EffectLog log;
  for (NodeId c : {NodeId(200), NodeId(201), NodeId(202)}) {
    t.begin(c, 1);
    t.commit(c, 1, SvcStatus::kOk, c * 10, log);
  }
  const auto is_201 = [](NodeId c) { return c == 201; };
  SessionTable u;
  ASSERT_TRUE(u.restore(t.snapshot_clients(is_201)));
  EXPECT_EQ(u.size(), 1u);
  ASSERT_NE(u.find(201), nullptr);
  EXPECT_EQ(u.find(201)->value, 2010u);
  EXPECT_EQ(u.find(200), nullptr);
  EXPECT_EQ(t.erase_clients(is_201), 1u);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.find(201), nullptr);
}

TEST(SessionTable, AbsorbIsIdempotentAndTheNewerSideWins) {
  SessionTable old_owner;
  EffectLog log;
  old_owner.begin(7, 1);
  old_owner.commit(7, 1, SvcStatus::kOk, 10, log);
  const Bytes stale = old_owner.snapshot();  // 7 at seq 1
  old_owner.begin(7, 2);
  old_owner.commit(7, 2, SvcStatus::kOk, 20, log);
  const Bytes fresh = old_owner.snapshot();  // 7 at seq 2

  SessionTable n;
  ASSERT_TRUE(n.absorb(fresh));
  EXPECT_EQ(n.peek(7, 2), SessionVerdict::kReplay);
  // A duplicated handoff frame (the retry loop's normal case) is a no-op,
  // and so is a stale one that raced a newer absorb.
  ASSERT_TRUE(n.absorb(fresh));
  ASSERT_TRUE(n.absorb(stale));
  EXPECT_EQ(n.peek(7, 2), SessionVerdict::kReplay);
  EXPECT_EQ(n.find(7)->value, 20u);
  // Unknown clients merge in without touching existing ones.
  SessionTable other;
  other.begin(8, 5);
  other.commit(8, 5, SvcStatus::kOk, 50, log);
  ASSERT_TRUE(n.absorb(other.snapshot()));
  EXPECT_EQ(n.size(), 2u);
  EXPECT_EQ(n.peek(8, 5), SessionVerdict::kReplay);
}

TEST(SessionTable, InFlightAtHandoffReplaysAfterReconcileAtTheNewOwner) {
  // The ISSUE's satellite edge case: the handoff snapshot is taken while
  // (7, 1) is still in flight at the old owner, whose commit then lands
  // before revocation does. The retry arriving at the new owner must
  // resolve to replay-after-reconcile — never a second execution.
  SessionTable old_owner;
  EffectLog log;
  EXPECT_EQ(old_owner.begin(7, 1), SessionVerdict::kExecute);
  const Bytes image =
      old_owner.snapshot_clients([](NodeId c) { return c == 7; });
  EXPECT_TRUE(old_owner.commit(7, 1, SvcStatus::kOk, 42, log));

  SessionTable new_owner;
  ASSERT_TRUE(new_owner.absorb(image));
  // The image alone would re-execute — that is the dangerous path the
  // log reconcile must close.
  EXPECT_EQ(new_owner.peek(7, 1), SessionVerdict::kExecute);
  EXPECT_EQ(new_owner.reconcile(log), 1u);
  EXPECT_EQ(new_owner.begin(7, 1), SessionVerdict::kReplay);
  ASSERT_NE(new_owner.find(7), nullptr);
  EXPECT_EQ(new_owner.find(7)->value, 42u);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.duplicates(), 0u);
}

TEST(EffectLedgerRestore, HighWaterCarriesAcrossRestore) {
  EffectLedger a;
  EXPECT_TRUE(a.admit(0));
  EXPECT_TRUE(a.admit(1));
  EXPECT_FALSE(a.admit(1));
  EffectLedger b;
  b.restore(a.high_water(), a.recorded(), a.suppressed());
  EXPECT_FALSE(b.admit(0));
  EXPECT_FALSE(b.admit(1));
  EXPECT_TRUE(b.admit(2));
  EXPECT_EQ(b.recorded(), 3u);
  EXPECT_EQ(b.suppressed(), 3u);
}

TEST(EffectLog, DuplicatesCountsRepeatedPairs) {
  EffectLog log;
  log.append({1, 1, 10});
  log.append({1, 2, 20});
  log.append({2, 1, 30});
  EXPECT_EQ(log.duplicates(), 0u);
  log.append({1, 1, 10});
  EXPECT_EQ(log.duplicates(), 1u);
}

}  // namespace
}  // namespace mw
