// Cluster-layer tests on the deterministic SimTransport: ring placement,
// handoff frames, and the safety rules (ownership, fencing, revocation,
// handoff + log reconciliation) end to end. The seeded chaos sweep lives
// in cluster_fault_matrix_test.cpp; the forked-process SIGKILL variant in
// cluster_socket_test.cpp.
#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "core/runtime_auditor.hpp"
#include "dist/sim_transport.hpp"
#include "service/cluster.hpp"
#include "util/des.hpp"

namespace mw {
namespace {

constexpr std::uint64_t kRingSeed = 7;
constexpr std::size_t kVnodes = 8;

LinkModel svc_link() {
  LinkModel l;
  l.latency = vt_us(500);
  l.per_message_overhead = vt_us(100);
  return l;
}

ClusterConfig cl_config(std::uint64_t svc_seed) {
  ClusterConfig c;
  c.seed = kRingSeed;  // identical on every node and on the router
  c.vnodes = kVnodes;
  c.beat_interval = vt_ms(5);
  c.peer_health = {.heartbeat_interval = vt_ms(5),
                   .suspect_after = vt_ms(15),
                   .dead_after = vt_ms(40)};
  c.handoff_retry = vt_ms(5);
  c.probation = vt_ms(20);
  c.service.service_mean = vt_ms(1);
  c.service.hedge_delay = vt_ms(2);
  c.service.seed = svc_seed;
  return c;
}

/// Retry budget generous enough to ride out an eviction (dead_after 40ms
/// plus a beat) while rotating through the preference list.
ClientConfig routed_client() {
  ClientConfig cc;
  cc.retry_after = vt_ms(10);
  cc.max_retries = 6;
  cc.deadline = vt_ms(50);
  return cc;
}

/// N backend-less ClusterNodes (IDs 100+) on one SimTransport, sharing one
/// in-process EffectLog (the sim stand-in for the durable cluster log), and
/// a ClusterRouter for clients 200+.
struct SimCluster {
  explicit SimCluster(std::size_t n, std::uint64_t seed = 1)
      : transport(queue, svc_link(), seed) {
    for (std::size_t i = 0; i < n; ++i) ids.push_back(NodeId(100 + i));
    for (std::size_t i = 0; i < n; ++i)
      nodes.push_back(std::make_unique<ClusterNode>(
          transport, ids[i], ids, effects, cl_config(seed + i)));
    router = std::make_unique<ClusterRouter>(ids, kRingSeed, kVnodes);
    transport.run_until(vt_ms(2));  // first beats
  }

  ServiceClient& client(NodeId node, ClientConfig cc = routed_client()) {
    clients.push_back(std::make_unique<ServiceClient>(transport, node, 0, cc));
    router->attach(*clients.back());
    return *clients.back();
  }

  ClusterNode& node(NodeId id) {
    for (auto& n : nodes)
      if (n->self() == id) return *n;
    ADD_FAILURE() << "no node " << id;
    return *nodes.front();
  }

  /// SIGKILL analogue: the node vanishes mid-run, no goodbye.
  void kill(NodeId id) {
    for (auto it = nodes.begin(); it != nodes.end(); ++it)
      if ((*it)->self() == id) {
        nodes.erase(it);
        return;
      }
  }

  /// Planned growth: construct the newcomer, then drive the same add on
  /// every incumbent and on the router (the operator's runbook step).
  void add_member(NodeId id, std::uint64_t svc_seed) {
    ids.push_back(id);
    for (auto& n : nodes) n->add_node(id);
    nodes.push_back(std::make_unique<ClusterNode>(transport, id, ids, effects,
                                                  cl_config(svc_seed)));
    router->add_node(id);
  }

  /// First candidate client ID >= 200 that `ring` assigns to `owner`.
  NodeId client_owned_by(const HashRing& ring, NodeId owner) {
    for (NodeId cand = 200; cand < 1200; ++cand)
      if (ring.owner_of(cand) == owner) return cand;
    return 0;
  }

  void run_for(VDuration d) { transport.run_until(transport.now() + d); }

  EventQueue queue;
  SimTransport transport;
  EffectLog effects;
  std::vector<NodeId> ids;
  std::vector<std::unique_ptr<ClusterNode>> nodes;
  std::unique_ptr<ClusterRouter> router;
  std::vector<std::unique_ptr<ServiceClient>> clients;
};

// ---------------------------------------------------------------------------
// HashRing units

TEST(HashRing, LayoutIsAPureFunctionOfSeedAndMembership) {
  HashRing a(42, 16), b(42, 16);
  a.add(1);
  a.add(2);
  a.add(3);
  b.add(3);  // different insertion order, same membership
  b.add(1);
  b.add(2);
  for (NodeId c = 0; c < 200; ++c) {
    EXPECT_EQ(a.owner_of(c), b.owner_of(c)) << "client " << c;
    EXPECT_EQ(a.preference(c), b.preference(c)) << "client " << c;
  }
  // A different seed is a different layout (for at least some clients).
  HashRing other(43, 16);
  other.add(1);
  other.add(2);
  other.add(3);
  std::size_t moved = 0;
  for (NodeId c = 0; c < 200; ++c)
    if (other.owner_of(c) != a.owner_of(c)) ++moved;
  EXPECT_GT(moved, 0u);
}

TEST(HashRing, RemovalOnlyMovesTheDepartedNodesClients) {
  HashRing r(kRingSeed, 32);
  for (NodeId n = 1; n <= 4; ++n) r.add(n);
  std::vector<NodeId> before;
  for (NodeId c = 0; c < 500; ++c) before.push_back(r.owner_of(c));
  ASSERT_TRUE(r.remove(3));
  std::size_t moved = 0;
  for (NodeId c = 0; c < 500; ++c) {
    const NodeId now = r.owner_of(c);
    if (before[c] == 3) {
      EXPECT_NE(now, 3u);
      ++moved;
    } else {
      // Consistent hashing's whole point: unrelated clients stay put.
      EXPECT_EQ(now, before[c]) << "client " << c;
    }
  }
  EXPECT_GT(moved, 0u);  // node 3 owned something, so something moved
}

TEST(HashRing, PreferenceListsEveryMemberOwnerFirst) {
  HashRing r(kRingSeed, kVnodes);
  r.add(100);
  r.add(101);
  r.add(102);
  for (NodeId c = 200; c < 232; ++c) {
    const std::vector<NodeId> pref = r.preference(c);
    ASSERT_EQ(pref.size(), 3u);
    EXPECT_EQ(pref[0], r.owner_of(c));
    EXPECT_NE(pref[0], pref[1]);
    EXPECT_NE(pref[1], pref[2]);
    EXPECT_NE(pref[0], pref[2]);
  }
  HashRing empty(kRingSeed, kVnodes);
  EXPECT_EQ(empty.owner_of(200), 0u);
  EXPECT_TRUE(empty.preference(200).empty());
}

// ---------------------------------------------------------------------------
// Handoff frames

TEST(ClusterProto, HandoffFramesRoundTrip) {
  SvcHandoff h;
  h.from = 101;
  h.epoch = 9;
  h.image = Bytes{1, 2, 3, 4, 5};
  auto h2 = decode_handoff(encode_handoff(h));
  ASSERT_TRUE(h2);
  EXPECT_EQ(h2->from, 101u);
  EXPECT_EQ(h2->epoch, 9u);
  EXPECT_EQ(h2->image, h.image);

  SvcHandoffAck a{101, 9};
  auto a2 = decode_handoff_ack(encode_handoff_ack(a));
  ASSERT_TRUE(a2);
  EXPECT_EQ(a2->from, 101u);
  EXPECT_EQ(a2->epoch, 9u);
}

TEST(ClusterProto, HandoffDecoderRejectsGarbage) {
  SvcHandoff h;
  h.from = 1;
  h.epoch = 1;
  h.image = Bytes{9, 9, 9};
  Bytes frame = encode_handoff(h);
  Bytes truncated(frame.begin(), frame.end() - 1);  // image cut short
  EXPECT_FALSE(decode_handoff(truncated));
  EXPECT_FALSE(decode_handoff_ack(frame));  // wrong tag
  EXPECT_FALSE(decode_handoff(encode_handoff_ack({1, 1})));
}

// ---------------------------------------------------------------------------
// FileEffectLog (in-process; the forked-process version is in the socket test)

TEST(FileEffectLog, SharedFileRoundTripsAcrossWriters) {
  const std::string path =
      testing::TempDir() + "mw_cluster_effectlog_unit.bin";
  ::unlink(path.c_str());
  {
    FileEffectLog a(path, 1);
    FileEffectLog b(path, 2);
    ASSERT_TRUE(a.valid());
    ASSERT_TRUE(b.valid());
    Effect e1;
    e1.client = 200;
    e1.seq = 1;
    e1.value = 42;
    a.append(e1);
    EXPECT_EQ(a.size(), 1u);  // own writes visible immediately
    EXPECT_EQ(b.refresh(), 1u);
    ASSERT_EQ(b.entries().size(), 1u);
    EXPECT_EQ(b.entries()[0].client, 200u);
    EXPECT_EQ(b.entries()[0].value, 42u);
    Effect e2;
    e2.client = 201;
    e2.seq = 1;
    e2.value = 9;
    b.append(e2);
    EXPECT_EQ(a.refresh(), 1u);
    EXPECT_EQ(a.refresh(), 0u);  // idempotent: nothing new
    EXPECT_EQ(a.size(), 2u);
  }
  // A latecomer folds in the whole history at construction.
  FileEffectLog late(path, 3);
  EXPECT_EQ(late.size(), 2u);
  const std::vector<Effect> all = FileEffectLog::read_all(path);
  ASSERT_EQ(all.size(), 2u);
  EffectLog combined;
  for (const Effect& e : all) combined.append(e);
  EXPECT_EQ(combined.duplicates(), 0u);
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// End-to-end on the sim

TEST(ClusterSim, ServesManyClientsExactlyOnceAcrossOwners) {
  SimCluster c(3);
  constexpr std::size_t kCallsEach = 5;
  std::vector<ServiceClient*> cls;
  for (NodeId id = 200; id < 206; ++id) {
    ServiceClient& cl = c.client(id);
    cl.on_complete = [&cl](const CallRecord&) {
      if (cl.records().size() < kCallsEach)
        cl.call(40 + cl.records().size(), cl.self());
    };
    cls.push_back(&cl);
    cl.call(40, id);
  }
  c.run_for(vt_ms(500));
  std::size_t total = 0;
  for (ServiceClient* cl : cls) {
    ASSERT_EQ(cl->records().size(), kCallsEach);
    for (const CallRecord& r : cl->records()) {
      EXPECT_TRUE(r.ok());
      EXPECT_EQ(r.value, service_reference(r.payload, r.work));
    }
    total += cl->records().size();
  }
  EXPECT_EQ(c.effects.size(), total);
  EXPECT_EQ(c.effects.duplicates(), 0u);
  // Router and nodes share one ring: with stable membership, nothing is
  // ever sent to a non-owner.
  for (auto& n : c.nodes) EXPECT_EQ(n->stats().misroutes, 0u);
}

TEST(ClusterSim, MisrouteIsShedAndRetriedAtTheOwnerWithTheSameSeq) {
  SimCluster c(3);
  ServiceClient& cl = c.client(200);
  // Sabotage the router: start one past the owner, so the first attempts
  // land on non-owners and only the rotation reaches the right node.
  cl.route = [&c](NodeId self, NodeId, std::size_t attempt) {
    const std::vector<NodeId> pref = c.router->ring().preference(self);
    return pref[(attempt + 1) % pref.size()];
  };
  cl.call(50, 200);
  c.run_for(vt_ms(100));
  ASSERT_EQ(cl.records().size(), 1u);
  const CallRecord& r = cl.records()[0];
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.value, service_reference(200, 50));
  EXPECT_GE(r.retries, 2u);  // two sheds before the rotation found the owner
  std::uint64_t misroutes = 0;
  for (auto& n : c.nodes) misroutes += n->stats().misroutes;
  EXPECT_GE(misroutes, 2u);
  EXPECT_EQ(c.effects.size(), 1u);  // the sheds never touched a session
  EXPECT_EQ(c.effects.duplicates(), 0u);
}

TEST(ClusterSim, NodeDeathEvictsAndCommittedWorkReplaysFromTheLog) {
  RuntimeAuditor auditor;
  {
    SimCluster c(3);
    const NodeId victim = c.ids[0];
    const NodeId cid = c.client_owned_by(c.router->ring(), victim);
    ASSERT_NE(cid, 0u);
    ServiceClient& cl = c.client(cid);
    cl.call(60, cid);
    c.run_for(vt_ms(50));
    ASSERT_EQ(cl.records().size(), 1u);
    ASSERT_TRUE(cl.records()[0].ok());
    const std::uint64_t seq = cl.records()[0].seq;

    c.kill(victim);
    c.run_for(vt_ms(150));  // dead_after + beat slack
    for (auto& n : c.nodes) {
      EXPECT_FALSE(n->ring().contains(victim));
      EXPECT_GE(n->stats().evictions, 1u);
    }
    const NodeId new_owner = c.nodes[0]->ring().owner_of(cid);
    ASSERT_NE(new_owner, victim);
    ASSERT_NE(new_owner, 0u);

    // A late duplicate of the seq the DEAD node committed arrives at the
    // new owner. The corpse never handed anything off — the shared log is
    // the only witness, and it must answer with a replay, not a re-run.
    SvcRequest dup;
    dup.client = cid;
    dup.seq = seq;
    dup.deadline = vt_ms(50);
    dup.work = 60;
    dup.payload = cid;
    const Bytes frame = encode_request(dup);
    c.transport.send(cid, new_owner,
                     std::span<const std::uint8_t>(frame.data(), frame.size()));
    c.run_for(vt_ms(20));
    EXPECT_EQ(c.node(new_owner).stats().log_replays, 1u);
    EXPECT_EQ(c.effects.size(), 1u);  // still exactly one effect

    // Fresh calls route around the corpse: silence at the old owner, then
    // the preference rotation lands on the survivor.
    cl.call(61, cid);
    c.run_for(vt_ms(200));
    ASSERT_EQ(cl.records().size(), 2u);
    EXPECT_TRUE(cl.records()[1].ok());
    EXPECT_EQ(cl.records()[1].value, service_reference(cid, 61));
    EXPECT_GE(cl.records()[1].retries, 1u);
    EXPECT_EQ(c.effects.size(), 2u);
    EXPECT_EQ(c.effects.duplicates(), 0u);
  }
  const ProcessTable empty;
  const AuditReport report = auditor.run(empty);
  EXPECT_EQ(report.leaked_pages, 0u)
      << "cluster teardown leaked runtime pages";
}

TEST(ClusterSim, PlannedGrowthHandsOffSessionsAndSettlesAcks) {
  SimCluster c(2);
  // Pick clients that will belong to the newcomer once it joins, so the
  // rebalance provably moves their sessions.
  HashRing after(kRingSeed, kVnodes);
  after.add(100);
  after.add(101);
  after.add(102);
  std::vector<NodeId> movers;
  for (NodeId cand = 200; movers.size() < 3 && cand < 1200; ++cand)
    if (after.owner_of(cand) == 102) movers.push_back(cand);
  ASSERT_EQ(movers.size(), 3u);

  std::vector<ServiceClient*> cls;
  for (NodeId m : movers) {
    ServiceClient& cl = c.client(m);
    cls.push_back(&cl);
    cl.call(40, m);
  }
  c.run_for(vt_ms(50));
  for (ServiceClient* cl : cls) {
    ASSERT_EQ(cl->records().size(), 1u);
    ASSERT_TRUE(cl->records()[0].ok());
  }

  c.add_member(102, 99);
  c.run_for(vt_ms(100));

  // The movers' sessions crossed: absorbed at 102, erased at the old
  // owners, and every handoff settled with an ack.
  EXPECT_GE(c.node(102).stats().handoffs_received, 1u);
  std::uint64_t sent = 0, acks = 0;
  for (auto& n : c.nodes) {
    sent += n->stats().handoffs_sent;
    acks += n->stats().handoff_acks;
  }
  EXPECT_GE(sent, 1u);
  EXPECT_EQ(acks, sent);
  for (NodeId m : movers) {
    EXPECT_NE(c.node(102).server().sessions().find(m), nullptr);
    EXPECT_EQ(c.node(100).server().sessions().find(m), nullptr);
    EXPECT_EQ(c.node(101).server().sessions().find(m), nullptr);
  }

  // Life after the move: the absorbed session admits the next seq at the
  // new owner, and the cluster-wide count stays exactly-once.
  for (ServiceClient* cl : cls) cl->call(41, cl->self());
  c.run_for(vt_ms(100));
  for (ServiceClient* cl : cls) {
    ASSERT_EQ(cl->records().size(), 2u);
    EXPECT_TRUE(cl->records()[1].ok());
    EXPECT_EQ(cl->records()[1].value, service_reference(cl->self(), 41));
  }
  EXPECT_GE(c.node(102).server().stats().ok, 3u);
  EXPECT_EQ(c.effects.size(), 6u);
  EXPECT_EQ(c.effects.duplicates(), 0u);
}

TEST(ClusterSim, MinorityPartitionFencesThenHealsWithProbation) {
  SimCluster c(3);
  const NodeId a = c.ids[0], b = c.ids[1], d = c.ids[2];
  const NodeId cid = c.client_owned_by(c.router->ring(), a);
  ASSERT_NE(cid, 0u);

  // Cut a off from both peers (node links only — clients still reach it).
  for (NodeId p : {b, d}) {
    c.transport.set_link_blocked(a, p, true);
    c.transport.set_link_blocked(p, a, true);
  }
  c.run_for(vt_ms(120));  // both sides pass dead_after and settle
  EXPECT_TRUE(c.node(a).fenced());
  EXPECT_FALSE(c.node(b).fenced());
  EXPECT_FALSE(c.node(d).fenced());
  EXPECT_EQ(c.node(b).ring().size(), 2u);

  // The fenced minority sheds its own client; the majority serves it.
  ServiceClient& cl = c.client(cid);
  cl.call(70, cid);
  c.run_for(vt_ms(100));
  ASSERT_EQ(cl.records().size(), 1u);
  EXPECT_TRUE(cl.records()[0].ok());
  EXPECT_EQ(cl.records()[0].value, service_reference(cid, 70));
  EXPECT_GE(c.node(a).stats().fence_sheds, 1u);
  EXPECT_EQ(c.effects.size(), 1u);

  // Heal. Both sides must wait out probation before the ring churns back,
  // then the survivor hands cid's session home to a.
  for (NodeId p : {b, d}) {
    c.transport.set_link_blocked(a, p, false);
    c.transport.set_link_blocked(p, a, false);
  }
  c.run_for(vt_ms(200));
  EXPECT_FALSE(c.node(a).fenced());
  for (auto& n : c.nodes) EXPECT_EQ(n->ring().size(), 3u);
  EXPECT_GE(c.node(b).stats().rejoins + c.node(d).stats().rejoins, 1u);
  EXPECT_NE(c.node(a).server().sessions().find(cid), nullptr);

  // And a now serves its client again, duplicate-free end to end.
  cl.call(71, cid);
  c.run_for(vt_ms(100));
  ASSERT_EQ(cl.records().size(), 2u);
  EXPECT_TRUE(cl.records()[1].ok());
  EXPECT_EQ(cl.records()[1].value, service_reference(cid, 71));
  EXPECT_GE(c.node(a).server().stats().ok, 1u);
  EXPECT_EQ(c.effects.size(), 2u);
  EXPECT_EQ(c.effects.duplicates(), 0u);
}

}  // namespace
}  // namespace mw
