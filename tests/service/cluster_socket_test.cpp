// The cluster over real UDP sockets and real processes: every ClusterNode
// is a forked child with its own SocketTransport and a FileEffectLog over
// one shared file; the node kill is a real SIGKILL. What the sim cannot
// prove — survival of kernel buffers, real clocks, actual process death,
// and cross-process durability of the effect log — is proved here. The
// cluster-wide exactly-once check reads the WHOLE file back
// (FileEffectLog::read_all) and asserts no duplicate (client, seq) pair.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dist/socket_transport.hpp"
#include "service/cluster.hpp"

namespace mw {
namespace {

constexpr std::uint64_t kRingSeed = 7;
constexpr std::size_t kVnodes = 8;

/// SIGKILL + reap every child on scope exit, so a failing assertion can't
/// leak processes into the test runner.
struct ChildReaper {
  std::vector<pid_t> pids;
  ~ChildReaper() {
    for (pid_t p : pids) {
      ::kill(p, SIGKILL);
      int status = 0;
      ::waitpid(p, &status, 0);
    }
  }
};

bool read_full(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n <= 0) return false;
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_full(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n <= 0) return false;
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

ClusterConfig socket_cluster_config(NodeId self) {
  ClusterConfig c;
  c.seed = kRingSeed;
  c.vnodes = kVnodes;
  c.beat_interval = vt_ms(10);
  c.peer_health = {.heartbeat_interval = vt_ms(10),
                   .suspect_after = vt_ms(60),
                   .dead_after = vt_ms(150)};
  c.handoff_retry = vt_ms(20);
  c.probation = vt_ms(100);
  c.service.seed = self;
  c.service.service_mean = vt_ms(1);
  c.service.hedge_delay = vt_ms(5);
  c.service.default_deadline = vt_ms(400);
  return c;
}

ClientConfig socket_client_config() {
  ClientConfig c;
  c.retry_after = vt_ms(50);
  c.max_retries = 8;
  c.deadline = vt_ms(400);
  return c;
}

/// Forked cluster-node body. Handshake: write our UDP port to the parent,
/// read back the full (id, port) table, then boot the ClusterNode over the
/// shared on-disk effect log and serve until killed (or a 30 s budget).
[[noreturn]] void cluster_node_process(NodeId self,
                                       const std::vector<NodeId>& members,
                                       int wr_port, int rd_table,
                                       const std::string& log_path) {
  SocketTransport transport(self);
  const std::uint16_t port = transport.port();
  if (!write_full(wr_port, &port, sizeof port)) ::_exit(1);
  ::close(wr_port);
  for (std::size_t i = 0; i < members.size(); ++i) {
    std::uint64_t id = 0;
    std::uint16_t p = 0;
    if (!read_full(rd_table, &id, sizeof id) ||
        !read_full(rd_table, &p, sizeof p))
      ::_exit(1);
    if (id != self) transport.add_peer(id, p);
  }
  ::close(rd_table);
  FileEffectLog effects(log_path, self);
  if (!effects.valid()) ::_exit(1);
  ClusterNode node(transport, self, members, effects,
                   socket_cluster_config(self));
  const VTime budget = transport.now() + vt_sec(30);
  while (transport.now() < budget)
    transport.run_until(transport.now() + vt_ms(2));
  ::_exit(0);
}

/// Drives the parent transport until `pred` holds or `budget_ms` of wall
/// time passes.
bool pump(SocketTransport& transport, const std::function<bool()>& pred,
          int budget_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    transport.run_until(transport.now() + vt_ms(2));
  }
  return true;
}

/// Forks one child per member, runs the port handshake, and seeds the
/// parent transport's peer table. Returns the children's pids in member
/// order (empty on failure).
std::vector<pid_t> spawn_cluster(const std::vector<NodeId>& members,
                                 const std::string& log_path,
                                 SocketTransport& parent) {
  std::vector<pid_t> pids;
  std::vector<std::uint16_t> ports(members.size(), 0);
  std::vector<int> table_wr;
  for (std::size_t i = 0; i < members.size(); ++i) {
    int up[2], down[2];  // child -> parent port; parent -> child table
    if (::pipe(up) != 0 || ::pipe(down) != 0) return {};
    const pid_t pid = ::fork();
    if (pid < 0) return {};
    if (pid == 0) {
      ::close(up[0]);
      ::close(down[1]);
      cluster_node_process(members[i], members, up[1], down[0], log_path);
    }
    ::close(up[1]);
    ::close(down[0]);
    if (!read_full(up[0], &ports[i], sizeof ports[i])) return {};
    ::close(up[0]);
    table_wr.push_back(down[1]);
    pids.push_back(pid);
  }
  for (int fd : table_wr) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      const std::uint64_t id = members[i];
      if (!write_full(fd, &id, sizeof id) ||
          !write_full(fd, &ports[i], sizeof ports[i]))
        return {};
    }
    ::close(fd);
  }
  for (std::size_t i = 0; i < members.size(); ++i)
    parent.add_peer(members[i], ports[i]);
  return pids;
}

TEST(ClusterSocket, RoutedClientsComputeCorrectValuesAcrossProcesses) {
  const std::vector<NodeId> members{100, 101, 102};
  const std::string log_path =
      testing::TempDir() + "mw_cluster_socket_serve_" +
      std::to_string(::getpid()) + ".bin";
  ::unlink(log_path.c_str());

  SocketTransport transport(200);
  ChildReaper children;
  children.pids = spawn_cluster(members, log_path, transport);
  ASSERT_EQ(children.pids.size(), members.size());

  ClusterRouter router(members, kRingSeed, kVnodes);
  constexpr std::size_t kCalls = 8;
  std::vector<std::unique_ptr<ServiceClient>> clients;
  for (NodeId id : {NodeId(200), NodeId(201)}) {
    clients.push_back(std::make_unique<ServiceClient>(
        transport, id, 0, socket_client_config()));
    ServiceClient* cl = clients.back().get();
    router.attach(*cl);
    cl->on_complete = [cl](const CallRecord&) {
      if (cl->records().size() < kCalls)
        cl->call(30 + cl->records().size(), cl->self());
    };
  }
  for (auto& cl : clients) cl->call(30, cl->self());
  ASSERT_TRUE(pump(
      transport,
      [&] {
        for (auto& cl : clients)
          if (cl->records().size() < kCalls) return false;
        return true;
      },
      30000));

  std::size_t total_ok = 0;
  for (auto& cl : clients) {
    for (const CallRecord& r : cl->records()) {
      EXPECT_TRUE(r.ok()) << "client " << cl->self() << " seq " << r.seq;
      EXPECT_EQ(r.value, service_reference(r.payload, r.work));
      if (r.ok()) ++total_ok;
    }
  }
  EXPECT_EQ(total_ok, kCalls * clients.size());
  // The cluster-wide ledger: every process appended to one file; no
  // (client, seq) pair may appear twice.
  const std::vector<Effect> all = FileEffectLog::read_all(log_path);
  EXPECT_EQ(all.size(), kCalls * clients.size());
  EffectLog combined;
  for (const Effect& e : all) combined.append(e);
  EXPECT_EQ(combined.duplicates(), 0u);
  ::unlink(log_path.c_str());
}

TEST(ClusterSocket, SigkilledNodeEvictsAndClusterStaysExactlyOnce) {
  const std::vector<NodeId> members{100, 101, 102};
  const std::string log_path =
      testing::TempDir() + "mw_cluster_socket_kill_" +
      std::to_string(::getpid()) + ".bin";
  ::unlink(log_path.c_str());

  // Pick a client the victim owns, so the kill provably forces a re-route
  // and a log-backed replay window.
  HashRing ring(kRingSeed, kVnodes);
  for (NodeId m : members) ring.add(m);
  const NodeId victim_node = members[0];
  NodeId cid = 0;
  for (NodeId cand = 200; cand < 1200; ++cand)
    if (ring.owner_of(cand) == victim_node) {
      cid = cand;
      break;
    }
  ASSERT_NE(cid, 0u);

  SocketTransport transport(cid);
  ChildReaper children;
  children.pids = spawn_cluster(members, log_path, transport);
  ASSERT_EQ(children.pids.size(), members.size());

  ClusterRouter router(members, kRingSeed, kVnodes);
  ServiceClient client(transport, cid, 0, socket_client_config());
  router.attach(client);
  constexpr std::size_t kCalls = 12;
  client.on_complete = [&](const CallRecord&) {
    if (client.records().size() < kCalls)
      client.call(40, client.records().size());
  };
  client.call(40, 7);
  ASSERT_TRUE(pump(transport,
                   [&] { return client.records().size() >= 3; }, 10000));

  // A real SIGKILL of the session's owner mid-load: no goodbye, no
  // handoff — only the shared file remembers what it committed.
  const pid_t victim = children.pids[0];
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(victim, &status, 0), victim);
  ASSERT_TRUE(WIFSIGNALED(status));
  children.pids.erase(children.pids.begin());

  ASSERT_TRUE(pump(transport,
                   [&] { return client.records().size() >= kCalls; }, 40000));
  std::size_t answered_ok = 0;
  for (const CallRecord& r : client.records()) {
    if (r.ok()) {
      ++answered_ok;
      EXPECT_EQ(r.value, service_reference(r.payload, r.work));
    }
  }
  // The survivors must pick the session up: the calls bracketing the kill
  // may time out, steady state before and after must land.
  EXPECT_GE(answered_ok, kCalls / 2);
  const std::vector<Effect> all = FileEffectLog::read_all(log_path);
  EXPECT_GE(all.size(), answered_ok);
  EffectLog combined;
  for (const Effect& e : all) combined.append(e);
  EXPECT_EQ(combined.duplicates(), 0u);
  ::unlink(log_path.c_str());
}

}  // namespace
}  // namespace mw
