// ClusterFaultMatrix: the chaos sweep one level up from the service
// matrix. Per seed, a 4-node backend-less cluster lives through seeded
// message drops / duplications / delays, one unplanned node death (the
// SIGKILL analogue: the ClusterNode object vanishes mid-load), a planned
// grow (add_node) and a planned shrink (remove_node) — all under routed
// client load retrying the SAME seq across owners. The machine-checked
// invariants, per seed:
//
//   * exactly-once CLUSTER-WIDE: the shared EffectLog holds no duplicate
//     (client, seq) pair across every retry, re-route, eviction, handoff,
//     and log reconcile;
//   * correctness: every kOk response equals service_reference();
//   * every node drains and the RuntimeAuditor is clean;
//   * the same seed replays to the identical fault schedule and outcome.
//
// CI shards the sweep via MW_FAULT_SEED_BASE / MW_FAULT_SEED_COUNT, same
// contract as ServiceFaultMatrix. The forked-process variant with a real
// SIGKILL is cluster_socket_test.cpp.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/runtime_auditor.hpp"
#include "dist/sim_transport.hpp"
#include "fault/fault.hpp"
#include "service/cluster.hpp"
#include "util/des.hpp"

namespace mw {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t def) {
  const char* v = std::getenv(name);
  return v ? std::strtoull(v, nullptr, 10) : def;
}

constexpr std::uint64_t kRingSeed = 11;
constexpr std::size_t kVnodes = 8;

struct ClusterOutcome {
  std::uint64_t ok = 0;
  std::uint64_t answered = 0;
  std::uint64_t wrong_values = 0;
  std::size_t effects = 0;
  std::size_t effect_duplicates = 0;
  std::uint64_t session_replays = 0;  // per-node SessionTable replays
  std::uint64_t log_replays = 0;      // answered from the cluster-wide log
  std::uint64_t misroutes = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t handoffs_sent = 0;
  std::uint64_t handoff_acks = 0;
  std::uint64_t revoked = 0;
  std::uint64_t fence_sheds = 0;
  std::size_t leftover_pendings = 0;
  int leaked_pages = 0;
  std::string digest;
  std::string log;
};

ClusterOutcome run_matrix(std::uint64_t seed) {
  ClusterOutcome out;
  RuntimeAuditor auditor;
  {
    FaultInjector inj(seed);
    // Beats ride the same faulty links as requests, so the rates must
    // leave liveness detectable: 8 consecutive beat losses (~0.04^8) would
    // be needed for a spurious eviction.
    inj.arm("net.drop",
            FaultSpec::with_probability(FaultKind::kDropMessage, 0.04));
    inj.arm("net.dup",
            FaultSpec::with_probability(FaultKind::kDuplicateMessage, 0.04));
    inj.arm("net.delay",
            FaultSpec::with_probability(FaultKind::kDelay, 0.06)
                .delayed(vt_ms(2)));
    FaultScope scope(inj);

    LinkModel link;
    link.latency = vt_us(500);
    link.per_message_overhead = vt_us(100);
    EventQueue queue;
    SimTransport transport(queue, link, seed);
    EffectLog effects;  // the cluster-shared durable sink

    auto node_config = [&](std::uint64_t svc_seed) {
      ClusterConfig c;
      c.seed = kRingSeed;
      c.vnodes = kVnodes;
      c.beat_interval = vt_ms(5);
      c.peer_health = {.heartbeat_interval = vt_ms(5),
                       .suspect_after = vt_ms(15),
                       .dead_after = vt_ms(40)};
      c.handoff_retry = vt_ms(5);
      c.probation = vt_ms(20);
      c.service.seed = svc_seed;
      c.service.service_mean = vt_ms(1);
      c.service.hedge_delay = vt_ms(2);
      // Brownout couples the run to live scheduler counters, which are
      // thread-timing dependent; replay determinism wins here (same call
      // as the service matrix).
      c.service.brownout_enter = 1e9;
      return c;
    };

    std::vector<NodeId> ids{100, 101, 102, 103};
    std::vector<std::unique_ptr<ClusterNode>> nodes;
    for (std::size_t i = 0; i < ids.size(); ++i)
      nodes.push_back(std::make_unique<ClusterNode>(
          transport, ids[i], ids, effects, node_config(seed + i)));
    ClusterRouter router(ids, kRingSeed, kVnodes);

    auto node_by = [&](NodeId id) -> ClusterNode* {
      for (auto& n : nodes)
        if (n->self() == id) return n.get();
      return nullptr;
    };
    auto kill_node = [&](NodeId id) {
      for (auto it = nodes.begin(); it != nodes.end(); ++it)
        if ((*it)->self() == id) {
          nodes.erase(it);
          return;
        }
    };

    constexpr VTime kLoadUntil = vt_ms(600);
    ClientConfig cc;
    cc.retry_after = vt_ms(15);
    cc.max_retries = 8;  // enough to ride out an eviction window
    cc.deadline = vt_ms(100);
    std::vector<std::unique_ptr<ServiceClient>> clients;
    for (NodeId node = 200; node < 205; ++node) {
      clients.push_back(
          std::make_unique<ServiceClient>(transport, node, 0, cc));
      ServiceClient* cl = clients.back().get();
      router.attach(*cl);
      cl->on_complete = [cl, &transport](const CallRecord&) {
        if (transport.now() < kLoadUntil)
          cl->call(30 + cl->records().size() % 7, cl->self());
      };
    }
    transport.run_until(vt_ms(2));  // beats land
    for (auto& cl : clients) cl->call(30, cl->self());

    // Scripted chaos on top of the seeded noise.
    transport.run_until(vt_ms(150));
    kill_node(101);  // unplanned death: instant total silence, no handoff

    transport.run_until(vt_ms(300));
    // Planned grow: incumbents learn of 104, then it boots with the full
    // member list (it evicts the long-dead 101 on its own).
    ids.push_back(104);
    for (auto& n : nodes) n->add_node(104);
    nodes.push_back(std::make_unique<ClusterNode>(
        transport, 104, ids, effects, node_config(seed + 9)));
    router.add_node(104);

    transport.run_until(vt_ms(400));
    // Planned shrink: 103 hands its sessions off, then leaves for good
    // once the acks have had time to settle.
    for (auto& n : nodes) n->remove_node(103);
    router.remove_node(103);
    transport.run_until(vt_ms(450));
    kill_node(103);

    transport.run_until(kLoadUntil);

    // Drain: every client terminal, every node's server empty.
    auto all_idle = [&] {
      for (const auto& cl : clients)
        if (!cl->idle()) return false;
      return true;
    };
    while (!all_idle() && transport.now() < vt_sec(4))
      transport.run_until(transport.now() + vt_ms(10));
    transport.run_until(transport.now() + vt_ms(200));

    for (const auto& cl : clients) {
      for (const CallRecord& r : cl->records()) {
        if (r.answered) ++out.answered;
        if (r.status != SvcStatus::kOk || !r.answered) continue;
        ++out.ok;
        if (r.value != service_reference(r.payload, r.work))
          ++out.wrong_values;
      }
    }
    out.effects = effects.size();
    out.effect_duplicates = effects.duplicates();
    for (NodeId id : {NodeId(100), NodeId(102), NodeId(104)}) {
      ClusterNode* n = node_by(id);
      if (n == nullptr) {
        ADD_FAILURE() << "seed=" << seed << ": survivor " << id << " missing";
        continue;
      }
      out.session_replays += n->server().stats().replays;
      out.log_replays += n->stats().log_replays;
      out.misroutes += n->stats().misroutes;
      out.evictions += n->stats().evictions;
      out.rejoins += n->stats().rejoins;
      out.handoffs_sent += n->stats().handoffs_sent;
      out.handoff_acks += n->stats().handoff_acks;
      out.revoked += n->stats().revoked;
      out.fence_sheds += n->stats().fence_sheds;
      out.leftover_pendings +=
          n->server().inflight() + n->server().queue_depth();
    }
    out.digest = inj.schedule_digest();
    out.log = inj.log_string();
  }
  const ProcessTable empty;
  out.leaked_pages = auditor.run(empty).leaked_pages;
  return out;
}

TEST(ClusterFaultMatrix, SweepHoldsClusterWideExactlyOnceForEverySeed) {
  const std::uint64_t base = env_u64("MW_FAULT_SEED_BASE", 1);
  const std::uint64_t count = env_u64("MW_FAULT_SEED_COUNT", 4);
  std::uint64_t robustness_events = 0;
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    const ClusterOutcome r = run_matrix(seed);
    EXPECT_EQ(r.effect_duplicates, 0u)
        << "seed=" << seed << " digest=" << r.digest << "\n" << r.log;
    EXPECT_EQ(r.wrong_values, 0u) << "seed=" << seed << "\n" << r.log;
    EXPECT_GT(r.ok, 0u) << "seed=" << seed << "\n" << r.log;
    EXPECT_EQ(r.leftover_pendings, 0u) << "seed=" << seed << "\n" << r.log;
    EXPECT_EQ(r.leaked_pages, 0) << "seed=" << seed;
    // Every surviving node must have noticed the scripted churn.
    EXPECT_GE(r.evictions, 2u) << "seed=" << seed;
    EXPECT_LE(r.effects, static_cast<std::size_t>(r.answered) + 64)
        << "seed=" << seed;
    robustness_events += r.session_replays + r.log_replays + r.misroutes +
                         r.handoffs_sent + r.revoked + r.fence_sheds +
                         r.rejoins;
  }
  // Vacuous-sweep guard: the churn must actually exercise the protocol.
  EXPECT_GT(robustness_events, 0u);
}

TEST(ClusterFaultMatrix, SeedReplaysToIdenticalScheduleAndOutcome) {
  const std::uint64_t seed = env_u64("MW_FAULT_SEED_BASE", 1);
  const ClusterOutcome a = run_matrix(seed);
  const ClusterOutcome b = run_matrix(seed);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.effects, b.effects);
  EXPECT_EQ(a.session_replays, b.session_replays);
  EXPECT_EQ(a.log_replays, b.log_replays);
  EXPECT_EQ(a.misroutes, b.misroutes);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.handoffs_sent, b.handoffs_sent);
}

}  // namespace
}  // namespace mw
