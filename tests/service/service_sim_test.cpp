#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "core/runtime_auditor.hpp"
#include "dist/sim_transport.hpp"
#include "fault/fault.hpp"
#include "service/hedged_server.hpp"
#include "service/service_backend.hpp"
#include "service/service_client.hpp"
#include "util/des.hpp"

namespace mw {
namespace {

// Short wires so a round trip is a few virtual ms, not tens.
LinkModel svc_link() {
  LinkModel l;
  l.latency = vt_us(500);
  l.per_message_overhead = vt_us(100);
  return l;
}

ServiceConfig svc_config() {
  ServiceConfig c;
  c.service_mean = vt_ms(1);
  c.hedge_delay = vt_ms(2);
  return c;
}

BackendConfig backend_config(std::uint64_t seed) {
  BackendConfig c;
  c.seed = seed;
  c.service_mean = vt_ms(1);
  return c;
}

/// Fast health timings for tests that wait out a backend death.
PeerHealthConfig fast_health() {
  PeerHealthConfig h;
  h.heartbeat_interval = vt_ms(10);
  h.suspect_after = vt_ms(30);
  h.dead_after = vt_ms(80);
  return h;
}

/// One in-process service cluster: server = 100, backends = 1..n,
/// clients 200+ created on demand.
struct SvcCluster {
  explicit SvcCluster(std::size_t n_backends, ServiceConfig sc = svc_config(),
                      LinkModel link = svc_link(), std::uint64_t seed = 1)
      : transport(queue, link, seed), server(transport, 100, effects, sc) {
    for (std::size_t i = 1; i <= n_backends; ++i) {
      BackendConfig bc = backend_config(seed + i);
      bc.health = sc.health;  // beat at the server's expected cadence
      backends.push_back(
          std::make_unique<ServiceBackend>(transport, NodeId(i), 100, bc));
      server.add_backend(NodeId(i));
    }
    transport.run_until(vt_ms(2));  // let the first beats land
  }

  ServiceClient& client(NodeId node, ClientConfig cc = {}) {
    clients.push_back(
        std::make_unique<ServiceClient>(transport, node, 100, cc));
    return *clients.back();
  }

  void run_for(VDuration d) { transport.run_until(transport.now() + d); }

  EventQueue queue;
  SimTransport transport;
  EffectLog effects;
  HedgedServer server;
  std::vector<std::unique_ptr<ServiceBackend>> backends;
  std::vector<std::unique_ptr<ServiceClient>> clients;
};

TEST(SvcProtocol, FramesRoundTrip) {
  SvcRequest rq{7, 42, vt_ms(9), 100, 5};
  auto rq2 = decode_request(encode_request(rq));
  ASSERT_TRUE(rq2);
  EXPECT_EQ(rq2->client, 7u);
  EXPECT_EQ(rq2->seq, 42u);
  EXPECT_EQ(rq2->deadline, vt_ms(9));
  EXPECT_EQ(rq2->work, 100u);
  EXPECT_EQ(rq2->payload, 5u);

  SvcResponse rs{7, 42, SvcStatus::kShed, 11, kSvcFlagLocal};
  auto rs2 = decode_response(encode_response(rs));
  ASSERT_TRUE(rs2);
  EXPECT_EQ(rs2->status, SvcStatus::kShed);
  EXPECT_EQ(rs2->flags, kSvcFlagLocal);

  SvcExec ex{9, 64, 3, vt_ms(20)};
  auto ex2 = decode_exec(encode_exec(ex));
  ASSERT_TRUE(ex2);
  EXPECT_EQ(ex2->ticket, 9u);
  EXPECT_EQ(ex2->budget, vt_ms(20));

  SvcExecDone dn{9, 123};
  auto dn2 = decode_exec_done(encode_exec_done(dn));
  ASSERT_TRUE(dn2);
  EXPECT_EQ(dn2->value, 123u);
}

TEST(SvcProtocol, DecodersRejectGarbage) {
  EXPECT_EQ(svc_message_tag({}), 0);
  const Bytes frame = encode_request(SvcRequest{1, 1, 0, 10, 0});
  Bytes truncated(frame.begin(), frame.end() - 3);
  EXPECT_FALSE(decode_request(truncated));
  EXPECT_FALSE(decode_response(frame));  // wrong tag
  Bytes bad_status = encode_response(SvcResponse{1, 1, SvcStatus::kOk, 0, 0});
  bad_status[1 + 8 + 8] = 99;  // status byte out of range
  EXPECT_FALSE(decode_response(bad_status));
}

TEST(SvcSim, RemoteCallComputesTheReferenceValue) {
  SvcCluster c(2);
  ServiceClient& cl = c.client(200);
  cl.call(100, 7);
  c.run_for(vt_ms(100));
  ASSERT_EQ(cl.records().size(), 1u);
  const CallRecord& r = cl.records()[0];
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.value, service_reference(7, 100));
  EXPECT_EQ(r.flags & kSvcFlagLocal, 0);
  EXPECT_EQ(c.effects.size(), 1u);
  EXPECT_EQ(c.server.stats().ok, 1u);
  EXPECT_GE(c.backends[0]->executed() + c.backends[1]->executed(), 1u);
}

TEST(SvcSim, BackendlessServerFinishesOnTheLocalRace) {
  RuntimeAuditor auditor;
  {
    SvcCluster c(0);
    ServiceClient& cl = c.client(200);
    cl.call(64, 3);
    c.run_for(vt_ms(100));
    ASSERT_EQ(cl.records().size(), 1u);
    EXPECT_TRUE(cl.records()[0].ok());
    EXPECT_EQ(cl.records()[0].value, service_reference(3, 64));
    EXPECT_NE(cl.records()[0].flags & kSvcFlagLocal, 0);
    EXPECT_EQ(c.server.stats().local_races, 1u);
    // No backends configured is the normal single-node mode, not a
    // degradation event.
    EXPECT_EQ(c.server.stats().local_fallbacks, 0u);
  }
  const ProcessTable empty;
  const AuditReport report = auditor.run(empty);
  EXPECT_EQ(report.leaked_pages, 0)
      << (report.violations.empty() ? "" : report.violations.front());
}

TEST(SvcSim, SequentialCallsCommitEachEffectOnce) {
  SvcCluster c(2);
  ServiceClient& cl = c.client(200);
  constexpr std::size_t kCalls = 20;
  cl.on_complete = [&](const CallRecord&) {
    if (cl.records().size() < kCalls)
      cl.call(40 + cl.records().size(), cl.records().size());
  };
  cl.call(40, 99);
  while (cl.records().size() < kCalls && c.transport.now() < vt_sec(5))
    c.run_for(vt_ms(10));
  ASSERT_EQ(cl.records().size(), kCalls);
  for (const CallRecord& r : cl.records()) {
    EXPECT_TRUE(r.ok()) << "seq " << r.seq;
    EXPECT_EQ(r.value, service_reference(r.payload, r.work));
  }
  EXPECT_EQ(c.effects.size(), kCalls);
  EXPECT_EQ(c.effects.duplicates(), 0u);
}

TEST(SvcSim, ClientRetransmitsAreAbsorbedAsDuplicates) {
  // A pathologically impatient client: retransmits every 1 ms while the
  // round trip takes ~3 ms, so the server sees the same (client, seq)
  // several times while it is still executing.
  ClientConfig cc;
  cc.retry_after = vt_ms(1);
  cc.backoff_factor = 1.0;
  cc.retry_cap = vt_ms(1);
  cc.max_retries = 20;
  SvcCluster c(2);
  ServiceClient& cl = c.client(200, cc);
  cl.call(80, 5);
  c.run_for(vt_ms(100));
  ASSERT_EQ(cl.records().size(), 1u);
  EXPECT_TRUE(cl.records()[0].ok());
  EXPECT_EQ(cl.records()[0].value, service_reference(5, 80));
  EXPECT_GT(cl.records()[0].retries, 0u);
  const ServiceStats& s = c.server.stats();
  EXPECT_GE(s.in_flight_dups + s.replays, 1u);
  // Exactly-once despite the duplicates.
  EXPECT_EQ(c.effects.size(), 1u);
  EXPECT_EQ(c.effects.duplicates(), 0u);
}

TEST(SvcSim, NetDupDeliveriesNeverDoubleTheEffect) {
  FaultInjector inj(7);
  inj.arm("net.dup",
          FaultSpec::with_probability(FaultKind::kDuplicateMessage, 1.0));
  FaultScope scope(inj);
  SvcCluster c(2);
  ServiceClient& cl = c.client(200);
  constexpr std::size_t kCalls = 5;
  cl.on_complete = [&](const CallRecord&) {
    if (cl.records().size() < kCalls) cl.call(60, cl.records().size());
  };
  cl.call(60, 0);
  while (cl.records().size() < kCalls && c.transport.now() < vt_sec(5))
    c.run_for(vt_ms(10));
  ASSERT_EQ(cl.records().size(), kCalls) << inj.log_string();
  for (const CallRecord& r : cl.records())
    EXPECT_EQ(r.value, service_reference(r.payload, r.work));
  // Every request frame was delivered twice; the second copy is either a
  // concurrent duplicate or a replay, never a second execution commit.
  const ServiceStats& s = c.server.stats();
  EXPECT_GE(s.in_flight_dups + s.replays, 1u) << inj.log_string();
  EXPECT_EQ(c.effects.size(), kCalls);
  EXPECT_EQ(c.effects.duplicates(), 0u);
}

TEST(SvcSim, OverloadShedsInsteadOfCollapsing) {
  ServiceConfig sc = svc_config();
  sc.max_inflight = 1;
  sc.queue_capacity = 1;
  SvcCluster c(1, sc);
  for (NodeId node = 200; node < 208; ++node) c.client(node).call(40, node);
  c.run_for(vt_ms(200));
  const ServiceStats& s = c.server.stats();
  // One executing + one queued; the burst's other six are shed with an
  // explicit response, not absorbed into a collapsing backlog.
  EXPECT_EQ(s.shed, 6u);
  EXPECT_EQ(s.ok, 2u);
  EXPECT_EQ(c.effects.size(), s.ok);
  std::size_t shed_answers = 0;
  for (const auto& cl : c.clients) {
    ASSERT_EQ(cl->records().size(), 1u);
    const CallRecord& r = cl->records()[0];
    ASSERT_TRUE(r.answered);
    if (r.status == SvcStatus::kShed) {
      ++shed_answers;
    } else {
      EXPECT_EQ(r.status, SvcStatus::kOk);
      EXPECT_EQ(r.value, service_reference(r.payload, r.work));
    }
  }
  EXPECT_EQ(shed_answers, 6u);
  // Shedding leaves no session state: those seqs are still fresh.
  EXPECT_EQ(c.effects.duplicates(), 0u);
}

TEST(SvcSim, SustainedQueueingEntersBrownoutAndRecovers) {
  ServiceConfig sc = svc_config();
  sc.max_inflight = 1;
  sc.queue_capacity = 32;
  SvcCluster c(1, sc);
  constexpr VTime kLoadUntil = vt_ms(300);
  for (NodeId node = 200; node < 206; ++node) {
    ServiceClient& cl = c.client(node);
    cl.on_complete = [&c, &cl](const CallRecord&) {
      if (c.transport.now() < kLoadUntil) cl.call(40, cl.self());
    };
    cl.call(40, node);
  }
  c.transport.run_until(vt_ms(800));  // load, then drain and recover
  const ServiceStats& s = c.server.stats();
  EXPECT_GE(s.brownout_enters, 1u);
  EXPECT_GE(s.brownout_exits, 1u);
  EXPECT_FALSE(c.server.brownout());
  EXPECT_EQ(c.server.queue_depth(), 0u);
  for (const auto& cl : c.clients) {
    for (const CallRecord& r : cl->records()) {
      if (r.status == SvcStatus::kOk) {
        EXPECT_EQ(r.value, service_reference(r.payload, r.work));
      }
    }
  }
  EXPECT_EQ(c.effects.duplicates(), 0u);
}

TEST(SvcSim, HedgeCoversAHungPrimary) {
  // The first exec is swallowed by a hang fault (the primary backend
  // accepts it and never answers); the hedge finishes the request well
  // inside the deadline.
  FaultInjector inj(1);
  inj.arm("svc.exec", FaultSpec::once(FaultKind::kHang));
  FaultScope scope(inj);
  SvcCluster c(2);
  ServiceClient& cl = c.client(200);
  cl.call(90, 9);
  c.run_for(vt_ms(100));
  ASSERT_EQ(cl.records().size(), 1u);
  EXPECT_TRUE(cl.records()[0].ok()) << inj.log_string();
  EXPECT_EQ(cl.records()[0].value, service_reference(9, 90));
  EXPECT_LT(cl.records()[0].latency, vt_ms(20));
  EXPECT_EQ(c.server.stats().hedges, 1u);
  EXPECT_EQ(c.backends[0]->hung(), 1u);
  EXPECT_EQ(c.backends[1]->executed(), 1u);
}

TEST(SvcSim, DeadBackendOpensTheBreakerAndIsRoutedAround) {
  ServiceConfig sc = svc_config();
  sc.health = fast_health();
  SvcCluster c(2, sc);
  c.backends[0]->kill();
  c.run_for(vt_ms(200));  // silence crosses dead_after; breaker trips
  EXPECT_GE(c.server.stats().breaker_opens, 1u);
  ServiceClient& cl = c.client(200);
  cl.call(70, 4);
  c.run_for(vt_ms(100));
  ASSERT_EQ(cl.records().size(), 1u);
  EXPECT_TRUE(cl.records()[0].ok());
  EXPECT_EQ(cl.records()[0].value, service_reference(4, 70));
  EXPECT_EQ(c.backends[0]->executed(), 0u);  // never routed to the corpse
  EXPECT_GE(c.backends[1]->executed(), 1u);
}

TEST(SvcSim, InFlightAttemptFailsOverWhenItsBackendDies) {
  // Hedging off, long deadline: the request is parked on a backend that
  // died just before it arrived, and only the PeerHealth -> breaker ->
  // failover chain can save it.
  ServiceConfig sc = svc_config();
  sc.health = fast_health();
  sc.hedge_budget = 0;
  sc.default_deadline = vt_ms(400);
  SvcCluster c(2, sc);
  c.backends[0]->kill();  // dies silently; health has not noticed yet
  ClientConfig cc;
  cc.deadline = vt_ms(400);
  cc.retry_after = vt_ms(500);  // no retransmit noise in this test
  ServiceClient& cl = c.client(200, cc);
  cl.call(55, 6);
  c.run_for(vt_ms(300));
  ASSERT_EQ(cl.records().size(), 1u);
  EXPECT_TRUE(cl.records()[0].ok());
  EXPECT_EQ(cl.records()[0].value, service_reference(6, 55));
  EXPECT_GE(cl.records()[0].latency, sc.health.dead_after);  // waited out death
  EXPECT_EQ(c.server.stats().failovers, 1u);
  EXPECT_GE(c.server.stats().breaker_opens, 1u);
  EXPECT_GE(c.backends[1]->executed(), 1u);
}

TEST(SvcSim, TotalPartitionDegradesToTheLocalRace) {
  RuntimeAuditor auditor;
  {
    ServiceConfig sc = svc_config();
    sc.health = fast_health();
    SvcCluster c(2, sc);
    for (NodeId b = 1; b <= 2; ++b) {
      c.transport.set_link_blocked(100, b, true);
      c.transport.set_link_blocked(b, 100, true);
    }
    c.run_for(vt_ms(200));  // both backends fall silent and die
    ServiceClient& cl = c.client(200);
    cl.call(64, 8);
    c.run_for(vt_ms(100));
    ASSERT_EQ(cl.records().size(), 1u);
    EXPECT_TRUE(cl.records()[0].ok());
    EXPECT_EQ(cl.records()[0].value, service_reference(8, 64));
    EXPECT_NE(cl.records()[0].flags & kSvcFlagLocal, 0);
    EXPECT_GE(c.server.stats().local_fallbacks, 1u);
    EXPECT_GE(c.server.stats().breaker_opens, 2u);
  }
  const ProcessTable empty;
  const AuditReport report = auditor.run(empty);
  EXPECT_EQ(report.leaked_pages, 0)
      << (report.violations.empty() ? "" : report.violations.front());
}

TEST(SvcSim, SameSeedSameOutcome) {
  auto run = [] {
    FaultInjector inj(5);
    inj.arm("net.drop",
            FaultSpec::with_probability(FaultKind::kDropMessage, 0.05));
    inj.arm("net.dup",
            FaultSpec::with_probability(FaultKind::kDuplicateMessage, 0.05));
    inj.arm("net.delay",
            FaultSpec::with_probability(FaultKind::kDelay, 0.1)
                .delayed(vt_ms(1)));
    FaultScope scope(inj);
    ServiceConfig sc = svc_config();
    sc.brownout_enter = 1e9;  // keep thread-timing noise out of the tuple
    SvcCluster c(2, sc);
    ClientConfig cc;
    cc.max_retries = 8;
    ServiceClient& cl = c.client(200, cc);
    constexpr std::size_t kCalls = 10;
    cl.on_complete = [&](const CallRecord&) {
      if (cl.records().size() < kCalls) cl.call(50, cl.records().size());
    };
    cl.call(50, 42);
    while (cl.records().size() < kCalls && c.transport.now() < vt_sec(5))
      c.run_for(vt_ms(10));
    std::uint64_t value_sum = 0;
    for (const CallRecord& r : cl.records()) value_sum += r.value;
    return std::tuple(c.effects.size(), c.server.stats().ok,
                      c.server.stats().replays, c.server.stats().hedges,
                      c.server.stats().requests, value_sum,
                      c.transport.now());
  };
  EXPECT_EQ(run(), run());
}

TEST(SvcSim, RestartReplaysCommittedWorkInsteadOfReexecuting) {
  EventQueue queue;
  SimTransport transport(queue, svc_link(), 1);
  EffectLog effects;
  const ServiceConfig sc = svc_config();
  auto server = std::make_unique<HedgedServer>(transport, 100, effects, sc);
  ServiceBackend backend(transport, 1, 100, backend_config(2));
  server->add_backend(1);
  transport.run_until(vt_ms(2));
  ServiceClient cl(transport, 200, 100);

  auto call_and_wait = [&](std::uint64_t work, std::uint64_t payload) {
    const std::size_t before = cl.records().size();
    cl.call(work, payload);
    while (cl.records().size() == before && transport.now() < vt_sec(5))
      transport.run_until(transport.now() + vt_ms(5));
    ASSERT_TRUE(cl.records().back().ok());
  };
  call_and_wait(30, 1);
  call_and_wait(31, 2);
  const Bytes image = server->snapshot();
  call_and_wait(32, 3);  // seq 3 commits AFTER the snapshot (redo-log case)
  ASSERT_EQ(effects.size(), 3u);

  // Crash the server between event-loop turns; the successor gets the
  // stale image plus the full external effect log.
  server.reset();
  server = std::make_unique<HedgedServer>(transport, 100, effects, sc);
  ASSERT_TRUE(server->restore(image, effects));
  server->add_backend(1);
  transport.run_until(transport.now() + vt_ms(5));

  // A straggler duplicate of the post-snapshot request reaches the new
  // server — the exact frame a client retry would produce.
  SvcRequest dup;
  dup.client = 200;
  dup.seq = 3;
  dup.work = 32;
  dup.payload = 3;
  const Bytes frame = encode_request(dup);
  transport.send(200, 100,
                 std::span<const std::uint8_t>(frame.data(), frame.size()));
  transport.run_until(transport.now() + vt_ms(20));
  EXPECT_EQ(server->stats().replays, 1u);
  EXPECT_EQ(effects.size(), 3u);  // replayed, not re-executed
  EXPECT_EQ(effects.duplicates(), 0u);

  // The session stream continues seamlessly: the next fresh seq executes.
  call_and_wait(33, 4);
  EXPECT_EQ(cl.records().back().value, service_reference(4, 33));
  EXPECT_EQ(effects.size(), 4u);
  EXPECT_EQ(effects.duplicates(), 0u);
}

}  // namespace
}  // namespace mw
