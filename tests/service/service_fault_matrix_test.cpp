// Chaos matrix for the hedged service: per seed, one cluster lives through
// message drops / duplications / delays, probabilistic backend crashes and
// hangs, one scripted backend SIGKILL-analogue, a scripted partition that
// heals, and a full server restart (snapshot -> new process -> restore +
// reconcile) — all under client load with retries. The machine-checked
// invariants, per seed:
//
//   * exactly-once: the external EffectLog holds no duplicate (client, seq)
//     pair, across every retry, hedge, failover, and the restart;
//   * correctness: every kOk response equals service_reference();
//   * the server drains (no stuck pendings) and the RuntimeAuditor is clean;
//   * the same seed replays to the identical fault schedule and outcome.
//
// CI shards the sweep via MW_FAULT_SEED_BASE / MW_FAULT_SEED_COUNT; a
// failing seed prints its schedule digest and fired-fault log as the
// replay handle.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/runtime_auditor.hpp"
#include "dist/sim_transport.hpp"
#include "fault/fault.hpp"
#include "service/hedged_server.hpp"
#include "service/service_backend.hpp"
#include "service/service_client.hpp"
#include "util/des.hpp"

namespace mw {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t def) {
  const char* v = std::getenv(name);
  return v ? std::strtoull(v, nullptr, 10) : def;
}

struct MatrixOutcome {
  std::uint64_t ok = 0;
  std::uint64_t answered = 0;
  std::uint64_t wrong_values = 0;
  std::size_t effects = 0;
  std::size_t effect_duplicates = 0;
  std::uint64_t replays = 0;
  std::uint64_t in_flight_dups = 0;
  std::uint64_t hedges = 0;
  std::uint64_t failovers = 0;
  std::uint64_t local_fallbacks = 0;
  std::size_t leftover_pendings = 0;
  int leaked_pages = 0;
  std::string digest;
  std::string log;
};

MatrixOutcome run_matrix(std::uint64_t seed,
                         PolicyMode policy = PolicyMode::kStatic) {
  MatrixOutcome out;
  RuntimeAuditor auditor;
  {
    FaultInjector inj(seed);
    inj.arm("net.drop",
            FaultSpec::with_probability(FaultKind::kDropMessage, 0.05));
    inj.arm("net.dup",
            FaultSpec::with_probability(FaultKind::kDuplicateMessage, 0.05));
    inj.arm("net.delay",
            FaultSpec::with_probability(FaultKind::kDelay, 0.08)
                .delayed(vt_ms(2)));
    // One spec per point: odd seeds hang executions (hedge/deadline must
    // cover), even seeds crash the backend outright (failover must cover).
    if (seed % 2) {
      inj.arm("svc.exec",
              FaultSpec::with_probability(FaultKind::kHang, 0.03));
    } else {
      inj.arm("svc.exec",
              FaultSpec::with_probability(FaultKind::kCrashException, 0.01));
    }
    FaultScope scope(inj);

    LinkModel link;
    link.latency = vt_us(500);
    link.per_message_overhead = vt_us(100);
    EventQueue queue;
    SimTransport transport(queue, link, seed);
    EffectLog effects;

    ServiceConfig sc;
    sc.seed = seed;
    sc.service_mean = vt_ms(1);
    sc.health.heartbeat_interval = vt_ms(10);
    sc.health.suspect_after = vt_ms(30);
    sc.health.dead_after = vt_ms(80);
    // Brownout couples the matrix to live scheduler counters, which are
    // thread-timing dependent; the dedicated sim test covers it. Here the
    // replay-determinism invariant wins.
    sc.brownout_enter = 1e9;
    // Adaptive rows: the hedge delay follows the observed p95 instead of the
    // static delay. All inputs are sim timestamps, so determinism must hold.
    sc.policy.mode = policy;
    auto server = std::make_unique<HedgedServer>(transport, 100, effects, sc);

    auto make_backend = [&](NodeId node) {
      BackendConfig bc;
      bc.seed = seed;
      bc.service_mean = vt_ms(1);
      bc.health = sc.health;
      return std::make_unique<ServiceBackend>(transport, node, 100, bc);
    };
    std::vector<std::unique_ptr<ServiceBackend>> backends;
    for (NodeId node = 1; node <= 3; ++node) {
      backends.push_back(make_backend(node));
      server->add_backend(node);
    }

    constexpr VTime kLoadUntil = vt_ms(600);
    ClientConfig cc;
    cc.retry_after = vt_ms(15);
    cc.max_retries = 6;
    cc.deadline = vt_ms(60);
    std::vector<std::unique_ptr<ServiceClient>> clients;
    for (NodeId node = 200; node < 204; ++node) {
      clients.push_back(
          std::make_unique<ServiceClient>(transport, node, 100, cc));
      ServiceClient* cl = clients.back().get();
      cl->on_complete = [cl, &transport](const CallRecord&) {
        if (transport.now() < kLoadUntil)
          cl->call(30 + cl->records().size() % 7, cl->self());
      };
    }
    transport.run_until(vt_ms(2));  // beats land
    for (auto& cl : clients) cl->call(30, cl->self());

    // Scripted chaos on top of the seeded noise.
    transport.run_until(vt_ms(150));
    backends[0]->kill();  // the SIGKILL analogue: instant total silence
    transport.run_until(vt_ms(250));
    transport.set_link_blocked(100, 2, true);
    transport.set_link_blocked(2, 100, true);
    transport.run_until(vt_ms(300));

    // Full server restart mid-load: snapshot, "crash", restore + reconcile
    // against the same external effect log.
    const Bytes image = server->snapshot();
    server.reset();
    server = std::make_unique<HedgedServer>(transport, 100, effects, sc);
    if (!server->restore(image, effects)) {
      ADD_FAILURE() << "seed=" << seed << ": snapshot did not restore";
    }
    for (NodeId node = 1; node <= 3; ++node) server->add_backend(node);

    transport.run_until(vt_ms(400));
    transport.set_link_blocked(100, 2, false);  // the partition heals
    transport.set_link_blocked(2, 100, false);
    transport.run_until(kLoadUntil);

    // Drain: every client reaches a terminal state (answer or local
    // timeout) and the server finishes or expires all pendings.
    auto all_idle = [&] {
      for (const auto& cl : clients)
        if (!cl->idle()) return false;
      return true;
    };
    while (!all_idle() && transport.now() < vt_sec(4))
      transport.run_until(transport.now() + vt_ms(10));
    transport.run_until(transport.now() + vt_ms(200));

    for (const auto& cl : clients) {
      for (const CallRecord& r : cl->records()) {
        if (r.answered) ++out.answered;
        if (r.status != SvcStatus::kOk || !r.answered) continue;
        ++out.ok;
        if (r.value != service_reference(r.payload, r.work))
          ++out.wrong_values;
      }
    }
    out.effects = effects.size();
    out.effect_duplicates = effects.duplicates();
    out.replays = server->stats().replays;
    out.in_flight_dups = server->stats().in_flight_dups;
    out.hedges = server->stats().hedges;
    out.failovers = server->stats().failovers;
    out.local_fallbacks = server->stats().local_fallbacks;
    out.leftover_pendings = server->inflight() + server->queue_depth();
    out.digest = inj.schedule_digest();
    out.log = inj.log_string();
  }
  const ProcessTable empty;
  out.leaked_pages = auditor.run(empty).leaked_pages;
  return out;
}

TEST(ServiceFaultMatrix, SweepHoldsExactlyOnceForEverySeed) {
  const std::uint64_t base = env_u64("MW_FAULT_SEED_BASE", 1);
  const std::uint64_t count = env_u64("MW_FAULT_SEED_COUNT", 4);
  std::uint64_t robustness_events = 0;
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    const MatrixOutcome r = run_matrix(seed);
    EXPECT_EQ(r.effect_duplicates, 0u)
        << "seed=" << seed << " digest=" << r.digest << "\n" << r.log;
    EXPECT_EQ(r.wrong_values, 0u) << "seed=" << seed << "\n" << r.log;
    EXPECT_GT(r.ok, 0u) << "seed=" << seed << "\n" << r.log;
    EXPECT_EQ(r.leftover_pendings, 0u) << "seed=" << seed << "\n" << r.log;
    EXPECT_EQ(r.leaked_pages, 0) << "seed=" << seed;
    // Effects are exactly the server-side successful commits; a client may
    // miss the response (dropped frame) yet the effect is still singular.
    EXPECT_LE(r.effects, static_cast<std::size_t>(r.answered) + 64)
        << "seed=" << seed;
    robustness_events += r.replays + r.in_flight_dups + r.hedges +
                         r.failovers + r.local_fallbacks;
  }
  // The sweep is vacuous if no duplicate, hedge, failover, or fallback
  // ever actually happened.
  EXPECT_GT(robustness_events, 0u);
}

TEST(ServiceFaultMatrix, SeedReplaysToIdenticalScheduleAndOutcome) {
  const std::uint64_t seed = env_u64("MW_FAULT_SEED_BASE", 1);
  const MatrixOutcome a = run_matrix(seed);
  const MatrixOutcome b = run_matrix(seed);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.effects, b.effects);
  EXPECT_EQ(a.replays, b.replays);
  EXPECT_EQ(a.hedges, b.hedges);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.local_fallbacks, b.local_fallbacks);
}

TEST(ServiceFaultMatrix, AdaptivePolicySweepHoldsExactlyOnce) {
  // Same chaos matrix, adaptive policy rows: hedge timing now derives from
  // the latency reservoir, so the decision *values* differ from the static
  // rows — but exactly-once, correctness, drain, and the auditor must not.
  const std::uint64_t base = env_u64("MW_FAULT_SEED_BASE", 1);
  const std::uint64_t count = env_u64("MW_FAULT_SEED_COUNT", 4);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    const MatrixOutcome r = run_matrix(seed, PolicyMode::kAdaptive);
    EXPECT_EQ(r.effect_duplicates, 0u)
        << "seed=" << seed << " digest=" << r.digest << "\n" << r.log;
    EXPECT_EQ(r.wrong_values, 0u) << "seed=" << seed << "\n" << r.log;
    EXPECT_GT(r.ok, 0u) << "seed=" << seed << "\n" << r.log;
    EXPECT_EQ(r.leftover_pendings, 0u) << "seed=" << seed << "\n" << r.log;
    EXPECT_EQ(r.leaked_pages, 0) << "seed=" << seed;
    EXPECT_LE(r.effects, static_cast<std::size_t>(r.answered) + 64)
        << "seed=" << seed;
  }
}

TEST(ServiceFaultMatrix, AdaptivePolicySeedReplaysIdentically) {
  // The policy engine's determinism contract, end to end: with adaptive
  // hedging enabled, one seed still replays to the identical fault schedule,
  // effect count, and robustness-path counters.
  const std::uint64_t seed = env_u64("MW_FAULT_SEED_BASE", 1);
  const MatrixOutcome a = run_matrix(seed, PolicyMode::kAdaptive);
  const MatrixOutcome b = run_matrix(seed, PolicyMode::kAdaptive);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.effects, b.effects);
  EXPECT_EQ(a.replays, b.replays);
  EXPECT_EQ(a.hedges, b.hedges);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.local_fallbacks, b.local_fallbacks);
}

}  // namespace
}  // namespace mw
