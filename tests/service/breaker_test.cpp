#include "service/breaker.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

BreakerConfig cfg() {
  BreakerConfig c;
  c.failure_threshold = 3;
  c.cooldown = vt_ms(100);
  return c;
}

TEST(CircuitBreaker, StaysClosedBelowThreshold) {
  CircuitBreaker b(cfg());
  EXPECT_FALSE(b.record_failure(vt_ms(1)));
  EXPECT_FALSE(b.record_failure(vt_ms(2)));
  EXPECT_EQ(b.state(vt_ms(3)), BreakerState::kClosed);
  EXPECT_TRUE(b.allow(vt_ms(3)));
  EXPECT_EQ(b.opens(), 0u);
}

TEST(CircuitBreaker, ConsecutiveFailuresTrip) {
  CircuitBreaker b(cfg());
  b.record_failure(vt_ms(1));
  b.record_failure(vt_ms(2));
  EXPECT_TRUE(b.record_failure(vt_ms(3)));  // third in a row trips
  EXPECT_EQ(b.state(vt_ms(4)), BreakerState::kOpen);
  EXPECT_FALSE(b.allow(vt_ms(4)));
  EXPECT_EQ(b.opens(), 1u);
}

TEST(CircuitBreaker, SuccessResetsTheFailureStreak) {
  CircuitBreaker b(cfg());
  b.record_failure(vt_ms(1));
  b.record_failure(vt_ms(2));
  b.record_success();  // streak broken
  b.record_failure(vt_ms(3));
  b.record_failure(vt_ms(4));
  EXPECT_EQ(b.state(vt_ms(5)), BreakerState::kClosed);
}

TEST(CircuitBreaker, CooldownArmsExactlyOneProbe) {
  CircuitBreaker b(cfg());
  for (int i = 0; i < 3; ++i) b.record_failure(vt_ms(1));
  EXPECT_FALSE(b.allow(vt_ms(50)));  // still cooling down
  // Cooldown elapsed: half-open, one probe passes, the second is refused.
  EXPECT_EQ(b.state(vt_ms(101 + 1)), BreakerState::kHalfOpen);
  EXPECT_TRUE(b.allow(vt_ms(102)));
  EXPECT_FALSE(b.allow(vt_ms(103)));
}

TEST(CircuitBreaker, ProbeSuccessCloses) {
  CircuitBreaker b(cfg());
  for (int i = 0; i < 3; ++i) b.record_failure(vt_ms(1));
  ASSERT_TRUE(b.allow(vt_ms(200)));
  b.record_success();
  EXPECT_EQ(b.state(vt_ms(201)), BreakerState::kClosed);
  EXPECT_TRUE(b.allow(vt_ms(201)));
  EXPECT_EQ(b.closes(), 1u);
}

TEST(CircuitBreaker, ProbeFailureReopensWithFreshCooldown) {
  CircuitBreaker b(cfg());
  for (int i = 0; i < 3; ++i) b.record_failure(vt_ms(1));
  ASSERT_TRUE(b.allow(vt_ms(200)));
  EXPECT_TRUE(b.record_failure(vt_ms(200)));  // failed probe re-opens
  EXPECT_FALSE(b.allow(vt_ms(250)));          // fresh cooldown from t=200
  EXPECT_TRUE(b.allow(vt_ms(301)));           // next probe after it
  EXPECT_EQ(b.opens(), 2u);
}

TEST(CircuitBreaker, PeerDeathTripsImmediately) {
  CircuitBreaker b(cfg());
  EXPECT_TRUE(b.on_peer_dead(vt_ms(10)));  // no failure streak needed
  EXPECT_EQ(b.state(vt_ms(11)), BreakerState::kOpen);
  EXPECT_FALSE(b.on_peer_dead(vt_ms(12)));  // already open: not a fresh trip
}

TEST(CircuitBreaker, ResurrectionSkipsTheCooldown) {
  CircuitBreaker b(cfg());
  b.on_peer_dead(vt_ms(10));
  EXPECT_FALSE(b.allow(vt_ms(20)));
  b.on_peer_resurrected();  // heard from again: probe now, not at t=110
  EXPECT_EQ(b.state(vt_ms(21)), BreakerState::kHalfOpen);
  EXPECT_TRUE(b.allow(vt_ms(21)));
  b.record_success();
  EXPECT_EQ(b.state(vt_ms(22)), BreakerState::kClosed);
}

TEST(CircuitBreaker, ResurrectionIsANoOpWhenClosed) {
  CircuitBreaker b(cfg());
  b.on_peer_resurrected();
  EXPECT_EQ(b.state(vt_ms(1)), BreakerState::kClosed);
}

TEST(CircuitBreaker, StateNames) {
  EXPECT_STREQ(breaker_state_name(BreakerState::kClosed), "closed");
  EXPECT_STREQ(breaker_state_name(BreakerState::kOpen), "open");
  EXPECT_STREQ(breaker_state_name(BreakerState::kHalfOpen), "half-open");
}

}  // namespace
}  // namespace mw
