// The same service protocol over real UDP sockets and real processes:
// backends are forked children on loopback, the kill is a real SIGKILL.
// What the sim cannot prove — survival of kernel buffers, real clocks,
// and actual process death — is proved here; the exactly-once invariant
// is checked the same way (EffectLog::duplicates() == 0).
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "dist/socket_transport.hpp"
#include "service/hedged_server.hpp"
#include "service/service_backend.hpp"
#include "service/service_client.hpp"

namespace mw {
namespace {

/// SIGKILL + reap every child on scope exit, so a failing assertion can't
/// leak processes into the test runner.
struct ChildReaper {
  std::vector<pid_t> pids;
  ~ChildReaper() {
    for (pid_t p : pids) {
      ::kill(p, SIGKILL);
      int status = 0;
      ::waitpid(p, &status, 0);
    }
  }
};

PeerHealthConfig socket_health() {
  PeerHealthConfig h;
  h.heartbeat_interval = vt_ms(10);
  h.suspect_after = vt_ms(60);
  h.dead_after = vt_ms(150);
  return h;
}

/// Forked backend process body: beats and serves kSvcExec over loopback
/// until the parent kills it (or a 30 s safety budget expires).
[[noreturn]] void backend_process(NodeId node, std::uint16_t server_port) {
  SocketTransport transport(node);
  transport.add_peer(100, server_port);
  BackendConfig bc;
  bc.seed = node;
  bc.service_mean = vt_ms(1);
  bc.health = socket_health();
  ServiceBackend backend(transport, node, 100, bc);
  const VTime budget = transport.now() + vt_sec(30);
  while (transport.now() < budget)
    transport.run_until(transport.now() + vt_ms(2));
  ::_exit(0);
}

ServiceConfig socket_service_config() {
  ServiceConfig c;
  c.health = socket_health();
  c.hedge_delay = vt_ms(5);
  c.default_deadline = vt_ms(200);
  c.service_mean = vt_ms(1);
  return c;
}

ClientConfig socket_client_config() {
  ClientConfig c;
  c.retry_after = vt_ms(50);
  c.max_retries = 6;
  c.deadline = vt_ms(200);
  return c;
}

/// Drives the parent transport until `pred` holds or `budget_ms` of wall
/// time passes.
bool pump(SocketTransport& transport, const std::function<bool()>& pred,
          int budget_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    transport.run_until(transport.now() + vt_ms(2));
  }
  return true;
}

TEST(ServiceSocket, MultiProcessRequestsComputeCorrectValues) {
  // Server and client share the parent's transport (UDP self-loop);
  // the two backends are real forked processes.
  SocketTransport transport(100);
  EffectLog effects;
  HedgedServer server(transport, 100, effects, socket_service_config());
  ChildReaper children;
  for (NodeId node = 1; node <= 2; ++node) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) backend_process(node, transport.port());
    children.pids.push_back(pid);
    server.add_backend(node);
  }
  // The children's join beats teach the parent their ephemeral ports.
  ASSERT_TRUE(pump(transport,
                   [&] {
                     return transport.knows_peer(1) &&
                            transport.knows_peer(2);
                   },
                   5000));

  ServiceClient client(transport, 200, 100, socket_client_config());
  constexpr std::size_t kCalls = 10;
  client.on_complete = [&](const CallRecord&) {
    if (client.records().size() < kCalls)
      client.call(30 + client.records().size(), client.records().size());
  };
  client.call(30, 7);
  ASSERT_TRUE(pump(transport,
                   [&] { return client.records().size() >= kCalls; }, 20000));

  for (const CallRecord& r : client.records()) {
    EXPECT_TRUE(r.ok()) << "seq " << r.seq;
    EXPECT_EQ(r.value, service_reference(r.payload, r.work));
  }
  EXPECT_EQ(effects.size(), kCalls);
  EXPECT_EQ(effects.duplicates(), 0u);
}

TEST(ServiceSocket, SigkilledBackendDoesNotBreakExactlyOnce) {
  SocketTransport transport(100);
  EffectLog effects;
  HedgedServer server(transport, 100, effects, socket_service_config());
  ChildReaper children;
  for (NodeId node = 1; node <= 2; ++node) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) backend_process(node, transport.port());
    children.pids.push_back(pid);
    server.add_backend(node);
  }
  ASSERT_TRUE(pump(transport,
                   [&] {
                     return transport.knows_peer(1) &&
                            transport.knows_peer(2);
                   },
                   5000));

  ServiceClient client(transport, 200, 100, socket_client_config());
  constexpr std::size_t kCalls = 12;
  client.on_complete = [&](const CallRecord&) {
    if (client.records().size() < kCalls)
      client.call(40, client.records().size());
  };
  client.call(40, 99);
  ASSERT_TRUE(pump(transport,
                   [&] { return client.records().size() >= 3; }, 10000));

  // A real SIGKILL mid-load: no shutdown handshake, no flushed answers.
  const pid_t victim = children.pids[0];
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(victim, &status, 0), victim);
  ASSERT_TRUE(WIFSIGNALED(status));
  children.pids.erase(children.pids.begin());

  ASSERT_TRUE(pump(transport,
                   [&] { return client.records().size() >= kCalls; }, 30000));
  std::size_t answered_ok = 0;
  for (const CallRecord& r : client.records()) {
    if (r.ok()) {
      ++answered_ok;
      EXPECT_EQ(r.value, service_reference(r.payload, r.work));
    }
  }
  // Hedging/failover keeps goodput flowing across the kill; at least the
  // pre-kill and steady-state post-kill calls must land.
  EXPECT_GE(answered_ok, kCalls / 2);
  EXPECT_EQ(effects.duplicates(), 0u);
  EXPECT_GE(server.stats().hedges + server.stats().failovers +
                server.stats().local_fallbacks,
            1u);
}

}  // namespace
}  // namespace mw
