#include "io/source_gate.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

class SourceGateTest : public ::testing::Test {
 protected:
  Pid make_proc() {
    const Pid p = table_.create(kNoPid);
    table_.set_status(p, ProcStatus::kRunning);
    return p;
  }
  PredicateSet spec(Pid self) {
    PredicateSet s;
    s.assume_completes(self);
    return s;
  }
  ProcessTable table_;
};

TEST_F(SourceGateTest, CertainWorldPassesThrough) {
  SourceGate gate(table_, GatePolicy::kReject);
  int fired = 0;
  EXPECT_TRUE(gate.request(make_proc(), PredicateSet{}, [&] { ++fired; }));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(gate.executed(), 1u);
}

TEST_F(SourceGateTest, RejectPolicyBlocksSpeculativeAccess) {
  SourceGate gate(table_, GatePolicy::kReject);
  const Pid p = make_proc();
  int fired = 0;
  EXPECT_FALSE(gate.request(p, spec(p), [&] { ++fired; }));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(gate.rejected(), 1u);
  // Even after the process syncs, a rejected action never fires.
  table_.set_status(p, ProcStatus::kSynced);
  EXPECT_EQ(fired, 0);
}

TEST_F(SourceGateTest, DeferExecutesOnSync) {
  SourceGate gate(table_, GatePolicy::kDefer);
  const Pid p = make_proc();
  int fired = 0;
  EXPECT_FALSE(gate.request(p, spec(p), [&] { ++fired; }));
  EXPECT_EQ(gate.deferred_pending(), 1u);
  EXPECT_EQ(fired, 0);
  table_.set_status(p, ProcStatus::kSynced);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(gate.deferred_pending(), 0u);
  EXPECT_EQ(gate.executed(), 1u);
}

TEST_F(SourceGateTest, DeferDropsOnElimination) {
  SourceGate gate(table_, GatePolicy::kDefer);
  const Pid p = make_proc();
  int fired = 0;
  gate.request(p, spec(p), [&] { ++fired; });
  table_.set_status(p, ProcStatus::kEliminated);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(gate.dropped(), 1u);
}

TEST_F(SourceGateTest, DeferPreservesOrder) {
  SourceGate gate(table_, GatePolicy::kDefer);
  const Pid p = make_proc();
  std::vector<int> order;
  gate.request(p, spec(p), [&] { order.push_back(1); });
  gate.request(p, spec(p), [&] { order.push_back(2); });
  gate.request(p, spec(p), [&] { order.push_back(3); });
  table_.set_status(p, ProcStatus::kSynced);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(SourceGateTest, IndependentWorldsResolveIndependently) {
  SourceGate gate(table_, GatePolicy::kDefer);
  const Pid a = make_proc();
  const Pid b = make_proc();
  int a_fired = 0, b_fired = 0;
  gate.request(a, spec(a), [&] { ++a_fired; });
  gate.request(b, spec(b), [&] { ++b_fired; });
  table_.set_status(a, ProcStatus::kFailed);
  table_.set_status(b, ProcStatus::kSynced);
  EXPECT_EQ(a_fired, 0);
  EXPECT_EQ(b_fired, 1);
}

}  // namespace
}  // namespace mw
