#include "io/source_gate.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

class SourceGateTest : public ::testing::Test {
 protected:
  Pid make_proc() {
    const Pid p = table_.create(kNoPid);
    table_.set_status(p, ProcStatus::kRunning);
    return p;
  }
  PredicateSet spec(Pid self) {
    PredicateSet s;
    s.assume_completes(self);
    return s;
  }
  ProcessTable table_;
};

TEST_F(SourceGateTest, CertainWorldPassesThrough) {
  SourceGate gate(table_, GatePolicy::kReject);
  int fired = 0;
  EXPECT_TRUE(gate.request(make_proc(), PredicateSet{}, [&] { ++fired; }));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(gate.executed(), 1u);
}

TEST_F(SourceGateTest, RejectPolicyBlocksSpeculativeAccess) {
  SourceGate gate(table_, GatePolicy::kReject);
  const Pid p = make_proc();
  int fired = 0;
  EXPECT_FALSE(gate.request(p, spec(p), [&] { ++fired; }));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(gate.rejected(), 1u);
  // Even after the process syncs, a rejected action never fires.
  table_.set_status(p, ProcStatus::kSynced);
  EXPECT_EQ(fired, 0);
}

TEST_F(SourceGateTest, DeferExecutesOnSync) {
  SourceGate gate(table_, GatePolicy::kDefer);
  const Pid p = make_proc();
  int fired = 0;
  EXPECT_FALSE(gate.request(p, spec(p), [&] { ++fired; }));
  EXPECT_EQ(gate.deferred_pending(), 1u);
  EXPECT_EQ(fired, 0);
  table_.set_status(p, ProcStatus::kSynced);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(gate.deferred_pending(), 0u);
  EXPECT_EQ(gate.executed(), 1u);
}

TEST_F(SourceGateTest, DeferDropsOnElimination) {
  SourceGate gate(table_, GatePolicy::kDefer);
  const Pid p = make_proc();
  int fired = 0;
  gate.request(p, spec(p), [&] { ++fired; });
  table_.set_status(p, ProcStatus::kEliminated);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(gate.dropped(), 1u);
}

TEST_F(SourceGateTest, DeferPreservesOrder) {
  SourceGate gate(table_, GatePolicy::kDefer);
  const Pid p = make_proc();
  std::vector<int> order;
  gate.request(p, spec(p), [&] { order.push_back(1); });
  gate.request(p, spec(p), [&] { order.push_back(2); });
  gate.request(p, spec(p), [&] { order.push_back(3); });
  table_.set_status(p, ProcStatus::kSynced);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(SourceGateTest, IndependentWorldsResolveIndependently) {
  SourceGate gate(table_, GatePolicy::kDefer);
  const Pid a = make_proc();
  const Pid b = make_proc();
  int a_fired = 0, b_fired = 0;
  gate.request(a, spec(a), [&] { ++a_fired; });
  gate.request(b, spec(b), [&] { ++b_fired; });
  table_.set_status(a, ProcStatus::kFailed);
  table_.set_status(b, ProcStatus::kSynced);
  EXPECT_EQ(a_fired, 0);
  EXPECT_EQ(b_fired, 1);
}

// --- transfer(): restart hand-off (PR 3). A supervised restart retires the
// failed attempt's pid and continues under a fresh one; its deferred intents
// must follow the new pid instead of dying with the old. ---

TEST_F(SourceGateTest, TransferMovesDeferredIntentsToTheNewPid) {
  SourceGate gate(table_, GatePolicy::kDefer);
  const Pid old_pid = make_proc();
  const Pid new_pid = make_proc();
  std::vector<int> order;
  gate.request(old_pid, spec(old_pid), [&] { order.push_back(1); });
  gate.request(old_pid, spec(old_pid), [&] { order.push_back(2); });

  gate.transfer(old_pid, new_pid);
  // Retiring the old pid after the hand-off must not drop anything.
  table_.set_status(old_pid, ProcStatus::kFailed);
  EXPECT_EQ(gate.dropped(), 0u);
  EXPECT_EQ(gate.deferred_pending(), 2u);
  EXPECT_TRUE(order.empty());

  // New intents queue behind the inherited ones; the sync fires all in order.
  gate.request(new_pid, spec(new_pid), [&] { order.push_back(3); });
  table_.set_status(new_pid, ProcStatus::kSynced);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(gate.executed(), 3u);
  EXPECT_EQ(gate.deferred_pending(), 0u);
}

TEST_F(SourceGateTest, TransferAppendsAfterExistingIntentsOfTheTarget) {
  SourceGate gate(table_, GatePolicy::kDefer);
  const Pid a = make_proc();
  const Pid b = make_proc();
  std::vector<int> order;
  gate.request(b, spec(b), [&] { order.push_back(1); });  // b's own intent
  gate.request(a, spec(a), [&] { order.push_back(2); });
  gate.transfer(a, b);
  table_.set_status(b, ProcStatus::kSynced);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(SourceGateTest, TransferFromPidWithNoIntentsIsANoOp) {
  SourceGate gate(table_, GatePolicy::kDefer);
  const Pid a = make_proc();
  const Pid b = make_proc();
  gate.transfer(a, b);  // nothing deferred anywhere
  EXPECT_EQ(gate.deferred_pending(), 0u);
  table_.set_status(b, ProcStatus::kSynced);
  EXPECT_EQ(gate.executed(), 0u);
}

}  // namespace
}  // namespace mw
