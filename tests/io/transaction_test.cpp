#include "io/transaction.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

class TransactionTest : public ::testing::Test {
 protected:
  TransactionTest() : store_(64) { file_ = store_.create("db", 8); }

  BackingStore store_;
  FileId file_ = kNoFile;
};

TEST_F(TransactionTest, ReadYourOwnWrites) {
  Transaction tx(store_, file_);
  tx.store<int>(0, 42);
  EXPECT_EQ(tx.load<int>(0), 42);           // internally consistent
  EXPECT_EQ(store_.load<int>(file_, 0), 0);  // invisible outside
}

TEST_F(TransactionTest, CommitPublishesAtomically) {
  Transaction tx(store_, file_);
  tx.store<int>(0, 1);
  tx.store<int>(100, 2);
  tx.commit();
  EXPECT_EQ(store_.load<int>(file_, 0), 1);
  EXPECT_EQ(store_.load<int>(file_, 100), 2);
  EXPECT_TRUE(tx.committed());
}

TEST_F(TransactionTest, AbortDiscardsEverything) {
  store_.store<int>(file_, 0, 7);
  Transaction tx(store_, file_);
  tx.store<int>(0, 99);
  tx.abort();
  EXPECT_EQ(store_.load<int>(file_, 0), 7);
}

TEST_F(TransactionTest, ReadsSeeSnapshotNotLaterStoreWrites) {
  store_.store<int>(file_, 0, 5);
  Transaction tx(store_, file_);
  store_.store<int>(file_, 0, 6);  // concurrent external write
  // The transaction still sees its snapshot.
  EXPECT_EQ(tx.load<int>(0), 5);
}

TEST_F(TransactionTest, UntouchedDataSurvivesCommit) {
  store_.store<int>(file_, 200, 77);
  Transaction tx(store_, file_);
  tx.store<int>(0, 1);
  tx.commit();
  EXPECT_EQ(store_.load<int>(file_, 200), 77);
}

TEST_F(TransactionTest, PagesTouchedTracksCow) {
  Transaction tx(store_, file_);
  EXPECT_EQ(tx.pages_touched(), 0u);
  tx.store<int>(0, 1);
  tx.store<int>(4, 2);  // same page
  EXPECT_EQ(tx.pages_touched(), 1u);
  tx.store<int>(64, 3);  // second page
  EXPECT_EQ(tx.pages_touched(), 2u);
}

TEST_F(TransactionTest, SequentialTransactionsCompose) {
  {
    Transaction tx(store_, file_);
    tx.store<int>(0, 10);
    tx.commit();
  }
  {
    Transaction tx(store_, file_);
    EXPECT_EQ(tx.load<int>(0), 10);
    tx.store<int>(0, 20);
    tx.commit();
  }
  EXPECT_EQ(store_.load<int>(file_, 0), 20);
}

TEST_F(TransactionTest, DoubleCommitAborts) {
  Transaction tx(store_, file_);
  tx.commit();
  EXPECT_DEATH(tx.commit(), "MW_CHECK");
}

TEST_F(TransactionTest, UseAfterAbortAborts) {
  Transaction tx(store_, file_);
  tx.abort();
  EXPECT_DEATH(tx.store<int>(0, 1), "MW_CHECK");
}

TEST(BackingStore, NamedFilesAreSetsOfPages) {
  BackingStore store(128);
  FileId a = store.create("a", 4);
  FileId b = store.create("b", 2);
  EXPECT_NE(a, b);
  EXPECT_EQ(store.file_pages(a), 4u);
  EXPECT_EQ(store.lookup("b"), b);
  EXPECT_FALSE(store.lookup("c").has_value());
}

TEST(BackingStore, ReadWriteRoundTrip) {
  BackingStore store(64);
  FileId f = store.create("f", 4);
  store.store<double>(f, 8, 3.25);
  EXPECT_DOUBLE_EQ(store.load<double>(f, 8), 3.25);
  EXPECT_GE(store.total_writes(), 1u);
  EXPECT_GE(store.total_reads(), 1u);
}

TEST(BackingStore, DuplicateNameAborts) {
  BackingStore store(64);
  store.create("x", 1);
  EXPECT_DEATH(store.create("x", 1), "MW_CHECK");
}

TEST(BackingStore, SnapshotIsIsolatedFromLaterWrites) {
  BackingStore store(64);
  FileId f = store.create("f", 4);
  store.store<int>(f, 0, 1);
  PageTable snap = store.snapshot(f);
  store.store<int>(f, 0, 2);
  int v = 0;
  snap.read(0, std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(&v),
                                       sizeof v));
  EXPECT_EQ(v, 1);
}

}  // namespace
}  // namespace mw
