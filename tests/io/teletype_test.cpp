#include "io/teletype.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

TEST(Teletype, PrintAppendsInOrder) {
  Teletype tty;
  tty.print("a");
  tty.print("b");
  EXPECT_EQ(tty.output(), (std::vector<std::string>{"a", "b"}));
}

TEST(Teletype, ReadConsumesScript) {
  Teletype tty({"x", "y"});
  EXPECT_EQ(tty.read_line(), "x");
  EXPECT_EQ(tty.read_line(), "y");
  EXPECT_FALSE(tty.read_line().has_value());
  EXPECT_EQ(tty.reads_performed(), 2u);
}

TEST(Teletype, ReadsAreNotIdempotent) {
  // The §2.1 source property: retrying observably changes state.
  Teletype tty({"only"});
  auto first = tty.read_line();
  auto second = tty.read_line();
  EXPECT_TRUE(first.has_value());
  EXPECT_FALSE(second.has_value());  // the retry saw different state
}

TEST(Teletype, EofDoesNotCountAsRead) {
  Teletype tty;
  tty.read_line();
  tty.read_line();
  EXPECT_EQ(tty.reads_performed(), 0u);
}

TEST(Teletype, EmptyScriptIsImmediatelyEof) {
  Teletype tty(std::vector<std::string>{});
  EXPECT_FALSE(tty.read_line().has_value());
}

}  // namespace
}  // namespace mw
