#include "io/spec_console.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

class SpecConsoleTest : public ::testing::Test {
 protected:
  SpecConsoleTest() : tty_({"line1", "line2", "line3"}), console_(table_, tty_) {}

  Pid speculative_pid() {
    const Pid p = table_.create(kNoPid);
    table_.set_status(p, ProcStatus::kRunning);
    return p;
  }

  PredicateSet speculative_preds(Pid self) {
    PredicateSet s;
    s.assume_completes(self);
    return s;
  }

  ProcessTable table_;
  Teletype tty_;
  SpeculativeConsole console_;
};

TEST_F(SpecConsoleTest, CertainWritesGoStraightThrough) {
  const Pid p = speculative_pid();
  console_.write(p, PredicateSet{}, "hello");
  EXPECT_EQ(tty_.output(), (std::vector<std::string>{"hello"}));
  EXPECT_EQ(console_.buffered_lines(), 0u);
}

TEST_F(SpecConsoleTest, SpeculativeWritesAreBuffered) {
  const Pid p = speculative_pid();
  console_.write(p, speculative_preds(p), "spec");
  EXPECT_TRUE(tty_.output().empty());
  EXPECT_EQ(console_.buffered_lines(), 1u);
}

TEST_F(SpecConsoleTest, BufferFlushesInOrderOnCompletion) {
  const Pid p = speculative_pid();
  console_.write(p, speculative_preds(p), "a");
  console_.write(p, speculative_preds(p), "b");
  table_.set_status(p, ProcStatus::kSynced);
  EXPECT_EQ(tty_.output(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(console_.buffered_lines(), 0u);
}

TEST_F(SpecConsoleTest, BufferDiscardedOnFailure) {
  const Pid p = speculative_pid();
  console_.write(p, speculative_preds(p), "phantom");
  table_.set_status(p, ProcStatus::kFailed);
  EXPECT_TRUE(tty_.output().empty());
  EXPECT_EQ(console_.discarded_lines(), 1u);
}

TEST_F(SpecConsoleTest, BufferDiscardedOnElimination) {
  const Pid p = speculative_pid();
  console_.write(p, speculative_preds(p), "phantom");
  table_.set_status(p, ProcStatus::kEliminated);
  EXPECT_TRUE(tty_.output().empty());
}

TEST_F(SpecConsoleTest, InterleavedWorldsOnlyWinnerPrints) {
  const Pid a = speculative_pid();
  const Pid b = speculative_pid();
  console_.write(a, speculative_preds(a), "from-a");
  console_.write(b, speculative_preds(b), "from-b");
  table_.set_status(b, ProcStatus::kSynced);
  table_.set_status(a, ProcStatus::kEliminated);
  EXPECT_EQ(tty_.output(), (std::vector<std::string>{"from-b"}));
}

TEST_F(SpecConsoleTest, OneRealReadManyReplays) {
  const Pid a = speculative_pid();
  const Pid b = speculative_pid();
  EXPECT_EQ(console_.read_line(a), "line1");
  // The sibling reads the same position: replayed, not re-read.
  EXPECT_EQ(console_.read_line(b), "line1");
  EXPECT_EQ(tty_.reads_performed(), 1u);
  EXPECT_EQ(console_.replayed_reads(), 1u);
}

TEST_F(SpecConsoleTest, ReadersAdvanceIndependently) {
  const Pid a = speculative_pid();
  const Pid b = speculative_pid();
  EXPECT_EQ(console_.read_line(a), "line1");
  EXPECT_EQ(console_.read_line(a), "line2");
  EXPECT_EQ(console_.read_line(b), "line1");
  EXPECT_EQ(console_.read_line(b), "line2");
  EXPECT_EQ(console_.read_line(b), "line3");
  // Only three real reads ever happened.
  EXPECT_EQ(tty_.reads_performed(), 3u);
}

TEST_F(SpecConsoleTest, EofReturnsNullopt) {
  const Pid a = speculative_pid();
  console_.read_line(a);
  console_.read_line(a);
  console_.read_line(a);
  EXPECT_FALSE(console_.read_line(a).has_value());
}

TEST_F(SpecConsoleTest, FlushHappensOnceEvenWithLaterEvents) {
  const Pid p = speculative_pid();
  console_.write(p, speculative_preds(p), "once");
  table_.set_status(p, ProcStatus::kSynced);
  // A second terminal transition is rejected by the table and must not
  // double-flush.
  table_.set_status(p, ProcStatus::kEliminated);
  EXPECT_EQ(tty_.output(), (std::vector<std::string>{"once"}));
}

}  // namespace
}  // namespace mw
