// Sharded PagePool unit tests: deleter ownership (a frame recycles into the
// pool that allocated it, not the global pool), steal-refill and overflow
// traffic between shards, and merge-on-read stats arithmetic.
#include "pagestore/page_pool.hpp"

#include <gtest/gtest.h>

#include "pagestore/shard.hpp"

namespace mw {
namespace {

// Tests bind the *main* thread to exercise worker-shard homing; the guard
// restores the unbound state so later tests (and suites) see shard 0.
struct ShardBinding {
  explicit ShardBinding(std::size_t id) { PageShard::bind(id); }
  ~ShardBinding() { PageShard::unbind(); }
};

// A size class no other test allocates, so global-pool counts are stable.
constexpr std::size_t kOddSize = 3333;

TEST(PagePool, WrapRecyclesIntoOwningPoolNotGlobal) {
  PagePool local(2);
  const std::size_t global_before = PagePool::global().frames_held();

  bool hit = false;
  {
    PageRef p = local.acquire_zeroed(kOddSize, &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(p->size(), kOddSize);
  }
  // The dying page's frame must come back to `local` — the deleter captures
  // the owning pool, not PagePool::global().
  EXPECT_EQ(local.frames_held(), 1u);
  EXPECT_EQ(PagePool::global().frames_held(), global_before);

  PageRef again = local.acquire_zeroed(kOddSize, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(local.frames_held(), 0u);
  EXPECT_EQ(local.stats().hits, 1u);
}

TEST(PagePool, UnboundThreadHomesToGlobalShard) {
  PagePool pool(4);
  ASSERT_EQ(pool.shard_count(), 5u);
  bool hit = false;
  { PageRef p = pool.acquire_zeroed(kOddSize, &hit); }
  EXPECT_EQ(pool.shard_frames_held(0), 1u);
  for (std::size_t s = 1; s < pool.shard_count(); ++s)
    EXPECT_EQ(pool.shard_frames_held(s), 0u);
  EXPECT_EQ(pool.shard_stats(0).recycled, 1u);
}

TEST(PagePool, BoundThreadsHomeToDistinctShards) {
  PagePool pool(2);  // shards: 0 = global, 1..2 = workers
  bool hit = false;
  {
    ShardBinding bind(0);
    PageRef p = pool.acquire_zeroed(kOddSize, &hit);
  }
  {
    // A different size class: the same class would be steal-refilled from
    // shard 1 instead of allocating (and homing) fresh in shard 2.
    ShardBinding bind(1);
    PageRef p = pool.acquire_zeroed(kOddSize + 1, &hit);
  }
  EXPECT_EQ(pool.shard_frames_held(1), 1u);
  EXPECT_EQ(pool.shard_frames_held(2), 1u);
  EXPECT_EQ(pool.shard_frames_held(0), 0u);
}

TEST(PagePool, StealRefillPullsFromSiblingShard) {
  PagePool pool(2);
  bool hit = false;
  {
    // Worker 0 (shard 1) allocates and frees: the frame parks in shard 1.
    ShardBinding bind(0);
    PageRef p = pool.acquire_zeroed(kOddSize, &hit);
    EXPECT_FALSE(hit);
  }
  ASSERT_EQ(pool.shard_frames_held(1), 1u);
  {
    // Worker 1 (shard 2) misses locally and must steal from shard 1
    // instead of paying the system allocator.
    ShardBinding bind(1);
    PageRef p = pool.acquire_zeroed(kOddSize, &hit);
    EXPECT_TRUE(hit);
  }
  EXPECT_EQ(pool.shard_frames_held(1), 0u);
  EXPECT_GE(pool.stats().steal_refills, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(PagePool, OverflowParksInSiblingBeforeDropping) {
  PagePool pool(2);  // 3 shards x cap 1 = 3 parkable frames per class
  pool.set_capacity_per_class(1);
  bool hit = false;
  {
    ShardBinding bind(0);
    PageRef a = pool.acquire_zeroed(kOddSize, &hit);
    PageRef b = pool.acquire_zeroed(kOddSize, &hit);
    PageRef c = pool.acquire_zeroed(kOddSize, &hit);
    PageRef d = pool.acquire_zeroed(kOddSize, &hit);
    // All four die here: one fills the home class, two overflow to the
    // siblings with room, and with every shard's class full the last one
    // is dropped to the system allocator.
  }
  EXPECT_EQ(pool.frames_held(), 3u);
  EXPECT_EQ(pool.stats().recycled, 3u);
  EXPECT_EQ(pool.stats().overflows, 2u);
  EXPECT_EQ(pool.stats().dropped, 1u);
}

TEST(PagePool, MergedStatsAreSumOfShardsAndStableAcrossReads) {
  PagePool pool(3);
  bool hit = false;
  for (int i = 0; i < 4; ++i) {
    ShardBinding bind(static_cast<std::size_t>(i));
    PageRef p = pool.acquire_zeroed(kOddSize + static_cast<std::size_t>(i),
                                    &hit);
  }
  PagePool::PoolStats summed;
  for (std::size_t s = 0; s < pool.shard_count(); ++s)
    summed.merge(pool.shard_stats(s));
  const PagePool::PoolStats merged = pool.stats();
  EXPECT_EQ(merged.hits, summed.hits);
  EXPECT_EQ(merged.misses, summed.misses);
  EXPECT_EQ(merged.recycled, summed.recycled);
  EXPECT_EQ(merged.dropped, summed.dropped);
  EXPECT_EQ(merged.steal_refills, summed.steal_refills);
  EXPECT_EQ(merged.overflows, summed.overflows);

  // Merge-on-read must not consume anything: reading twice is identical.
  const PagePool::PoolStats again = pool.stats();
  EXPECT_EQ(again.hits, merged.hits);
  EXPECT_EQ(again.misses, merged.misses);
  EXPECT_EQ(again.recycled, merged.recycled);
  EXPECT_EQ(again.dropped, merged.dropped);
  EXPECT_EQ(again.steal_refills, merged.steal_refills);
  EXPECT_EQ(again.overflows, merged.overflows);

  EXPECT_EQ(merged.misses, 4u);  // four distinct size classes: all misses
}

TEST(PagePool, ClearDropsEveryShard) {
  PagePool pool(2);
  bool hit = false;
  {
    // Hold all three pages at once so each acquire allocates a distinct
    // frame (dropping between acquires would let the next one steal it).
    std::vector<PageRef> live;
    for (int i = 0; i < 3; ++i) {
      ShardBinding bind(static_cast<std::size_t>(i));
      live.push_back(pool.acquire_zeroed(kOddSize, &hit));
    }
    ShardBinding bind(0);  // drops recycle into a worker shard's home
    live.clear();
  }
  EXPECT_EQ(pool.frames_held(), 3u);
  EXPECT_EQ(pool.clear(), 3u);
  EXPECT_EQ(pool.frames_held(), 0u);
  EXPECT_EQ(pool.bytes_held(), 0u);
}

}  // namespace
}  // namespace mw
