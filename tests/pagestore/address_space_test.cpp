#include "pagestore/address_space.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

TEST(AddressSpace, TypedLoadStore) {
  AddressSpace as(64, 8);
  as.store<std::uint64_t>(8, 0xCAFEBABEull);
  EXPECT_EQ(as.load<std::uint64_t>(8), 0xCAFEBABEull);
  as.store<double>(100, 2.5);
  EXPECT_DOUBLE_EQ(as.load<double>(100), 2.5);
}

TEST(AddressSpace, StructRoundTrip) {
  struct P {
    int x;
    double y;
  };
  AddressSpace as(64, 8);
  as.store(0, P{7, 1.5});
  P p = as.load<P>(0);
  EXPECT_EQ(p.x, 7);
  EXPECT_DOUBLE_EQ(p.y, 1.5);
}

TEST(AddressSpace, SegmentsArePageAlignedAndDisjoint) {
  AddressSpace as(64, 16);
  const Segment& a = as.alloc_segment("a", 100);  // rounds to 128
  const Segment& b = as.alloc_segment("b", 1);    // rounds to 64
  EXPECT_EQ(a.base, 0u);
  EXPECT_EQ(a.size, 128u);
  EXPECT_EQ(b.base, 128u);
  EXPECT_EQ(b.size, 64u);
}

TEST(AddressSpace, FindSegment) {
  AddressSpace as(64, 16);
  as.alloc_segment("heap", 256);
  auto s = as.find_segment("heap");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->size, 256u);
  EXPECT_FALSE(as.find_segment("nope").has_value());
}

TEST(AddressSpace, ForkInheritsSegments) {
  AddressSpace as(64, 16);
  as.alloc_segment("data", 64);
  as.store<int>(0, 41);
  AddressSpace child = as.fork();
  ASSERT_TRUE(child.find_segment("data").has_value());
  EXPECT_EQ(child.load<int>(0), 41);
  // Child allocations continue after the parent's.
  const Segment& s = child.alloc_segment("more", 64);
  EXPECT_EQ(s.base, 64u);
}

TEST(AddressSpace, AdoptTakesChildSegments) {
  AddressSpace as(64, 16);
  as.alloc_segment("a", 64);
  AddressSpace child = as.fork();
  child.alloc_segment("b", 64);
  child.store<int>(64, 9);
  as.adopt(std::move(child));
  ASSERT_TRUE(as.find_segment("b").has_value());
  EXPECT_EQ(as.load<int>(64), 9);
}

TEST(AddressSpaceDeath, DuplicateSegmentNameAborts) {
  AddressSpace as(64, 16);
  as.alloc_segment("x", 64);
  EXPECT_DEATH(as.alloc_segment("x", 64), "MW_CHECK");
}

TEST(AddressSpaceDeath, SegmentOverflowAborts) {
  AddressSpace as(64, 2);
  EXPECT_DEATH(as.alloc_segment("big", 64 * 3), "MW_CHECK");
}

}  // namespace
}  // namespace mw
