// Sharded-pagestore stress: N threads hammer the pool's acquire/recycle
// paths and the parallel segment-commit pipeline concurrently, with frames
// deliberately dropped on threads (and shards) other than the ones that
// allocated them. Built as its own target so the TSan CI job can run it —
// the assertions here (exact ledger, auditor-clean, coherent merged stats)
// are meaningful exactly when the sanitizer is watching the shard locks,
// the ledger's relaxed atomics, and the concurrent extraction walks.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/runtime_auditor.hpp"
#include "pagestore/page.hpp"
#include "pagestore/page_pool.hpp"
#include "pagestore/page_table.hpp"
#include "pagestore/shard.hpp"
#include "proc/process_table.hpp"

namespace mw {
namespace {

constexpr std::size_t kThreads = 4;
constexpr std::size_t kIters = 300;
constexpr std::size_t kPageSize = 96;

TEST(PoolShardStress, CrossThreadAcquireRecycleKeepsLedgerExact) {
  const std::int64_t baseline = Page::live_instances();
  PagePool pool(kThreads);
  pool.set_capacity_per_class(8);  // force overflow/drop traffic too

  // Pages parked here by one thread are dropped by another, so destruction
  // (ledger -1, frame recycle) constantly lands on a different shard than
  // construction (+1) did.
  std::mutex exchange_mu;
  std::vector<PageRef> exchange;

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      PageShard::bind(t);
      std::uint64_t rng = 0x9e3779b9u * (t + 1);
      auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
      };
      PageRef held;
      for (std::size_t i = 0; i < kIters; ++i) {
        bool hit = false;
        PageRef p = (next() % 4 == 0 && held)
                        ? pool.acquire_copy(*held, &hit)
                        : pool.acquire_zeroed(kPageSize, &hit);
        switch (next() % 3) {
          case 0:
            held = std::move(p);  // drop the old held page on this thread
            break;
          case 1: {
            std::lock_guard<std::mutex> lock(exchange_mu);
            exchange.push_back(std::move(p));
            break;
          }
          default: {
            // Drop a page somebody else may have created.
            std::lock_guard<std::mutex> lock(exchange_mu);
            if (!exchange.empty()) {
              exchange.pop_back();
            }
            break;  // p dies here as well
          }
        }
      }
      PageShard::unbind();
    });
  }
  for (auto& th : threads) th.join();
  exchange.clear();

  // Every page is dead: the sharded ledger must sum back to the baseline
  // even though individual shard counters went negative from cross-thread
  // destruction.
  EXPECT_EQ(Page::live_instances(), baseline);

  // Merged stats stay coherent: every acquire was a hit or a miss, and
  // every hit removed exactly one parked frame net (a steal refill moves
  // the rest of its batch between shards without re-counting them), so
  // the cached population is exactly recycled minus hits.
  const PagePool::PoolStats s = pool.stats();
  EXPECT_EQ(s.hits + s.misses, kThreads * kIters);
  EXPECT_EQ(pool.frames_held(), s.recycled - s.hits);
}

TEST(PoolShardStress, ParallelSegmentCommitRoundsStayAuditorClean) {
  RuntimeAuditor auditor;
  ProcessTable procs;
  constexpr std::size_t kSegPages = 24;
  constexpr std::size_t kRounds = 12;
  {
    PageTable parent(kPageSize, kThreads * kSegPages);

    for (std::size_t round = 0; round < kRounds; ++round) {
      std::vector<PageTable> kids;
      kids.reserve(kThreads);
      for (std::size_t k = 0; k < kThreads; ++k) kids.push_back(parent.fork());

      // Each worker COW-writes its own segment of its own child; forks all
      // happened above, so the only shared state the writers touch is the
      // immutable parent tree and the sharded pool/ledger.
      std::vector<std::thread> writers;
      for (std::size_t k = 0; k < kThreads; ++k) {
        writers.emplace_back([&, k] {
          PageShard::bind(k);
          const std::size_t lo = k * kSegPages;
          for (std::size_t p = 0; p < kSegPages; ++p) {
            std::uint8_t* d = kids[k].write_page(lo + p);
            d[0] = static_cast<std::uint8_t>(round + 1);
            d[1] = static_cast<std::uint8_t>(k);
          }
          PageShard::unbind();
        });
      }
      for (auto& th : writers) th.join();

      std::vector<PageTable::SegmentAdoptOp> ops;
      for (std::size_t k = 0; k < kThreads; ++k)
        ops.push_back({&kids[k], k * kSegPages, (k + 1) * kSegPages});
      const PageTable::AdoptBatchStats batch =
          parent.adopt_segments(std::move(ops));
      ASSERT_FALSE(batch.fell_back);
      ASSERT_EQ(batch.pages_spliced, kThreads * kSegPages);

      for (std::size_t k = 0; k < kThreads; ++k) {
        const Page* p = parent.peek(k * kSegPages);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->data()[0], static_cast<std::uint8_t>(round + 1));
        EXPECT_EQ(p->data()[1], static_cast<std::uint8_t>(k));
      }
    }
    // With every child dead and every round's splice complete, the only
    // pages beyond the baseline must be the ones the parent still reaches.
    auditor.add_table(parent);
    EXPECT_TRUE(auditor.run(procs).clean())
        << auditor.run(procs).to_string();
  }
}

}  // namespace
}  // namespace mw
