// Model-based property suite for the persistent radix PageMap underneath
// PageTable: randomized fork/write/adopt/diff/eliminate sequences run
// against a faithful replica of the pre-radix flat page table, asserting
// byte-for-byte content equivalence *and* exact stats equivalence — the
// radix tree must make the same allocate/COW-break decisions the flat slot
// vector made, page for page.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "pagestore/page_table.hpp"
#include "util/rng.hpp"

namespace mw {
namespace {

// The pre-radix PageTable, verbatim semantics: flat slot vector, per-slot
// touched bits, COW break on use_count > 1.
class FlatRef {
 public:
  FlatRef(std::size_t page_size, std::size_t num_pages)
      : page_size_(page_size), slots_(num_pages), touched_(num_pages, false) {}

  std::uint8_t* write_page(std::size_t i) {
    PageRef& slot = slots_[i];
    if (!slot) {
      slot = make_page(page_size_);
      ++stats_.pages_allocated;
    } else if (slot.use_count() > 1) {
      slot = std::make_shared<Page>(*slot);
      ++stats_.pages_copied;
      stats_.bytes_copied += page_size_;
    }
    touched_[i] = true;
    ++stats_.page_writes;
    return slot->mutable_data();
  }

  void write(std::uint64_t off, const std::vector<std::uint8_t>& src) {
    std::size_t done = 0;
    while (done < src.size()) {
      const std::size_t page = (off + done) / page_size_;
      const std::size_t in_page = (off + done) % page_size_;
      const std::size_t n =
          std::min(src.size() - done, page_size_ - in_page);
      std::memcpy(write_page(page) + in_page, src.data() + done, n);
      done += n;
    }
  }

  std::vector<std::uint8_t> read_all() const {
    std::vector<std::uint8_t> out(page_size_ * slots_.size(), 0);
    for (std::size_t i = 0; i < slots_.size(); ++i)
      if (slots_[i])
        std::memcpy(out.data() + i * page_size_, slots_[i]->data(),
                    page_size_);
    return out;
  }

  FlatRef fork() const {
    FlatRef child(page_size_, slots_.size());
    child.slots_ = slots_;
    return child;
  }

  void adopt(FlatRef&& child) {
    slots_ = std::move(child.slots_);
    stats_.merge(child.stats_);
    std::fill(touched_.begin(), touched_.end(), false);
  }

  std::size_t resident_pages() const {
    std::size_t n = 0;
    for (const auto& s : slots_)
      if (s) ++n;
    return n;
  }

  std::size_t shared_pages_with(const FlatRef& other) const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i)
      if (slots_[i] && slots_[i] == other.slots_[i]) ++n;
    return n;
  }

  std::vector<std::size_t> diff(const FlatRef& other) const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < slots_.size(); ++i)
      if (slots_[i] != other.slots_[i]) out.push_back(i);
    return out;
  }

  double write_fraction() const {
    const std::size_t resident = resident_pages();
    if (resident == 0) return 0.0;
    std::size_t written = 0;
    for (bool t : touched_)
      if (t) ++written;
    return static_cast<double>(written) / static_cast<double>(resident);
  }

  const CowStats& stats() const { return stats_; }

 private:
  std::size_t page_size_;
  std::vector<PageRef> slots_;
  std::vector<bool> touched_;
  CowStats stats_;  // pool fields stay zero in the reference
};

struct WorldPair {
  PageTable table;
  FlatRef ref;
};

void expect_equivalent(const WorldPair& w, std::uint64_t seed, int step) {
  // Contents.
  std::vector<std::uint8_t> got(w.table.size_bytes());
  w.table.read(0, got);
  ASSERT_EQ(got, w.ref.read_all()) << "seed=" << seed << " step=" << step;
  // Derived measurements.
  EXPECT_EQ(w.table.resident_pages(), w.ref.resident_pages())
      << "seed=" << seed << " step=" << step;
  EXPECT_DOUBLE_EQ(w.table.write_fraction(), w.ref.write_fraction())
      << "seed=" << seed << " step=" << step;
  // Stats: the radix table must make the identical allocation and COW-break
  // decisions (page_reads differ: read_all above went through the table).
  const CowStats& a = w.table.stats();
  const CowStats& b = w.ref.stats();
  EXPECT_EQ(a.pages_allocated, b.pages_allocated) << "seed=" << seed;
  EXPECT_EQ(a.pages_copied, b.pages_copied) << "seed=" << seed;
  EXPECT_EQ(a.bytes_copied, b.bytes_copied) << "seed=" << seed;
  EXPECT_EQ(a.page_writes, b.page_writes) << "seed=" << seed;
  // Every frame came from the pool path: hits + misses == frames acquired.
  EXPECT_EQ(a.pool_hits + a.pool_misses, a.pages_allocated + a.pages_copied)
      << "seed=" << seed;
}

class PageMapModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PageMapModelTest, RandomOpsMatchFlatReference) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::size_t page_size = 1 + rng.next_below(96);
  // Bias toward sizes that exercise multi-level trees (fanout 64): up to
  // 2^13 pages spans depth 1..3.
  const std::size_t num_pages = 2 + rng.next_below(1u << (3 + rng.next_below(11)));
  const std::size_t bytes = page_size * num_pages;

  std::vector<std::unique_ptr<WorldPair>> worlds;
  worlds.push_back(std::make_unique<WorldPair>(
      WorldPair{PageTable(page_size, num_pages), FlatRef(page_size, num_pages)}));

  for (int step = 0; step < 300; ++step) {
    const std::size_t w = rng.next_below(worlds.size());
    switch (rng.next_below(12)) {
      case 0:
      case 1: {  // fork a new world
        if (worlds.size() < 8) {
          worlds.push_back(std::make_unique<WorldPair>(WorldPair{
              worlds[w]->table.fork(), worlds[w]->ref.fork()}));
        }
        break;
      }
      case 2: {  // adopt: world v absorbs (and consumes) world w
        if (worlds.size() > 1) {
          const std::size_t v = rng.next_below(worlds.size());
          if (v != w) {
            worlds[v]->table.adopt(std::move(worlds[w]->table));
            worlds[v]->ref.adopt(std::move(worlds[w]->ref));
            worlds.erase(worlds.begin() + static_cast<std::ptrdiff_t>(w));
          }
        }
        break;
      }
      case 3: {  // eliminate: drop a speculative world outright
        if (worlds.size() > 1) {
          worlds.erase(worlds.begin() + static_cast<std::ptrdiff_t>(w));
        }
        break;
      }
      case 4: {  // cross-world diff and sharing agree with the reference
        const std::size_t v = rng.next_below(worlds.size());
        EXPECT_EQ(worlds[w]->table.diff(worlds[v]->table),
                  worlds[w]->ref.diff(worlds[v]->ref))
            << "seed=" << seed << " step=" << step;
        EXPECT_EQ(worlds[w]->table.shared_pages_with(worlds[v]->table),
                  worlds[w]->ref.shared_pages_with(worlds[v]->ref))
            << "seed=" << seed << " step=" << step;
        break;
      }
      default: {  // write a random range
        const std::size_t off = rng.next_below(bytes);
        const std::size_t len = 1 + rng.next_below(bytes - off);
        std::vector<std::uint8_t> data(len);
        for (auto& b : data)
          b = static_cast<std::uint8_t>(rng.next_below(256));
        worlds[w]->table.write(off, data);
        worlds[w]->ref.write(off, data);
        break;
      }
    }
  }

  for (std::size_t w = 0; w < worlds.size(); ++w)
    expect_equivalent(*worlds[w], seed, 300 + static_cast<int>(w));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageMapModelTest,
                         ::testing::Range<std::uint64_t>(1, 33));

// Deep-tree spot check: a sparse write pattern across a 2^18-page space
// (depth-3 radix tree) round-trips and diffs correctly at the boundaries
// between leaves, inner nodes and absent subtrees.
TEST(PageMapModel, SparseDeepTreeBoundaries) {
  const std::size_t page_size = 16;
  const std::size_t num_pages = std::size_t{1} << 18;
  PageTable t(page_size, num_pages);
  FlatRef ref(page_size, num_pages);

  const std::size_t probes[] = {0,     63,     64,     4095,   4096,
                                4097,  262143, 131072, 65535,  65536};
  std::uint8_t v = 1;
  for (std::size_t p : probes) {
    std::vector<std::uint8_t> data{v++};
    t.write(p * page_size, data);
    ref.write(p * page_size, data);
  }
  EXPECT_EQ(t.resident_pages(), ref.resident_pages());

  PageTable child = t.fork();
  std::vector<std::uint8_t> data{0xAA};
  child.write(std::uint64_t{4096} * page_size, data);
  child.write(std::uint64_t{262143} * page_size, data);
  EXPECT_EQ(child.diff(t), (std::vector<std::size_t>{4096, 262143}));
  EXPECT_EQ(child.shared_pages_with(t), t.resident_pages() - 2);

  for (std::size_t p : probes) {
    std::vector<std::uint8_t> got(1);
    t.read(p * page_size, got);
    std::vector<std::uint8_t> want(1);
    std::memcpy(want.data(), ref.read_all().data() + p * page_size, 1);
    EXPECT_EQ(got, want) << "page " << p;
  }
}

}  // namespace
}  // namespace mw
