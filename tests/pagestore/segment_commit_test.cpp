// Segment commits: the parallel-commit half of the sharded pagestore.
// Deterministic functional coverage — extraction confinement, disjoint
// batch splicing, overlap/escape fallback to serialized adopts, and the
// World/AddressSpace wrappers — all on the main thread; the concurrent
// behaviour rides in pool_shard_stress_test under TSan.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/runtime_auditor.hpp"
#include "core/world.hpp"
#include "pagestore/address_space.hpp"
#include "pagestore/page_table.hpp"
#include "proc/process_table.hpp"

namespace mw {
namespace {

constexpr std::size_t kPageSize = 64;

void stamp(PageTable& t, std::size_t page, std::uint8_t v) {
  t.write_page(page)[0] = v;
}

std::uint8_t first_byte(const PageTable& t, std::size_t page) {
  const Page* p = t.peek(page);
  return p ? p->data()[0] : 0;
}

TEST(SegmentCommit, ExtractIsConfinedAndApplySplices) {
  PageTable parent(kPageSize, 128);
  for (std::size_t p = 0; p < 16; ++p) stamp(parent, p, 1);

  PageTable child = parent.fork();
  stamp(child, 4, 42);   // COW break inside [0, 16)
  stamp(child, 40, 43);  // fresh page inside [32, 48)

  // Confined to [0, 16): page 40 counts as escaped, page 4 is collected.
  PageMap::RangeDelta d = parent.extract_segment(child, 0, 16);
  EXPECT_FALSE(d.confined());
  EXPECT_EQ(d.out_of_range, 1u);
  ASSERT_EQ(d.index.size(), 1u);
  EXPECT_EQ(d.index[0], 4u);

  // Confined to the child's full write set: everything is collected.
  d = parent.extract_segment(child, 0, 48);
  EXPECT_TRUE(d.confined());
  ASSERT_EQ(d.index.size(), 2u);

  const std::size_t spliced = parent.apply_segment(d, child.stats());
  EXPECT_EQ(spliced, 2u);
  EXPECT_EQ(first_byte(parent, 4), 42);
  EXPECT_EQ(first_byte(parent, 40), 43);
  EXPECT_EQ(first_byte(parent, 5), 1);  // untouched pages survive
  EXPECT_EQ(parent.resident_pages(), 17u);
  // The write-fraction clock restarts, exactly like a full adopt.
  EXPECT_DOUBLE_EQ(parent.write_fraction(), 0.0);
}

TEST(SegmentCommit, BaseAdvancingAfterForkIsNotAChildWrite) {
  PageTable parent(kPageSize, 64);
  stamp(parent, 0, 1);
  PageTable child = parent.fork();
  stamp(parent, 9, 7);  // the base moves on; the child never wrote page 9

  PageMap::RangeDelta d = parent.extract_segment(child, 0, 64);
  // child-null/base-nonnull differences are ignored: a fork cannot remove
  // a page, so page 9 must neither splice nor count as escaped.
  EXPECT_TRUE(d.confined());
  EXPECT_TRUE(d.index.empty());
  parent.apply_segment(d, child.stats());
  EXPECT_EQ(first_byte(parent, 9), 7);
}

TEST(SegmentCommit, DisjointBatchCommitsEveryChildInParallel) {
  PageTable parent(kPageSize, 192);
  for (std::size_t p = 0; p < 192; ++p) stamp(parent, p, 1);

  std::vector<PageTable> kids;
  for (std::size_t k = 0; k < 3; ++k) kids.push_back(parent.fork());
  for (std::size_t k = 0; k < 3; ++k)
    for (std::size_t p = 0; p < 8; ++p)
      stamp(kids[k], k * 64 + p, static_cast<std::uint8_t>(100 + k));

  std::vector<PageTable::SegmentAdoptOp> ops;
  for (std::size_t k = 0; k < 3; ++k)
    ops.push_back({&kids[k], k * 64, (k + 1) * 64});
  const PageTable::AdoptBatchStats batch =
      parent.adopt_segments(std::move(ops));

  EXPECT_EQ(batch.children, 3u);
  EXPECT_EQ(batch.pages_spliced, 24u);
  EXPECT_EQ(batch.out_of_range, 0u);
  EXPECT_TRUE(batch.parallel);
  EXPECT_FALSE(batch.fell_back);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(first_byte(parent, k * 64),
              static_cast<std::uint8_t>(100 + k));
    EXPECT_EQ(first_byte(parent, k * 64 + 63), 1);
  }
}

TEST(SegmentCommit, OverlappingRangesFallBackToSerialOrder) {
  PageTable parent(kPageSize, 64);
  PageTable a = parent.fork();
  PageTable b = parent.fork();
  stamp(a, 10, 50);
  stamp(b, 10, 60);  // both write page 10; declared ranges overlap

  std::vector<PageTable::SegmentAdoptOp> ops;
  ops.push_back({&a, 0, 32});
  ops.push_back({&b, 16, 48});
  const PageTable::AdoptBatchStats batch =
      parent.adopt_segments(std::move(ops));

  EXPECT_TRUE(batch.fell_back);
  EXPECT_FALSE(batch.parallel);
  // Serialized semantics: children adopted in vector order, last writer
  // (b) wins the contended page.
  EXPECT_EQ(first_byte(parent, 10), 60);
  EXPECT_EQ(batch.pages_spliced, 2u);
}

TEST(SegmentCommit, EscapedWriteFallsBackAndStillLands) {
  PageTable parent(kPageSize, 64);
  PageTable a = parent.fork();
  PageTable b = parent.fork();
  stamp(a, 1, 50);
  stamp(a, 55, 51);  // outside a's declared [0, 32): ownership violated
  stamp(b, 40, 60);

  std::vector<PageTable::SegmentAdoptOp> ops;
  ops.push_back({&a, 0, 32});
  ops.push_back({&b, 32, 64});
  const PageTable::AdoptBatchStats batch =
      parent.adopt_segments(std::move(ops));

  EXPECT_TRUE(batch.fell_back);
  // The fallback re-extracts over the full range, so the escaped write is
  // not lost — it commits with serialized semantics instead.
  EXPECT_EQ(first_byte(parent, 1), 50);
  EXPECT_EQ(first_byte(parent, 55), 51);
  EXPECT_EQ(first_byte(parent, 40), 60);
  EXPECT_EQ(batch.pages_spliced, 3u);
}

TEST(SegmentCommit, StatsMergeExactlyOncePerChild) {
  PageTable parent(kPageSize, 128);
  PageTable a = parent.fork();
  PageTable b = parent.fork();
  for (std::size_t p = 0; p < 4; ++p) stamp(a, p, 2);
  for (std::size_t p = 64; p < 70; ++p) stamp(b, p, 3);
  const std::uint64_t expected = parent.stats().pages_allocated +
                                 a.stats().pages_allocated +
                                 b.stats().pages_allocated;

  std::vector<PageTable::SegmentAdoptOp> ops;
  ops.push_back({&a, 0, 64});
  ops.push_back({&b, 64, 128});
  parent.adopt_segments(std::move(ops));
  EXPECT_EQ(parent.stats().pages_allocated, expected);
}

TEST(SegmentCommit, AddressSpaceSegmentsMapToPageRanges) {
  AddressSpace space(kPageSize, 64);
  const Segment s0 = space.alloc_segment("a", 16 * kPageSize);
  const Segment s1 = space.alloc_segment("b", 16 * kPageSize);
  EXPECT_EQ(space.page_range(s0), (std::pair<std::size_t, std::size_t>{0, 16}));
  EXPECT_EQ(space.page_range(s1),
            (std::pair<std::size_t, std::size_t>{16, 32}));

  AddressSpace c0 = space.fork();
  AddressSpace c1 = space.fork();
  c0.store<std::uint32_t>(s0.base, 0xAAu);
  c1.store<std::uint32_t>(s1.base, 0xBBu);

  const PageTable::AdoptBatchStats batch =
      space.adopt_parallel({{&c0, s0}, {&c1, s1}});
  EXPECT_FALSE(batch.fell_back);
  EXPECT_EQ(batch.pages_spliced, 2u);
  EXPECT_EQ(space.load<std::uint32_t>(s0.base), 0xAAu);
  EXPECT_EQ(space.load<std::uint32_t>(s1.base), 0xBBu);
}

TEST(SegmentCommit, WorldsCommitInParallelAndAuditClean) {
  RuntimeAuditor auditor;
  ProcessTable procs;
  {
    World parent(procs, kPageSize, 128, "parent");
    const Segment left = parent.space().alloc_segment("left", 64 * kPageSize);
    const Segment right =
        parent.space().alloc_segment("right", 64 * kPageSize);

    const Pid p0 = procs.create(parent.pid());
    const Pid p1 = procs.create(parent.pid());
    World w0 = parent.fork_alternative(p0, {p0, p1});
    World w1 = parent.fork_alternative(p1, {p0, p1});
    w0.space().store<std::uint64_t>(left.base, 7);
    w1.space().store<std::uint64_t>(right.base, 9);

    const PageTable::AdoptBatchStats batch =
        parent.commit_from_parallel({{&w0, left}, {&w1, right}});
    EXPECT_FALSE(batch.fell_back);
    EXPECT_EQ(batch.children, 2u);
    EXPECT_EQ(parent.space().load<std::uint64_t>(left.base), 7u);
    EXPECT_EQ(parent.space().load<std::uint64_t>(right.base), 9u);
    procs.set_status(p0, ProcStatus::kSynced);
    procs.set_status(p1, ProcStatus::kSynced);
    procs.set_status(parent.pid(), ProcStatus::kSynced);
  }
  // Every world is gone: the commit must not have leaked a single page.
  EXPECT_TRUE(auditor.run(procs).clean()) << auditor.run(procs).to_string();
}

TEST(SegmentCommit, SingleChildAdoptSegmentViaWorld) {
  ProcessTable procs;
  World parent(procs, kPageSize, 64, "parent");
  const Segment seg = parent.space().alloc_segment("seg", 8 * kPageSize);
  World child = parent.clone_with_predicates(PredicateSet{}, "child");
  child.space().store<std::uint32_t>(seg.base, 123u);

  const std::size_t spliced =
      parent.commit_from_segment(std::move(child), seg);
  EXPECT_EQ(spliced, 1u);
  EXPECT_EQ(parent.space().load<std::uint32_t>(seg.base), 123u);
}

}  // namespace
}  // namespace mw
