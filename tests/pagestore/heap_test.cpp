#include "pagestore/heap.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

AddressSpace make_space() {
  AddressSpace as(256, 64);
  as.alloc_segment("heap", 256 * 32);
  return as;
}

TEST(WorldHeap, AllocReturnsDistinctBlocks) {
  AddressSpace as = make_space();
  WorldHeap h(as, "heap", /*format=*/true);
  auto a = h.alloc(16);
  auto b = h.alloc(16);
  EXPECT_NE(a, b);
  EXPECT_EQ(h.live_blocks(), 2u);
}

TEST(WorldHeap, DataSurvivesInPages) {
  AddressSpace as = make_space();
  WorldHeap h(as, "heap", true);
  auto off = h.alloc(8);
  as.store<std::uint64_t>(off, 0xFEEDu);
  EXPECT_EQ(as.load<std::uint64_t>(off), 0xFEEDu);
}

TEST(WorldHeap, FreeAndReuse) {
  AddressSpace as = make_space();
  WorldHeap h(as, "heap", true);
  auto a = h.alloc(32);
  h.free(a);
  EXPECT_EQ(h.live_blocks(), 0u);
  auto b = h.alloc(32);
  EXPECT_EQ(a, b);  // first-fit reuses the freed block
}

TEST(WorldHeap, SmallerRequestReusesLargerFreeBlock) {
  AddressSpace as = make_space();
  WorldHeap h(as, "heap", true);
  auto a = h.alloc(64);
  h.free(a);
  auto b = h.alloc(8);
  EXPECT_EQ(a, b);
}

TEST(WorldHeap, LiveBytesTracksPayloads) {
  AddressSpace as = make_space();
  WorldHeap h(as, "heap", true);
  h.alloc(8);
  h.alloc(24);
  EXPECT_EQ(h.live_bytes(), 32u);
}

TEST(WorldHeap, RoundsPayloadToAlignment) {
  AddressSpace as = make_space();
  WorldHeap h(as, "heap", true);
  auto a = h.alloc(3);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(h.live_bytes(), 8u);
}

TEST(WorldHeap, HeapStateForksWithTheWorld) {
  AddressSpace parent = make_space();
  WorldHeap ph(parent, "heap", true);
  auto a = ph.alloc(16);
  parent.store<int>(a, 1);

  AddressSpace childspace = parent.fork();
  WorldHeap ch(childspace, "heap", /*format=*/false);  // attach, not format
  auto b = ch.alloc(16);
  childspace.store<int>(b, 2);

  // The child heap continued from the parent's brk; the parent heap is
  // unaware of the child's block.
  EXPECT_NE(a, b);
  EXPECT_EQ(ph.live_blocks(), 1u);
  EXPECT_EQ(ch.live_blocks(), 2u);
  EXPECT_EQ(childspace.load<int>(a), 1);
}

TEST(WorldHeap, SiblingHeapsDivergeWithoutInterference) {
  AddressSpace parent = make_space();
  WorldHeap ph(parent, "heap", true);
  ph.alloc(16);

  AddressSpace s1 = parent.fork();
  AddressSpace s2 = parent.fork();
  WorldHeap h1(s1, "heap", false);
  WorldHeap h2(s2, "heap", false);
  auto b1 = h1.alloc(8);
  auto b2 = h2.alloc(8);
  // Same offset in both worlds — they are different pages after COW.
  EXPECT_EQ(b1, b2);
  s1.store<int>(b1, 111);
  s2.store<int>(b2, 222);
  EXPECT_EQ(s1.load<int>(b1), 111);
  EXPECT_EQ(s2.load<int>(b2), 222);
}

TEST(WorldHeap, CommitCarriesChildAllocations) {
  AddressSpace parent = make_space();
  WorldHeap ph(parent, "heap", true);
  AddressSpace child = parent.fork();
  WorldHeap ch(child, "heap", false);
  auto a = ch.alloc(8);
  child.store<int>(a, 77);
  parent.adopt(std::move(child));
  WorldHeap reattached(parent, "heap", false);
  EXPECT_EQ(reattached.live_blocks(), 1u);
  EXPECT_EQ(parent.load<int>(a), 77);
}

TEST(WorldHeapDeath, DoubleFreeAborts) {
  AddressSpace as = make_space();
  WorldHeap h(as, "heap", true);
  auto a = h.alloc(8);
  h.free(a);
  EXPECT_DEATH(h.free(a), "MW_CHECK");
}

TEST(WorldHeapDeath, AttachToUnformattedAborts) {
  AddressSpace as = make_space();
  EXPECT_DEATH(WorldHeap(as, "heap", false), "MW_CHECK");
}

TEST(WorldHeapDeath, ExhaustionAborts) {
  AddressSpace as(64, 8);
  as.alloc_segment("heap", 64 * 2);
  WorldHeap h(as, "heap", true);
  EXPECT_DEATH(
      {
        for (int i = 0; i < 100; ++i) h.alloc(32);
      },
      "MW_CHECK");
}

}  // namespace
}  // namespace mw
