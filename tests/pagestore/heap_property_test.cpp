// Property fuzz for the in-page allocator: random alloc/free sequences
// checked against a reference model (a map of live blocks), with payload
// integrity verified through COW forks.
#include <gtest/gtest.h>

#include <map>

#include "pagestore/heap.hpp"
#include "util/rng.hpp"

namespace mw {
namespace {

class HeapPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeapPropertyTest, RandomAllocFreeMatchesModel) {
  Rng rng(GetParam());
  AddressSpace space(256, 128);
  space.alloc_segment("heap", 256 * 96);
  WorldHeap heap(space, "heap", /*format=*/true);

  // Model: offset -> (size, fill byte).
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint8_t>> live;

  for (int step = 0; step < 300; ++step) {
    if (live.empty() || rng.next_bool(0.6)) {
      const std::uint64_t size = 1 + rng.next_below(96);
      const std::uint64_t off = heap.alloc(size);
      // Freshly allocated blocks never overlap a live block.
      for (const auto& [o, meta] : live) {
        const auto& [sz, fill] = meta;
        EXPECT_TRUE(off + size <= o || o + sz <= off)
            << "overlap at step " << step;
      }
      const auto fill = static_cast<std::uint8_t>(rng.next_below(256));
      std::vector<std::uint8_t> payload(size, fill);
      space.write(off, payload);
      live[off] = {size, fill};
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.next_below(live.size())));
      heap.free(it->first);
      live.erase(it);
    }
    EXPECT_EQ(heap.live_blocks(), live.size());
  }

  // Every live payload is intact.
  for (const auto& [off, meta] : live) {
    const auto& [size, fill] = meta;
    std::vector<std::uint8_t> got(size);
    space.read(off, got);
    for (std::uint8_t b : got) ASSERT_EQ(b, fill) << "offset " << off;
  }

  // And survives a COW fork + commit round trip.
  AddressSpace child = space.fork();
  WorldHeap child_heap(child, "heap", /*format=*/false);
  const std::uint64_t extra = child_heap.alloc(16);
  child.store<std::uint64_t>(extra, 0xABCD);
  space.adopt(std::move(child));
  for (const auto& [off, meta] : live) {
    const auto& [size, fill] = meta;
    std::vector<std::uint8_t> got(size);
    space.read(off, got);
    for (std::uint8_t b : got) ASSERT_EQ(b, fill);
  }
  EXPECT_EQ(space.load<std::uint64_t>(extra), 0xABCDu);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace mw
