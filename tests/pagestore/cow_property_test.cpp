// Property suite: a COW page table must be observationally equivalent to a
// flat byte array, for any interleaving of reads, writes, forks and
// commits. The reference model is a plain std::vector<uint8_t> per world.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "pagestore/page_table.hpp"
#include "util/rng.hpp"

namespace mw {
namespace {

struct WorldPair {
  PageTable table;
  std::vector<std::uint8_t> model;
};

class CowPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CowPropertyTest, RandomOpsMatchFlatModel) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::size_t page_size = 1 + rng.next_below(96);
  const std::size_t num_pages = 2 + rng.next_below(14);
  const std::size_t bytes = page_size * num_pages;

  std::vector<WorldPair> worlds;
  worlds.push_back(
      WorldPair{PageTable(page_size, num_pages),
                std::vector<std::uint8_t>(bytes, 0)});

  for (int step = 0; step < 400; ++step) {
    const std::size_t w = rng.next_below(worlds.size());
    switch (rng.next_below(10)) {
      case 0: {  // fork a new world
        if (worlds.size() < 8) {
          worlds.push_back(
              WorldPair{worlds[w].table.fork(), worlds[w].model});
        }
        break;
      }
      case 1: {  // commit world w into world v (distinct)
        if (worlds.size() > 1) {
          std::size_t v = rng.next_below(worlds.size());
          if (v != w) {
            worlds[v].table.adopt(worlds[w].table.fork());
            worlds[v].model = worlds[w].model;
          }
        }
        break;
      }
      default: {  // read or write a random range
        const std::size_t off = rng.next_below(bytes);
        const std::size_t len = 1 + rng.next_below(bytes - off);
        if (rng.next_bool(0.5)) {
          std::vector<std::uint8_t> data(len);
          for (auto& b : data)
            b = static_cast<std::uint8_t>(rng.next_below(256));
          worlds[w].table.write(off, data);
          std::copy(data.begin(), data.end(), worlds[w].model.begin() + off);
        } else {
          std::vector<std::uint8_t> got(len);
          worlds[w].table.read(off, got);
          const std::vector<std::uint8_t> want(
              worlds[w].model.begin() + off,
              worlds[w].model.begin() + off + len);
          ASSERT_EQ(got, want) << "seed=" << seed << " step=" << step;
        }
        break;
      }
    }
  }

  // Final sweep: every world still matches its model end-to-end.
  for (std::size_t w = 0; w < worlds.size(); ++w) {
    std::vector<std::uint8_t> got(bytes);
    worlds[w].table.read(0, got);
    ASSERT_EQ(got, worlds[w].model) << "seed=" << seed << " world=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CowPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 25));

// Sharing invariant: after a fork and k distinct page writes in the child,
// exactly resident-k pages remain shared.
class CowSharingTest : public ::testing::TestWithParam<int> {};

TEST_P(CowSharingTest, SharedPagesDropExactlyPerWrittenPage) {
  const int k = GetParam();
  const std::size_t page = 32, pages = 16;
  PageTable parent(page, pages);
  std::vector<std::uint8_t> one{1};
  for (std::size_t p = 0; p < pages; ++p) parent.write(p * page, one);
  PageTable child = parent.fork();
  for (int i = 0; i < k; ++i) child.write(static_cast<std::uint64_t>(i) * page, one);
  EXPECT_EQ(child.shared_pages_with(parent), pages - static_cast<std::size_t>(k));
  EXPECT_EQ(child.stats().pages_copied, static_cast<std::uint64_t>(k));
  EXPECT_NEAR(child.write_fraction(), static_cast<double>(k) / pages, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(WriteCounts, CowSharingTest,
                         ::testing::Values(0, 1, 2, 4, 8, 16));

}  // namespace
}  // namespace mw
