#include "pagestore/page_table.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "pagestore/page_pool.hpp"

namespace mw {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int x : v) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

std::vector<std::uint8_t> read_vec(const PageTable& t, std::uint64_t off,
                                   std::size_t n) {
  std::vector<std::uint8_t> out(n);
  t.read(off, out);
  return out;
}

TEST(PageTable, FreshTableReadsZero) {
  PageTable t(64, 4);
  EXPECT_EQ(read_vec(t, 0, 16), std::vector<std::uint8_t>(16, 0));
  EXPECT_EQ(t.resident_pages(), 0u);
}

TEST(PageTable, WriteThenReadBack) {
  PageTable t(64, 4);
  auto data = bytes({1, 2, 3, 4});
  t.write(10, data);
  EXPECT_EQ(read_vec(t, 10, 4), data);
  EXPECT_EQ(t.resident_pages(), 1u);
}

TEST(PageTable, WriteSpanningPages) {
  PageTable t(8, 4);
  std::vector<std::uint8_t> data(20);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i + 1);
  t.write(4, data);  // spans pages 0,1,2
  EXPECT_EQ(read_vec(t, 4, 20), data);
  EXPECT_EQ(t.resident_pages(), 3u);
}

TEST(PageTable, ForkSharesAllPages) {
  PageTable parent(64, 8);
  parent.write(0, bytes({9}));
  parent.write(64 * 3, bytes({7}));
  PageTable child = parent.fork();
  EXPECT_EQ(child.shared_pages_with(parent), 2u);
  EXPECT_EQ(read_vec(child, 0, 1), bytes({9}));
}

TEST(PageTable, ChildWriteDoesNotTouchParent) {
  PageTable parent(64, 4);
  parent.write(0, bytes({1}));
  PageTable child = parent.fork();
  child.write(0, bytes({2}));
  EXPECT_EQ(read_vec(parent, 0, 1), bytes({1}));
  EXPECT_EQ(read_vec(child, 0, 1), bytes({2}));
}

TEST(PageTable, ParentWriteDoesNotTouchChild) {
  PageTable parent(64, 4);
  parent.write(0, bytes({1}));
  PageTable child = parent.fork();
  parent.write(0, bytes({3}));
  EXPECT_EQ(read_vec(child, 0, 1), bytes({1}));
}

TEST(PageTable, CowBreaksOnlyWrittenPage) {
  PageTable parent(64, 8);
  for (int p = 0; p < 4; ++p) parent.write(64 * p, bytes({p + 1}));
  PageTable child = parent.fork();
  child.write(64, bytes({99}));
  EXPECT_EQ(child.shared_pages_with(parent), 3u);
  EXPECT_EQ(child.stats().pages_copied, 1u);
}

TEST(PageTable, RepeatedWritesCopyOnce) {
  PageTable parent(64, 4);
  parent.write(0, bytes({1}));
  PageTable child = parent.fork();
  for (int i = 0; i < 10; ++i) child.write(0, bytes({i}));
  EXPECT_EQ(child.stats().pages_copied, 1u);
}

TEST(PageTable, WriteToOwnPageNeedsNoCopy) {
  PageTable t(64, 4);
  t.write(0, bytes({1}));
  t.write(1, bytes({2}));
  EXPECT_EQ(t.stats().pages_copied, 0u);
  EXPECT_EQ(t.stats().pages_allocated, 1u);
}

TEST(PageTable, SiblingForksDivergeIndependently) {
  PageTable parent(64, 4);
  parent.write(0, bytes({5}));
  PageTable a = parent.fork();
  PageTable b = parent.fork();
  a.write(0, bytes({6}));
  b.write(0, bytes({7}));
  EXPECT_EQ(read_vec(parent, 0, 1), bytes({5}));
  EXPECT_EQ(read_vec(a, 0, 1), bytes({6}));
  EXPECT_EQ(read_vec(b, 0, 1), bytes({7}));
}

TEST(PageTable, AdoptReplacesContent) {
  PageTable parent(64, 4);
  parent.write(0, bytes({1}));
  PageTable child = parent.fork();
  child.write(0, bytes({42}));
  child.write(64, bytes({43}));
  parent.adopt(std::move(child));
  EXPECT_EQ(read_vec(parent, 0, 1), bytes({42}));
  EXPECT_EQ(read_vec(parent, 64, 1), bytes({43}));
}

TEST(PageTable, AdoptMergesStats) {
  PageTable parent(64, 4);
  parent.write(0, bytes({1}));  // 1 allocation
  PageTable child = parent.fork();
  child.write(0, bytes({2}));   // 1 copy
  child.write(64, bytes({3}));  // 1 allocation
  parent.adopt(std::move(child));
  EXPECT_EQ(parent.stats().pages_allocated, 2u);
  EXPECT_EQ(parent.stats().pages_copied, 1u);
}

TEST(PageTable, DiffFindsChangedPages) {
  PageTable parent(64, 8);
  parent.write(0, bytes({1}));
  parent.write(64, bytes({2}));
  PageTable child = parent.fork();
  child.write(64, bytes({9}));
  child.write(64 * 5, bytes({8}));
  auto d = child.diff(parent);
  EXPECT_EQ(d, (std::vector<std::size_t>{1, 5}));
}

TEST(PageTable, WriteFractionTracksTouchedShare) {
  PageTable parent(64, 10);
  for (int p = 0; p < 4; ++p) parent.write(64 * p, bytes({1}));
  PageTable child = parent.fork();
  child.write(0, bytes({2}));
  // 1 touched of 4 resident.
  EXPECT_DOUBLE_EQ(child.write_fraction(), 0.25);
}

TEST(PageTable, WriteFractionEmptyIsZero) {
  PageTable t(64, 4);
  EXPECT_DOUBLE_EQ(t.write_fraction(), 0.0);
}

TEST(PageTable, GrandchildForkChains) {
  PageTable a(64, 4);
  a.write(0, bytes({1}));
  PageTable b = a.fork();
  b.write(64, bytes({2}));
  PageTable c = b.fork();
  c.write(128, bytes({3}));
  EXPECT_EQ(read_vec(c, 0, 1), bytes({1}));
  EXPECT_EQ(read_vec(c, 64, 1), bytes({2}));
  EXPECT_EQ(read_vec(c, 128, 1), bytes({3}));
  // Page 0 shared across all three generations.
  EXPECT_EQ(c.shared_pages_with(a), 1u);
  EXPECT_EQ(c.shared_pages_with(b), 2u);
}

// Nested speculation: a 3-level fork chain adopted bottom-up must merge
// each level's accounting exactly once — no drops, no double counts.
TEST(PageTable, NestedAdoptMergesStatsExactlyOnce) {
  PageTable root(64, 8);
  root.write(0, bytes({1}));  // root: 1 allocation
  PageTable mid = root.fork();
  mid.write(0, bytes({2}));   // mid: 1 copy
  mid.write(64, bytes({3}));  // mid: 1 allocation
  PageTable leaf = mid.fork();
  leaf.write(64, bytes({4}));   // leaf: 1 copy
  leaf.write(128, bytes({5}));  // leaf: 1 allocation
  leaf.write(128, bytes({6}));  // leaf: in-place, no new alloc/copy

  mid.adopt(std::move(leaf));
  EXPECT_EQ(mid.stats().pages_allocated, 2u);
  EXPECT_EQ(mid.stats().pages_copied, 2u);
  EXPECT_EQ(mid.stats().page_writes, 5u);

  root.adopt(std::move(mid));
  EXPECT_EQ(root.stats().pages_allocated, 3u);
  EXPECT_EQ(root.stats().pages_copied, 2u);
  EXPECT_EQ(root.stats().bytes_copied, 2u * 64u);
  EXPECT_EQ(root.stats().page_writes, 6u);
  // Every frame acquisition is accounted as either a pool hit or a miss.
  EXPECT_EQ(root.stats().pool_hits + root.stats().pool_misses,
            root.stats().pages_allocated + root.stats().pages_copied);
  // Adopted content is the leaf's.
  EXPECT_EQ(read_vec(root, 0, 1), bytes({2}));
  EXPECT_EQ(read_vec(root, 64, 1), bytes({4}));
  EXPECT_EQ(read_vec(root, 128, 1), bytes({6}));
}

TEST(PageTable, AdoptResetsWriteFractionClock) {
  PageTable parent(64, 8);
  for (int p = 0; p < 4; ++p) parent.write(64 * p, bytes({1}));
  PageTable child = parent.fork();
  child.write(0, bytes({2}));
  parent.adopt(std::move(child));
  // The commit restarts the "written since last fork/adopt" measurement.
  EXPECT_DOUBLE_EQ(parent.write_fraction(), 0.0);
  parent.write(64, bytes({3}));
  EXPECT_DOUBLE_EQ(parent.write_fraction(), 0.25);
}

TEST(PageTable, PoolRecyclesFramesFromDroppedWorlds) {
  const std::size_t kPageSize = 104;  // private size class for this test
  PagePool::global().clear();
  PageTable parent(kPageSize, 8);
  std::vector<std::uint8_t> one{1};
  for (int p = 0; p < 4; ++p) parent.write(kPageSize * p, one);
  EXPECT_EQ(parent.stats().pool_hits, 0u);
  EXPECT_EQ(parent.stats().pool_misses, 4u);
  {
    // A speculative child breaks sharing on every page, then is eliminated.
    PageTable child = parent.fork();
    for (int p = 0; p < 4; ++p) child.write(kPageSize * p, one);
    EXPECT_EQ(child.stats().pages_copied, 4u);
  }
  // The eliminated child's frames were salvaged; new allocations reuse them.
  PageTable next = parent.fork();
  for (int p = 4; p < 8; ++p) next.write(kPageSize * p, one);
  EXPECT_EQ(next.stats().pages_allocated, 4u);
  EXPECT_EQ(next.stats().pool_hits, 4u);
  EXPECT_EQ(next.stats().pool_misses, 0u);
}

TEST(PageTable, RecycledFramesReadAsZero) {
  const std::size_t kPageSize = 88;  // private size class for this test
  PagePool::global().clear();
  {
    PageTable dirty(kPageSize, 2);
    std::vector<std::uint8_t> junk(kPageSize, 0xEE);
    dirty.write(0, junk);
    dirty.write(kPageSize, junk);
  }  // both dirty frames land in the pool
  PageTable fresh(kPageSize, 2);
  std::vector<std::uint8_t> got(kPageSize);
  fresh.read(0, got);
  EXPECT_EQ(got, std::vector<std::uint8_t>(kPageSize, 0));
  fresh.write(0, bytes({9}));  // zero-fill-on-demand from a recycled frame
  EXPECT_EQ(fresh.stats().pool_hits, 1u);
  fresh.read(0, got);
  std::vector<std::uint8_t> want(kPageSize, 0);
  want[0] = 9;
  EXPECT_EQ(got, want);
}

TEST(CowStats, MergeCoversEveryFieldIncludingPoolCounters) {
  // Regression: merge() must absorb every counter — pool_hits/pool_misses
  // were added after the original field set, and under per-shard
  // merge-on-read accounting a field merge() misses silently vanishes from
  // every adopted child's totals.
  CowStats a;
  a.pages_allocated = 1;
  a.pages_copied = 2;
  a.bytes_copied = 3;
  a.page_writes = 4;
  a.page_reads = 5;
  a.pool_hits = 6;
  a.pool_misses = 7;
  CowStats b;
  b.pages_allocated = 10;
  b.pages_copied = 20;
  b.bytes_copied = 30;
  b.page_writes = 40;
  b.page_reads = 50;
  b.pool_hits = 60;
  b.pool_misses = 70;

  a.merge(b);
  EXPECT_EQ(a.pages_allocated, 11u);
  EXPECT_EQ(a.pages_copied, 22u);
  EXPECT_EQ(a.bytes_copied, 33u);
  EXPECT_EQ(a.page_writes, 44u);
  EXPECT_EQ(a.page_reads, 55u);
  EXPECT_EQ(a.pool_hits, 66u);
  EXPECT_EQ(a.pool_misses, 77u);

  // Merging a default (all-zero) CowStats is the identity.
  a.merge(CowStats{});
  EXPECT_EQ(a.pages_allocated, 11u);
  EXPECT_EQ(a.pool_hits, 66u);
  EXPECT_EQ(a.pool_misses, 77u);
}

TEST(CowStats, PoolCountersFlowThroughAdopt) {
  PageTable parent(64, 8);
  PageTable child = parent.fork();
  child.write_page(0);
  child.write_page(1);
  const std::uint64_t child_pool_ops =
      child.stats().pool_hits + child.stats().pool_misses;
  EXPECT_EQ(child_pool_ops, 2u);

  parent.adopt(std::move(child));
  EXPECT_EQ(parent.stats().pool_hits + parent.stats().pool_misses,
            child_pool_ops);
}

TEST(PageTableDeath, OutOfRangeReadAborts) {
  PageTable t(64, 2);
  std::vector<std::uint8_t> buf(1);
  EXPECT_DEATH(t.read(128, buf), "MW_CHECK");
}

TEST(PageTableDeath, OutOfRangeWriteAborts) {
  PageTable t(64, 2);
  EXPECT_DEATH(t.write(127, bytes({1, 2})), "MW_CHECK");
}

}  // namespace
}  // namespace mw
