// Rule-of-five audit for Page's live-instance ledger: every way a Page can
// be created, copied, moved, assigned or destroyed must keep the global
// count exact — the runtime auditor's leak arithmetic depends on it. The
// original implementation defaulted copy-assignment while hand-writing the
// copy constructor; these tests pin down the full matrix so the ledger can
// never drift again.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "pagestore/page.hpp"
#include "pagestore/page_pool.hpp"

namespace mw {
namespace {

class PageLedgerTest : public ::testing::Test {
 protected:
  std::int64_t baseline_ = Page::live_instances();
  std::int64_t delta() const { return Page::live_instances() - baseline_; }
};

TEST_F(PageLedgerTest, ConstructAndDestroy) {
  {
    Page p(16);
    EXPECT_EQ(delta(), 1);
  }
  EXPECT_EQ(delta(), 0);
}

TEST_F(PageLedgerTest, CopyConstructCounts) {
  {
    Page a(16);
    Page b(a);
    EXPECT_EQ(delta(), 2);
  }
  EXPECT_EQ(delta(), 0);
}

TEST_F(PageLedgerTest, MoveConstructCountsBothUntilDestroyed) {
  {
    Page a(16);
    Page b(std::move(a));
    // The moved-from page is still a live object until its destructor runs.
    EXPECT_EQ(delta(), 2);
  }
  EXPECT_EQ(delta(), 0);
}

TEST_F(PageLedgerTest, CopyAssignIsLedgerNeutral) {
  {
    Page a(16);
    Page b(8);
    b = a;  // assignment neither creates nor destroys a Page
    EXPECT_EQ(delta(), 2);
    EXPECT_EQ(b.size(), 16u);
  }
  EXPECT_EQ(delta(), 0);
}

TEST_F(PageLedgerTest, MoveAssignIsLedgerNeutral) {
  {
    Page a(16);
    Page b(8);
    b = std::move(a);
    EXPECT_EQ(delta(), 2);
    EXPECT_EQ(b.size(), 16u);
  }
  EXPECT_EQ(delta(), 0);
}

TEST_F(PageLedgerTest, AssignFromTemporaryBalances) {
  {
    Page a(16);
    a = Page(32);  // temporary: +1 on construction, -1 at end of statement
    EXPECT_EQ(delta(), 1);
    EXPECT_EQ(a.size(), 32u);
  }
  EXPECT_EQ(delta(), 0);
}

TEST_F(PageLedgerTest, BufferAdoptionAndStealStayBalanced) {
  {
    Page p(std::vector<std::uint8_t>(64, 7));
    EXPECT_EQ(delta(), 1);
    std::vector<std::uint8_t> frame = p.steal_buffer();
    // Stealing the frame empties the page but it remains a counted object.
    EXPECT_EQ(delta(), 1);
    EXPECT_EQ(frame.size(), 64u);
  }
  EXPECT_EQ(delta(), 0);
}

TEST_F(PageLedgerTest, VectorChurnBalances) {
  {
    std::vector<Page> pages;
    for (int i = 0; i < 50; ++i) pages.emplace_back(32);  // reallocations move
    EXPECT_EQ(delta(), 50);
    pages.erase(pages.begin(), pages.begin() + 25);
    EXPECT_EQ(delta(), 25);
  }
  EXPECT_EQ(delta(), 0);
}

TEST_F(PageLedgerTest, PooledPagesLeaveLedgerWhenDropped) {
  const std::size_t kSize = 112;  // class unlikely to collide with others
  {
    bool hit = false;
    PageRef p = PagePool::global().acquire_zeroed(kSize, &hit);
    EXPECT_EQ(delta(), 1);
    PageRef q = PagePool::global().acquire_copy(*p, &hit);
    EXPECT_EQ(delta(), 2);
  }
  // Both pages died: their frames may sit in the pool, but the *ledger*
  // counts Page objects, and those are gone — the auditor never sees
  // pooled frames as leaks.
  EXPECT_EQ(delta(), 0);
}

}  // namespace
}  // namespace mw
