#include "pagestore/overlay_store.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

TEST(OverlayStore, ReadsFallThroughToParent) {
  OverlayStore parent;
  parent.store(1, 10);
  OverlayStore child = parent.fork();
  EXPECT_EQ(child.load(1), 10);
  EXPECT_EQ(child.load(99), 0);  // zero-fill semantics
}

TEST(OverlayStore, ChildWritesShadowWithoutTouchingParent) {
  OverlayStore parent;
  parent.store(1, 10);
  OverlayStore child = parent.fork();
  child.store(1, 20);
  EXPECT_EQ(child.load(1), 20);
  EXPECT_EQ(parent.load(1), 10);
}

TEST(OverlayStore, SiblingsAreIsolated) {
  OverlayStore parent;
  parent.store(5, 50);
  OverlayStore a = parent.fork();
  OverlayStore b = parent.fork();
  a.store(5, 51);
  b.store(5, 52);
  EXPECT_EQ(a.load(5), 51);
  EXPECT_EQ(b.load(5), 52);
  EXPECT_EQ(parent.load(5), 50);
}

TEST(OverlayStore, AdoptCommitsChildView) {
  OverlayStore parent;
  parent.store(1, 1);
  OverlayStore child = parent.fork();
  child.store(1, 2);
  child.store(3, 33);
  parent.adopt(std::move(child));
  EXPECT_EQ(parent.load(1), 2);
  EXPECT_EQ(parent.load(3), 33);
}

TEST(OverlayStore, ChainDepthGrowsPerFork) {
  OverlayStore w;
  EXPECT_EQ(w.chain_depth(), 1u);
  OverlayStore c1 = w.fork();
  OverlayStore c2 = c1.fork();
  OverlayStore c3 = c2.fork();
  EXPECT_EQ(c3.chain_depth(), 4u);
}

TEST(OverlayStore, FlattenPreservesViewAndResetsDepth) {
  OverlayStore w;
  w.store(1, 1);
  OverlayStore c = w.fork();
  c.store(2, 2);
  OverlayStore g = c.fork();
  g.store(1, 111);  // shadows the root's value
  g.flatten();
  EXPECT_EQ(g.chain_depth(), 1u);
  EXPECT_EQ(g.load(1), 111);
  EXPECT_EQ(g.load(2), 2);
  EXPECT_EQ(g.load(9), 0);
}

TEST(OverlayStore, DeepChainStillCorrect) {
  OverlayStore w;
  w.store(0, -1);
  std::vector<OverlayStore> line;
  line.push_back(w.fork());
  for (int i = 1; i < 50; ++i) {
    line.push_back(line.back().fork());
    line.back().store(static_cast<std::uint64_t>(i), i);
  }
  const OverlayStore& leaf = line.back();
  EXPECT_EQ(leaf.load(0), -1);       // from the root
  EXPECT_EQ(leaf.load(25), 25);      // from mid-chain
  EXPECT_EQ(leaf.chain_depth(), 51u);
}

TEST(OverlayStore, OwnEntriesCountsOnlyThisWorld) {
  OverlayStore parent;
  parent.store(1, 1);
  parent.store(2, 2);
  OverlayStore child = parent.fork();
  child.store(3, 3);
  EXPECT_EQ(child.own_entries(), 1u);
}

}  // namespace
}  // namespace mw
