// Parameterized sweep of the §2.2 guard-phase combinations: "the GUARDs
// can be executed serially before spawning the alternatives; in the child
// process; at the synchronization point; or at any combination of these
// places, for redundancy." Every combination must agree on outcomes.
#include <gtest/gtest.h>

#include <atomic>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"

namespace mw {
namespace {

class GuardMatrixTest : public ::testing::TestWithParam<unsigned> {
 protected:
  RuntimeConfig config() {
    RuntimeConfig cfg;
    cfg.backend = AltBackend::kVirtual;
    cfg.processors = 4;
    cfg.cost = CostModel::free();
    cfg.page_size = 64;
    cfg.num_pages = 32;
    return cfg;
  }
};

TEST_P(GuardMatrixTest, GuardedOutAlternativeNeverWins) {
  const unsigned phases = GetParam();
  Runtime rt(config());
  World root = rt.make_root();
  root.space().store<int>(0, 0);  // the guard's condition variable
  AltOptions opts;
  opts.guard_phases = phases;
  auto out = run_alternatives(
      rt, root,
      {Alternative{"guarded",
                   [](const World& w) { return w.space().load<int>(0) != 0; },
                   [](AltContext& ctx) { ctx.work(1); }, nullptr},
       Alternative{"open", nullptr,
                   [](AltContext& ctx) { ctx.work(100); }, nullptr}},
      opts);
  ASSERT_FALSE(out.failed) << "phases=" << phases;
  EXPECT_EQ(out.winner, 1u) << "phases=" << phases;
}

TEST_P(GuardMatrixTest, PassingGuardAllowsWin) {
  const unsigned phases = GetParam();
  Runtime rt(config());
  World root = rt.make_root();
  root.space().store<int>(0, 1);
  AltOptions opts;
  opts.guard_phases = phases;
  auto out = run_alternatives(
      rt, root,
      {Alternative{"guarded",
                   [](const World& w) { return w.space().load<int>(0) == 1; },
                   [](AltContext& ctx) { ctx.work(1); }, nullptr}},
      opts);
  EXPECT_FALSE(out.failed) << "phases=" << phases;
}

TEST_P(GuardMatrixTest, AllGuardedOutSelectsFailure) {
  const unsigned phases = GetParam();
  Runtime rt(config());
  World root = rt.make_root();
  AltOptions opts;
  opts.guard_phases = phases;
  auto out = run_alternatives(
      rt, root,
      {Alternative{"g1", [](const World&) { return false; },
                   [](AltContext& ctx) { ctx.work(1); }, nullptr},
       Alternative{"g2", [](const World&) { return false; },
                   [](AltContext& ctx) { ctx.work(1); }, nullptr}},
      opts);
  EXPECT_TRUE(out.failed) << "phases=" << phases;
  EXPECT_EQ(out.failure, AltFailure::kAllFailed) << "phases=" << phases;
}

INSTANTIATE_TEST_SUITE_P(
    AllPhaseCombos, GuardMatrixTest,
    ::testing::Values(kGuardPreSpawn, kGuardInChild, kGuardAtSync,
                      kGuardPreSpawn | kGuardInChild,
                      kGuardPreSpawn | kGuardAtSync,
                      kGuardInChild | kGuardAtSync,
                      kGuardPreSpawn | kGuardInChild | kGuardAtSync));

TEST(GuardPhases, AtSyncSeesChildStateChanges) {
  // A guard evaluated only at sync sees what the body wrote; evaluated
  // pre-spawn it sees the parent's state and rejects.
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.cost = CostModel::free();
  cfg.page_size = 64;
  cfg.num_pages = 32;
  Runtime rt(cfg);
  auto guard = [](const World& w) { return w.space().load<int>(0) == 9; };
  auto body = [](AltContext& ctx) {
    ctx.space().store<int>(0, 9);
    ctx.work(1);
  };

  {
    World root = rt.make_root();
    AltOptions opts;
    opts.guard_phases = kGuardAtSync;
    auto out = run_alternatives(rt, root,
                                {Alternative{"a", guard, body, nullptr}},
                                opts);
    EXPECT_FALSE(out.failed);  // the body established the condition
  }
  {
    World root = rt.make_root();
    AltOptions opts;
    opts.guard_phases = kGuardPreSpawn;
    auto out = run_alternatives(rt, root,
                                {Alternative{"a", guard, body, nullptr}},
                                opts);
    EXPECT_TRUE(out.failed);  // parent state fails the precondition
  }
}

TEST(GuardPhases, RedundantGuardsCatchRaceInducedViolations) {
  // In-child passes at entry, but the body then invalidates the condition
  // — only the at-sync re-check (redundancy) catches it.
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.cost = CostModel::free();
  cfg.page_size = 64;
  cfg.num_pages = 32;
  Runtime rt(cfg);
  World root = rt.make_root();
  root.space().store<int>(0, 1);
  AltOptions opts;
  opts.guard_phases = kGuardInChild | kGuardAtSync;
  auto out = run_alternatives(
      rt, root,
      {Alternative{"self-sabotage",
                   [](const World& w) { return w.space().load<int>(0) == 1; },
                   [](AltContext& ctx) {
                     ctx.space().store<int>(0, 0);  // violates own guard
                     ctx.work(1);
                   },
                   nullptr}},
      opts);
  EXPECT_TRUE(out.failed);
}

}  // namespace
}  // namespace mw
