#include "core/alt_posix.hpp"

#include <unistd.h>

#include <gtest/gtest.h>

namespace mw {
namespace {

TEST(PosixAlt, PaperStyleBlockWinnerAbsorbed) {
  // The §2.2 preprocessor output, literally.
  int result = 0;
  PosixAltBlock block;
  block.absorb(&result, sizeof result);
  switch (block.alt_spawn(3)) {
    case 0: {  // parent
      auto winner = block.parent_wait(/*timeout_us=*/5'000'000);
      ASSERT_TRUE(winner.has_value());
      EXPECT_GE(*winner, 1);
      EXPECT_LE(*winner, 3);
      // The winner's state change was absorbed.
      EXPECT_EQ(result, *winner * 100);
      break;
    }
    case 1:
      result = 100;
      block.child_sync();
    case 2:
      result = 200;
      block.child_sync();
    case 3:
      result = 300;
      block.child_sync();
  }
}

TEST(PosixAlt, FastChildWins) {
  int result = 0;
  PosixAltBlock block;
  block.absorb(&result, sizeof result);
  switch (block.alt_spawn(2)) {
    case 0: {
      auto winner = block.parent_wait(10'000'000);
      ASSERT_TRUE(winner.has_value());
      EXPECT_EQ(*winner, 2);
      EXPECT_EQ(result, 22);
      break;
    }
    case 1:
      ::usleep(400'000);
      result = 11;
      block.child_sync();
    case 2:
      result = 22;
      block.child_sync();
  }
}

TEST(PosixAlt, AllAbortSelectsFailure) {
  PosixAltBlock block;
  switch (block.alt_spawn(2)) {
    case 0: {
      auto winner = block.parent_wait(5'000'000);
      EXPECT_FALSE(winner.has_value());  // run the failure alternative
      break;
    }
    case 1:
      block.child_abort();
    case 2:
      block.child_abort();
  }
}

TEST(PosixAlt, TimeoutEliminatesHangingChildren) {
  PosixAltBlock block;
  switch (block.alt_spawn(2)) {
    case 0: {
      auto winner = block.parent_wait(/*timeout_us=*/100'000);
      EXPECT_FALSE(winner.has_value());
      break;
    }
    case 1:
    case 2:
      ::usleep(30'000'000);
      block.child_sync();
  }
}

TEST(PosixAlt, LoserSideEffectsInvisible) {
  // Every child writes to its COW copy; only the winner's write is
  // absorbed into the parent.
  struct State {
    int value;
    int scribbles;
  } state{0, 0};
  PosixAltBlock block(sizeof state);
  block.absorb(&state, sizeof state);
  switch (block.alt_spawn(2)) {
    case 0: {
      auto winner = block.parent_wait(5'000'000);
      ASSERT_TRUE(winner.has_value());
      EXPECT_EQ(state.scribbles, 1);  // exactly one child's writes
      break;
    }
    case 1:
      state.value = 1;
      state.scribbles += 1;
      block.child_sync();
    case 2:
      ::usleep(300'000);
      state.value = 2;
      state.scribbles += 1;
      block.child_sync();
  }
}

TEST(PosixAlt, SynchronousEliminationAlsoWorks) {
  int result = 0;
  PosixAltBlock block;
  block.absorb(&result, sizeof result);
  switch (block.alt_spawn(2)) {
    case 0: {
      auto winner = block.parent_wait(5'000'000,
                                      /*synchronous_elimination=*/true);
      ASSERT_TRUE(winner.has_value());
      EXPECT_EQ(result, 7);
      break;
    }
    case 1:
      result = 7;
      block.child_sync();
    case 2:
      ::usleep(20'000'000);
      block.child_sync();
  }
}

}  // namespace
}  // namespace mw
