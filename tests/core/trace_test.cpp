#include "core/trace.hpp"

#include <gtest/gtest.h>

#include "core/alt_context.hpp"
#include "core/runtime.hpp"

namespace mw {
namespace {

AltOutcome sample_outcome() {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = 2;
  cfg.cost = CostModel::calibrated_hp();
  Runtime rt(cfg);
  World root = rt.make_root();
  root.space().store<int>(0, 1);
  return run_alternatives(
      rt, root,
      {Alternative{"fast", nullptr,
                   [](AltContext& ctx) {
                     ctx.space().store<int>(0, 2);
                     ctx.work(vt_ms(10));
                   },
                   nullptr},
       Alternative{"slow", nullptr,
                   [](AltContext& ctx) { ctx.work(vt_ms(500)); }, nullptr},
       Alternative{"queued", nullptr,
                   [](AltContext& ctx) { ctx.work(vt_ms(500)); }, nullptr}});
}

TEST(Trace, ChromeJsonIsWellFormedIsh) {
  const std::string json = to_chrome_trace(sample_outcome(), "demo");
  // Structural sanity: balanced braces/brackets, required keys present.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("fast [won]"), std::string::npos);
  EXPECT_NE(json.find("commit"), std::string::npos);
  EXPECT_NE(json.find("eliminate siblings"), std::string::npos);
}

TEST(Trace, StatusesReflectSchedule) {
  const std::string json = to_chrome_trace(sample_outcome());
  EXPECT_NE(json.find("[won]"), std::string::npos);
  EXPECT_NE(json.find("[killed]"), std::string::npos);  // slow, mid-flight
}

TEST(Trace, GuardedOutAlternativeMarked) {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.cost = CostModel::free();
  Runtime rt(cfg);
  World root = rt.make_root();
  AltOptions opts;
  opts.guard_phases = kGuardPreSpawn;
  auto out = run_alternatives(
      rt, root,
      {Alternative{"never", [](const World&) { return false; },
                   [](AltContext& ctx) { ctx.work(1); }, nullptr},
       Alternative{"yes", nullptr, [](AltContext& ctx) { ctx.work(1); },
                   nullptr}},
      opts);
  const std::string json = to_chrome_trace(out);
  EXPECT_NE(json.find("never (guarded out)"), std::string::npos);
}

TEST(Trace, TextTimelineShowsWinnerAndRows) {
  const std::string text = to_text_timeline(sample_outcome(), 40);
  // One row per alternative.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find('W'), std::string::npos);   // the winner marker
  EXPECT_NE(text.find("fast"), std::string::npos);
  EXPECT_NE(text.find("slow"), std::string::npos);
  // Rows are aligned: every line has the same length.
  std::istringstream is(text);
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (!len) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

TEST(Trace, JsonEscapesSpecialCharacters) {
  AltOutcome out;
  AltReport r;
  r.index = 1;
  r.name = "weird\"name\\with\nstuff";
  r.spawned = true;
  r.ran = true;
  r.finish = 10;
  out.alts.push_back(r);
  const std::string json = to_chrome_trace(out);
  EXPECT_EQ(json.find("weird\"name"), std::string::npos);  // raw quote gone
  EXPECT_NE(json.find("weird\\\"name"), std::string::npos);
}

}  // namespace
}  // namespace mw
