#include "core/replicate.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

RuntimeConfig virtual_config() {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = 8;
  cfg.cost = CostModel::free();
  cfg.page_size = 64;
  cfg.num_pages = 32;
  return cfg;
}

TEST(Replicate, FirstWinsReturnsAValue) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  auto r = replicate<int>(
      rt, root,
      [](AltContext& ctx, int) {
        // Per-replica jitter: the deterministic stream differs by index.
        ctx.work(static_cast<VDuration>(10 + ctx.rng().next_below(100)));
        ctx.space().store<int>(0, 42);
        return 42;
      },
      4);
  ASSERT_TRUE(r.value.has_value());
  EXPECT_EQ(*r.value, 42);
  EXPECT_EQ(root.space().load<int>(0), 42);
}

TEST(Replicate, FirstWinsHedgesLatency) {
  // Response time equals the fastest replica, not the average.
  Runtime rt(virtual_config());
  World root = rt.make_root();
  auto r = replicate<int>(
      rt, root,
      [](AltContext& ctx, int) {
        const VDuration jitter =
            static_cast<VDuration>(ctx.rng().next_below(10'000));
        ctx.work(100 + jitter);
        return 1;
      },
      6);
  ASSERT_TRUE(r.value.has_value());
  // 6 draws from [0,10000): the min is very likely far below the mean;
  // elapsed must be bounded by the fastest replica's work.
  EXPECT_LT(r.outcome.elapsed, 100 + 10'000);
}

TEST(Replicate, FirstWinsSurvivesFaultyReplicas) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  auto r = replicate<int>(
      rt, root,
      [](AltContext& ctx, int replica) {
        ctx.work(10);
        if (replica != 3) ctx.fail("replica fault");
        return 7;
      },
      4);
  ASSERT_TRUE(r.value.has_value());
  EXPECT_EQ(*r.value, 7);
}

TEST(Replicate, FirstWinsAllFaultyFails) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  auto r = replicate<int>(
      rt, root,
      [](AltContext& ctx, int) -> int {
        ctx.work(1);
        ctx.fail("dead");
      },
      3);
  EXPECT_FALSE(r.value.has_value());
}

TEST(Replicate, MajorityAgreesOnHealthyValue) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  ReplicateOptions opts;
  opts.mode = ReplicaMode::kMajority;
  auto r = replicate<int>(
      rt, root,
      [](AltContext& ctx, int replica) {
        ctx.work(1);
        // Replica 2 is value-corrupting; 1 and 3 agree.
        const int v = replica == 2 ? 999 : 5;
        ctx.space().store<int>(0, v);
        return v;
      },
      3, opts);
  ASSERT_TRUE(r.value.has_value());
  EXPECT_EQ(*r.value, 5);
  EXPECT_EQ(r.agreeing, 2);
  EXPECT_EQ(r.completed, 3);
  // The committed world is one that wrote the agreed value.
  EXPECT_EQ(root.space().load<int>(0), 5);
}

TEST(Replicate, MajorityDetectsSplitVote) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  root.space().store<int>(0, -1);
  ReplicateOptions opts;
  opts.mode = ReplicaMode::kMajority;
  auto r = replicate<int>(
      rt, root,
      [](AltContext& ctx, int replica) {
        ctx.work(1);
        return replica;  // everyone disagrees
      },
      3, opts);
  EXPECT_FALSE(r.value.has_value());
  EXPECT_EQ(r.completed, 3);
  EXPECT_EQ(r.agreeing, 0);
  // Nothing was committed.
  EXPECT_EQ(root.space().load<int>(0), -1);
}

TEST(Replicate, MajorityToleratesCrashedMinority) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  ReplicateOptions opts;
  opts.mode = ReplicaMode::kMajority;
  auto r = replicate<int>(
      rt, root,
      [](AltContext& ctx, int replica) -> int {
        ctx.work(1);
        if (replica == 1) ctx.fail("crash");
        return 8;
      },
      5, opts);
  ASSERT_TRUE(r.value.has_value());
  EXPECT_EQ(*r.value, 8);
  EXPECT_EQ(r.agreeing, 4);
  EXPECT_EQ(r.completed, 4);
}

TEST(Replicate, MajorityCrashedMajorityFails) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  ReplicateOptions opts;
  opts.mode = ReplicaMode::kMajority;
  auto r = replicate<int>(
      rt, root,
      [](AltContext& ctx, int replica) -> int {
        ctx.work(1);
        if (replica <= 2) ctx.fail("crash");
        return 8;
      },
      3, opts);
  // Only 1 of 3 completed: no majority of k.
  EXPECT_FALSE(r.value.has_value());
}

}  // namespace
}  // namespace mw
