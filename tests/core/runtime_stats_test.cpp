#include <gtest/gtest.h>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"

namespace mw {
namespace {

RuntimeConfig virtual_config() {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = 4;
  cfg.cost = CostModel::free();
  cfg.page_size = 64;
  cfg.num_pages = 32;
  return cfg;
}

Alternative spin(std::string name, VDuration work, bool succeed = true) {
  return Alternative{std::move(name), nullptr,
                     [work, succeed](AltContext& ctx) {
                       ctx.work(work);
                       if (!succeed) ctx.fail("no");
                     },
                     nullptr};
}

TEST(RuntimeStats, StartsEmpty) {
  Runtime rt(virtual_config());
  EXPECT_EQ(rt.stats().blocks_run, 0u);
  EXPECT_DOUBLE_EQ(rt.stats().waste_ratio(), 0.0);
}

TEST(RuntimeStats, WinningBlockAccounted) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  run_alternatives(rt, root, {spin("w", 10), spin("l", 500)});
  const RuntimeStats& s = rt.stats();
  EXPECT_EQ(s.blocks_run, 1u);
  EXPECT_EQ(s.blocks_won, 1u);
  EXPECT_EQ(s.blocks_failed, 0u);
  EXPECT_EQ(s.alternatives_spawned, 2u);
  EXPECT_EQ(s.alternatives_eliminated, 1u);
  EXPECT_EQ(s.alternatives_aborted, 0u);
  EXPECT_EQ(s.total_elapsed, 10);
  // The loser ran from 0 until the winner's sync at t=10.
  EXPECT_EQ(s.wasted_work, 10);
}

TEST(RuntimeStats, AbortsAndEliminationsDistinguished) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  run_alternatives(
      rt, root,
      {spin("w", 100), spin("aborts", 5, false), spin("killed", 1000)});
  const RuntimeStats& s = rt.stats();
  EXPECT_EQ(s.alternatives_aborted, 1u);
  EXPECT_EQ(s.alternatives_eliminated, 1u);
  EXPECT_DOUBLE_EQ(s.waste_ratio(), 2.0 / 3.0);
}

TEST(RuntimeStats, FailedBlockAccounted) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  run_alternatives(rt, root, {spin("a", 5, false), spin("b", 7, false)});
  EXPECT_EQ(rt.stats().blocks_failed, 1u);
  EXPECT_EQ(rt.stats().blocks_won, 0u);
  EXPECT_EQ(rt.stats().alternatives_aborted, 2u);
}

TEST(RuntimeStats, AccumulatesAcrossBlocks) {
  Runtime rt(virtual_config());
  for (int i = 0; i < 5; ++i) {
    World root = rt.make_root();
    run_alternatives(rt, root, {spin("a", 10), spin("b", 20)});
  }
  EXPECT_EQ(rt.stats().blocks_run, 5u);
  EXPECT_EQ(rt.stats().alternatives_spawned, 10u);
  EXPECT_EQ(rt.stats().total_elapsed, 50);
}

TEST(RuntimeStats, OverheadLedgerMatchesOutcomes) {
  RuntimeConfig cfg = virtual_config();
  cfg.cost = CostModel::calibrated_hp();
  Runtime rt(cfg);
  World root = rt.make_root();
  root.space().store<int>(0, 1);
  auto out = run_alternatives(rt, root, {spin("a", 10), spin("b", 20)});
  EXPECT_EQ(rt.stats().total_overhead, out.overhead.total());
  EXPECT_GT(rt.stats().total_overhead, 0);
}

TEST(RuntimeStats, ThreadBackendAlsoRecords) {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kThread;
  cfg.page_size = 64;
  cfg.num_pages = 32;
  Runtime rt(cfg);
  World root = rt.make_root();
  run_alternatives(rt, root,
                   {Alternative{"only", nullptr, [](AltContext&) {}, nullptr}});
  EXPECT_EQ(rt.stats().blocks_run, 1u);
  EXPECT_EQ(rt.stats().blocks_won, 1u);
}

}  // namespace
}  // namespace mw
