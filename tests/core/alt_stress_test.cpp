// Stress and soak tests of the alternative-block machinery: long chains
// of sequential blocks, wide blocks, deep nesting, and state integrity
// across hundreds of commits.
#include <gtest/gtest.h>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "util/rng.hpp"

namespace mw {
namespace {

RuntimeConfig virtual_config() {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = 4;
  cfg.cost = CostModel::free();
  cfg.page_size = 128;
  cfg.num_pages = 64;
  return cfg;
}

TEST(AltStress, TwoHundredSequentialBlocksAccumulateState) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  root.space().store<int>(0, 0);
  for (int round = 0; round < 200; ++round) {
    auto out = run_alternatives(
        rt, root,
        {Alternative{"inc-slow", nullptr,
                     [](AltContext& ctx) {
                       const int v = ctx.space().load<int>(0);
                       ctx.space().store<int>(0, v + 1);
                       ctx.work(50);
                     },
                     nullptr},
         Alternative{"inc-fast", nullptr,
                     [](AltContext& ctx) {
                       const int v = ctx.space().load<int>(0);
                       ctx.space().store<int>(0, v + 1);
                       ctx.work(10);
                     },
                     nullptr}});
    ASSERT_FALSE(out.failed) << "round " << round;
  }
  // Exactly one increment per block, regardless of which sibling won.
  EXPECT_EQ(root.space().load<int>(0), 200);
}

TEST(AltStress, WideBlockThirtyTwoAlternatives) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  std::vector<Alternative> alts;
  for (int i = 0; i < 32; ++i) {
    alts.push_back(Alternative{
        "alt" + std::to_string(i), nullptr,
        [i](AltContext& ctx) {
          ctx.space().store<int>(0, i);
          ctx.work(static_cast<VDuration>(1000 - i * 10));
        },
        nullptr});
  }
  auto out = run_alternatives(rt, root, alts);
  ASSERT_FALSE(out.failed);
  // The fastest is the last one (least work), but it arrives latest in
  // FCFS order with only 4 processors — the scheduler decides; what we
  // require is a consistent winner/state pair.
  ASSERT_TRUE(out.winner.has_value());
  EXPECT_EQ(root.space().load<int>(0), static_cast<int>(*out.winner));
}

TEST(AltStress, DeepNestingFiveLevels) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  std::function<void(AltContext&, int)> nest = [&](AltContext& ctx,
                                                   int depth) {
    if (depth == 0) {
      ctx.space().store<int>(0, 99);
      ctx.work(1);
      return;
    }
    auto inner = run_alternatives(
        rt, ctx.world(),
        {Alternative{"deeper", nullptr,
                     [&nest, depth](AltContext& c) { nest(c, depth - 1); },
                     nullptr}});
    ASSERT_FALSE(inner.failed);
    ctx.work(inner.elapsed);
  };
  auto out = run_alternatives(
      rt, root,
      {Alternative{"top", nullptr,
                   [&nest](AltContext& ctx) { nest(ctx, 5); }, nullptr}});
  ASSERT_FALSE(out.failed);
  EXPECT_EQ(root.space().load<int>(0), 99);
}

TEST(AltStress, RandomizedBlocksKeepModelConsistency) {
  // Fuzz: random alternative counts/durations/failures against a model of
  // what the winner must be (fastest successful under plentiful procs).
  Rng rng(2026);
  RuntimeConfig cfg = virtual_config();
  cfg.processors = 64;  // no queueing: winner = fastest successful
  Runtime rt(cfg);
  for (int round = 0; round < 60; ++round) {
    World root = rt.make_root();
    const int n = 1 + static_cast<int>(rng.next_below(8));
    std::vector<Alternative> alts;
    std::vector<VDuration> dur(static_cast<std::size_t>(n));
    std::vector<bool> ok(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      dur[static_cast<std::size_t>(i)] =
          static_cast<VDuration>(10 + rng.next_below(1000));
      ok[static_cast<std::size_t>(i)] = rng.next_bool(0.7);
      alts.push_back(Alternative{
          "alt" + std::to_string(i), nullptr,
          [d = dur[static_cast<std::size_t>(i)],
           good = ok[static_cast<std::size_t>(i)]](AltContext& ctx) {
            ctx.work(d);
            if (!good) ctx.fail("planned");
          },
          nullptr});
    }
    auto out = run_alternatives(rt, root, alts);
    // Model: the successful alternative with minimal duration wins (ties:
    // lowest index, since spawn order staggers ready times is zero-cost
    // here and the scheduler breaks ties by input order).
    int expect = -1;
    VDuration best = kVTimeMax;
    for (int i = 0; i < n; ++i) {
      if (ok[static_cast<std::size_t>(i)] &&
          dur[static_cast<std::size_t>(i)] < best) {
        best = dur[static_cast<std::size_t>(i)];
        expect = i;
      }
    }
    if (expect < 0) {
      EXPECT_TRUE(out.failed) << "round " << round;
    } else {
      ASSERT_FALSE(out.failed) << "round " << round;
      EXPECT_EQ(*out.winner, static_cast<std::size_t>(expect))
          << "round " << round;
      EXPECT_EQ(out.elapsed, best) << "round " << round;
    }
  }
}

TEST(AltStress, CowSharingStaysHighAcrossBlocks) {
  // A large parent working set is read-shared: a block that writes one
  // page must COW exactly one page, block after block.
  RuntimeConfig cfg = virtual_config();
  cfg.num_pages = 256;
  Runtime rt(cfg);
  World root = rt.make_root();
  for (int p = 0; p < 128; ++p)
    root.space().store<int>(static_cast<std::uint64_t>(p) * 128, p);
  for (int round = 0; round < 20; ++round) {
    auto out = run_alternatives(
        rt, root,
        {Alternative{"touch-one", nullptr,
                     [round](AltContext& ctx) {
                       ctx.space().store<int>(
                           static_cast<std::uint64_t>(round) * 128, -round);
                       ctx.work(1);
                     },
                     nullptr}});
    ASSERT_FALSE(out.failed);
    EXPECT_EQ(out.alts[0].pages_copied, 1u) << "round " << round;
  }
}

}  // namespace
}  // namespace mw
