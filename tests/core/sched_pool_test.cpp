// Unit tests for the work-stealing speculation scheduler and the kPool
// backend built on it: priority order, queued-task revocation, bounded
// admission, helping waits, and the kThread backend's bounded straggler
// reap that the pool design replaced.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "core/runtime_auditor.hpp"
#include "core/spec_scheduler.hpp"

namespace mw {
namespace {

SchedConfig det_config(std::uint64_t seed = 7) {
  SchedConfig cfg;
  cfg.deterministic_seed = seed;
  cfg.workers = 2;
  return cfg;
}

TEST(SpecScheduler, DeterministicDrainRunsEverySubmittedTask) {
  SpecScheduler sched(det_config());
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i)
    sched.submit([&] { ++ran; }, 0.0, 1, kNoPid);
  sched.drain();
  EXPECT_EQ(ran.load(), 5);
  EXPECT_EQ(sched.stats().submitted, 5u);
  EXPECT_EQ(sched.stats().executed, 5u);
}

TEST(SpecScheduler, HigherPriorityRunsFirstRegardlessOfSeed) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SpecScheduler sched(det_config(seed));
    std::vector<double> order;
    for (double p : {0.1, 0.9, 0.5})
      sched.submit([&order, p] { order.push_back(p); }, p, 1, kNoPid);
    sched.drain();
    EXPECT_EQ(order, (std::vector<double>{0.9, 0.5, 0.1})) << "seed=" << seed;
  }
}

TEST(SpecScheduler, RevokedTaskNeverRunsAndSkipCallbackFiresOnce) {
  SpecScheduler sched(det_config());
  std::atomic<int> ran{0};
  std::atomic<int> skipped{0};
  SchedTaskRef keep = sched.submit([&] { ++ran; }, 0.0, 1, kNoPid);
  SchedTaskRef drop = sched.submit([&] { ++ran; }, 0.0, 1, kNoPid,
                                   [&](SchedTask&) { ++skipped; });
  EXPECT_TRUE(sched.revoke(drop));
  EXPECT_FALSE(sched.revoke(drop));  // second attempt lost: already terminal
  sched.drain();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(skipped.load(), 1);
  EXPECT_EQ(keep->state(), SchedTask::State::kDone);
  EXPECT_EQ(drop->state(), SchedTask::State::kRevoked);
  EXPECT_TRUE(drop->never_ran());
  EXPECT_EQ(sched.stats().revoked, 1u);
  EXPECT_EQ(sched.stats().executed, 1u);
}

TEST(SpecScheduler, RevokeAfterExecutionFails) {
  SpecScheduler sched(det_config());
  SchedTaskRef t = sched.submit([] {}, 0.0, 1, kNoPid);
  sched.drain();
  EXPECT_EQ(t->state(), SchedTask::State::kDone);
  EXPECT_FALSE(sched.revoke(t));
}

TEST(SpecScheduler, DeterministicAdmissionRejectsOverBudgetImmediately) {
  SchedConfig cfg = det_config();
  cfg.max_live_worlds = 4;
  SpecScheduler sched(cfg);
  EXPECT_TRUE(sched.admit(3, kNoPid, 1));
  EXPECT_EQ(sched.live_worlds(), 3u);
  // Nothing can release capacity in single-threaded mode: defer resolves
  // to an immediate reject.
  EXPECT_FALSE(sched.admit(2, kNoPid, 2));
  EXPECT_EQ(sched.stats().admission_deferred, 1u);
  EXPECT_EQ(sched.stats().admission_rejected, 1u);
  sched.release(3);
  EXPECT_TRUE(sched.admit(2, kNoPid, 3));
  sched.release(2);
  EXPECT_EQ(sched.live_worlds(), 0u);
}

TEST(SpecScheduler, UnboundedAdmissionAlwaysAdmits) {
  SpecScheduler sched(det_config());
  EXPECT_TRUE(sched.admit(1000, kNoPid, 1));
  sched.release(1000);
}

TEST(SpecScheduler, ShouldHelpOnlyInDeterministicModeOrOnWorkers) {
  SpecScheduler det(det_config());
  EXPECT_TRUE(det.should_help());  // single-threaded: waiting would wedge

  SchedConfig threaded;
  threaded.workers = 1;
  SpecScheduler pool(threaded);
  EXPECT_FALSE(pool.should_help());  // external thread: block on the cv
}

TEST(SpecScheduler, ThreadedWorkersDrainTheInbox) {
  SchedConfig cfg;
  cfg.workers = 2;
  SpecScheduler sched(cfg);
  std::atomic<int> ran{0};
  std::vector<SchedTaskRef> tasks;
  for (int i = 0; i < 64; ++i)
    tasks.push_back(sched.submit([&] { ++ran; }, 0.0, 1, kNoPid));
  for (const SchedTaskRef& t : tasks) {
    while (t->state() != SchedTask::State::kDone)
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(sched.stats().executed, 64u);
  // External submission means every execution went through the steal path.
  EXPECT_EQ(sched.stats().stolen, 64u);
}

TEST(SpecScheduler, ThreadedAdmissionWaitsForRelease) {
  SchedConfig cfg;
  cfg.workers = 1;
  cfg.max_live_worlds = 2;
  cfg.admission_wait = 2'000'000;  // generous: the release arrives first
  SpecScheduler sched(cfg);
  ASSERT_TRUE(sched.admit(2, kNoPid, 1));
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sched.release(2);
  });
  EXPECT_TRUE(sched.admit(1, kNoPid, 2));  // blocks until the release
  releaser.join();
  EXPECT_GE(sched.stats().admission_deferred, 1u);
  sched.release(1);
}

TEST(SpecScheduler, ThreadedAdmissionRejectsAtDeadline) {
  SchedConfig cfg;
  cfg.workers = 1;
  cfg.max_live_worlds = 1;
  cfg.admission_wait = 2'000;  // 2 ms: nobody will release
  SpecScheduler sched(cfg);
  ASSERT_TRUE(sched.admit(1, kNoPid, 1));
  EXPECT_FALSE(sched.admit(1, kNoPid, 2));
  EXPECT_EQ(sched.stats().admission_rejected, 1u);
  sched.release(1);
}

// ---- kPool backend over the scheduler --------------------------------

RuntimeConfig pool_config(std::uint64_t det_seed) {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kPool;
  cfg.page_size = 256;
  cfg.num_pages = 16;
  cfg.pool.deterministic_seed = det_seed;
  cfg.pool.workers = 2;
  return cfg;
}

TEST(AltPool, UniqueWinnerCommitsIntoParent) {
  Runtime rt(pool_config(11));
  RuntimeAuditor auditor;
  World root = rt.make_root("pool");
  auditor.add_world(root);
  const AltOutcome out =
      AltBlock(rt, root)
          .alt("loser-a", [](AltContext& ctx) { ctx.fail("no"); })
          .alt("winner",
               [](AltContext& ctx) {
                 ctx.space().store<int>(0, 424242);
                 ctx.set_result_string("w");
               })
          .alt("loser-b", [](AltContext& ctx) { ctx.fail("no"); })
          .run();
  ASSERT_FALSE(out.failed);
  EXPECT_EQ(out.winner_name, "winner");
  EXPECT_EQ(root.space().load<int>(0), 424242);
  EXPECT_EQ(rt.stats().blocks_won, 1u);
  const AuditReport audit = auditor.run(rt.processes());
  EXPECT_TRUE(audit.clean()) << audit.to_string();
}

TEST(AltPool, QueuedSiblingsAreRevokedWithZeroCopiedPages) {
  // The high-priority winner runs first (priority order is seed-invariant)
  // and syncs before any sibling is taken; the pruning pass revokes both
  // while still queued — their bodies never run, their worlds copy nothing.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Runtime rt(pool_config(seed));
    World root = rt.make_root("prune");
    std::vector<Alternative> race;
    race.push_back({"win", nullptr,
                    [](AltContext& ctx) { ctx.space().store<int>(0, 1); },
                    nullptr, /*priority=*/1.0});
    for (int i = 0; i < 2; ++i) {
      race.push_back({"lose" + std::to_string(i), nullptr,
                      [](AltContext& ctx) {
                        ctx.space().store<int>(64, 2);  // would copy a page
                        ctx.checkpoint();
                      },
                      nullptr, /*priority=*/0.0});
    }
    const AltOutcome out = run_alternatives(rt, root, race, {});
    ASSERT_FALSE(out.failed) << "seed=" << seed;
    EXPECT_EQ(out.winner_name, "win");
    for (std::size_t i = 1; i <= 2; ++i) {
      EXPECT_TRUE(out.alts[i].revoked) << "seed=" << seed << " alt=" << i;
      EXPECT_FALSE(out.alts[i].ran);
      EXPECT_EQ(out.alts[i].pages_copied, 0u);
    }
    EXPECT_EQ(rt.stats().alternatives_revoked, 2u);
  }
}

TEST(AltPool, AdmissionRejectionFailsTheBlockWithoutSpawning) {
  RuntimeConfig cfg = pool_config(3);
  cfg.pool.max_live_worlds = 2;  // a three-way race cannot fit
  Runtime rt(cfg);
  RuntimeAuditor auditor;
  World root = rt.make_root("reject");
  auditor.add_world(root);
  const AltOutcome out =
      AltBlock(rt, root)
          .alt("a", [](AltContext&) {})
          .alt("b", [](AltContext&) {})
          .alt("c", [](AltContext&) {})
          .run();
  EXPECT_TRUE(out.failed);
  EXPECT_EQ(out.failure, AltFailure::kAdmissionRejected);
  for (const AltReport& rep : out.alts) {
    EXPECT_FALSE(rep.spawned);
    EXPECT_EQ(rep.pid, kNoPid);
  }
  EXPECT_EQ(rt.scheduler().live_worlds(), 0u);
  const AuditReport audit = auditor.run(rt.processes());
  EXPECT_TRUE(audit.clean()) << audit.to_string();
}

TEST(AltPool, BudgetAdmitsSequentialRacesThatFitOneAtATime) {
  RuntimeConfig cfg = pool_config(5);
  cfg.pool.max_live_worlds = 2;
  Runtime rt(cfg);
  World root = rt.make_root("fit");
  for (int r = 0; r < 4; ++r) {
    const AltOutcome out =
        AltBlock(rt, root)
            .alt("w", [r](AltContext& ctx) { ctx.space().store<int>(0, r); })
            .alt("l", [](AltContext& ctx) { ctx.fail("no"); })
            .run();
    ASSERT_FALSE(out.failed) << "race " << r;
  }
  EXPECT_EQ(rt.scheduler().live_worlds(), 0u);
  EXPECT_EQ(root.space().load<int>(0), 3);
}

TEST(AltPool, ThreadedPoolRunsManyRacesCleanly) {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kPool;
  cfg.page_size = 256;
  cfg.num_pages = 16;
  Runtime rt(cfg);
  RuntimeAuditor auditor;
  World root = rt.make_root("pool-t");
  auditor.add_world(root);
  for (int r = 0; r < 50; ++r) {
    const AltOutcome out =
        AltBlock(rt, root)
            .alt("w",
                 [r](AltContext& ctx) { ctx.space().store<int>(0, r + 1); })
            .alt("l", [](AltContext& ctx) { ctx.fail("no"); })
            .run();
    ASSERT_FALSE(out.failed) << "race " << r;
    EXPECT_EQ(root.space().load<int>(0), r + 1);
  }
  const AuditReport audit = auditor.run(rt.processes());
  EXPECT_TRUE(audit.clean()) << audit.to_string();
}

// ---- kThread bounded reap --------------------------------------------

TEST(AltThreadReap, DeafLoserIsDetachedAsStragglerAtTheDeadline) {
  // The loser ignores cancellation entirely (a plain sleep, no
  // checkpoints). The block must come back at the reap deadline with the
  // loser marked straggler instead of blocking on a join.
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kThread;
  cfg.page_size = 256;
  cfg.num_pages = 16;
  Runtime rt(cfg);
  World root = rt.make_root("reap");
  std::vector<Alternative> race;
  race.push_back({"win", nullptr,
                  [](AltContext& ctx) { ctx.set_result_string("w"); },
                  nullptr, 0.0});
  std::atomic<bool> loser_done{false};
  race.push_back({"deaf", nullptr,
                  [&](AltContext&) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(150));
                    loser_done = true;
                  },
                  nullptr, 0.0});
  AltOptions opts;
  opts.reap_deadline = 10'000;  // 10 ms
  const AltOutcome out = run_alternatives(rt, root, race, opts);
  ASSERT_FALSE(out.failed);
  EXPECT_EQ(out.winner_name, "win");
  EXPECT_FALSE(loser_done.load());  // we returned before the sleep ended
  EXPECT_TRUE(out.alts[1].straggler);
  EXPECT_FALSE(out.alts[0].straggler);
  // Let the detached straggler unwind before the runtime leaves scope.
  while (!loser_done.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

TEST(AltThreadReap, CooperativeLosersJoinWithoutStragglers) {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kThread;
  cfg.page_size = 256;
  cfg.num_pages = 16;
  Runtime rt(cfg);
  World root = rt.make_root("coop");
  const AltOutcome out =
      AltBlock(rt, root)
          .alt("win", [](AltContext& ctx) { ctx.set_result_string("w"); })
          .alt("coop",
               [](AltContext& ctx) {
                 for (int i = 0; i < 200; ++i) ctx.sleep_for(1'000);
                 ctx.fail("never");
               })
          .run();
  ASSERT_FALSE(out.failed);
  for (const AltReport& rep : out.alts) EXPECT_FALSE(rep.straggler);
}

}  // namespace
}  // namespace mw
