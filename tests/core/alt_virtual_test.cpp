#include <gtest/gtest.h>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"

namespace mw {
namespace {

RuntimeConfig virtual_config(std::size_t processors = 2) {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = processors;
  cfg.cost = CostModel::free();
  cfg.page_size = 64;
  cfg.num_pages = 64;
  return cfg;
}

Alternative spin(std::string name, VDuration work, bool succeed = true) {
  return Alternative{std::move(name), nullptr,
                     [work, succeed](AltContext& ctx) {
                       ctx.work(work);
                       if (!succeed) ctx.fail("no");
                     },
                     nullptr};
}

TEST(AltVirtual, FastestAlternativeWins) {
  Runtime rt(virtual_config(3));
  World root = rt.make_root();
  auto out = run_alternatives(
      rt, root, {spin("slow", 300), spin("fast", 100), spin("mid", 200)});
  EXPECT_FALSE(out.failed);
  EXPECT_EQ(out.winner, 1u);
  EXPECT_EQ(out.winner_name, "fast");
  EXPECT_EQ(out.elapsed, 100);
}

TEST(AltVirtual, WinnerStateIsCommitted) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  auto out = run_alternatives(
      rt, root,
      {Alternative{"a", nullptr,
                   [](AltContext& ctx) {
                     ctx.space().store<int>(0, 111);
                     ctx.work(10);
                   },
                   nullptr},
       Alternative{"b", nullptr,
                   [](AltContext& ctx) {
                     ctx.space().store<int>(0, 222);
                     ctx.work(99);
                   },
                   nullptr}});
  EXPECT_EQ(out.winner, 0u);
  EXPECT_EQ(root.space().load<int>(0), 111);
}

TEST(AltVirtual, LoserStateIsDiscarded) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  root.space().store<int>(0, 5);
  run_alternatives(rt, root,
                   {Alternative{"w", nullptr,
                                [](AltContext& ctx) { ctx.work(1); }, nullptr},
                    Alternative{"l", nullptr,
                                [](AltContext& ctx) {
                                  ctx.space().store<int>(0, 666);
                                  ctx.work(50);
                                },
                                nullptr}});
  EXPECT_EQ(root.space().load<int>(0), 5);
}

TEST(AltVirtual, FailedAlternativesNeverWin) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  auto out = run_alternatives(
      rt, root, {spin("fails-fast", 10, false), spin("wins-slow", 500)});
  EXPECT_FALSE(out.failed);
  EXPECT_EQ(out.winner, 1u);
}

TEST(AltVirtual, AllFailedSelectsFailureAlternative) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  auto out = run_alternatives(
      rt, root, {spin("a", 10, false), spin("b", 20, false)});
  EXPECT_TRUE(out.failed);
  EXPECT_EQ(out.failure, AltFailure::kAllFailed);
  EXPECT_FALSE(out.winner.has_value());
  EXPECT_EQ(out.elapsed, 20);  // known when the last child aborts
}

TEST(AltVirtual, EmptyBlockFails) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  auto out = run_alternatives(rt, root, {});
  EXPECT_TRUE(out.failed);
  EXPECT_EQ(out.failure, AltFailure::kNoAlternatives);
}

TEST(AltVirtual, TimeoutSelectsFailure) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  AltOptions opts;
  opts.timeout = 50;
  auto out = run_alternatives(rt, root, {spin("slow", 1000)}, opts);
  EXPECT_TRUE(out.failed);
  EXPECT_EQ(out.failure, AltFailure::kTimeout);
  EXPECT_GE(out.elapsed, 50);
}

TEST(AltVirtual, WinnerJustUnderTimeoutSucceeds) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  AltOptions opts;
  opts.timeout = 50;
  auto out = run_alternatives(rt, root, {spin("ok", 50)}, opts);
  EXPECT_FALSE(out.failed);
}

TEST(AltVirtual, ExceptionInBodyIsFailure) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  auto out = run_alternatives(
      rt, root,
      {Alternative{"throws", nullptr,
                   [](AltContext&) { throw std::runtime_error("boom"); },
                   nullptr},
       spin("ok", 10)});
  EXPECT_EQ(out.winner, 1u);
}

TEST(AltVirtual, GuardInChildRejects) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  root.space().store<int>(0, 1);
  auto out = run_alternatives(
      rt, root,
      {Alternative{"guarded",
                   [](const World& w) { return w.space().load<int>(0) == 2; },
                   [](AltContext& ctx) { ctx.work(1); }, nullptr},
       spin("fallback", 100)});
  EXPECT_EQ(out.winner, 1u);
}

TEST(AltVirtual, PreSpawnGuardAvoidsSpawn) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  AltOptions opts;
  opts.guard_phases = kGuardPreSpawn;
  auto out = run_alternatives(
      rt, root,
      {Alternative{"never", [](const World&) { return false; },
                   [](AltContext& ctx) { ctx.work(1); }, nullptr},
       spin("yes", 10)},
      opts);
  EXPECT_EQ(out.winner, 1u);
  EXPECT_FALSE(out.alts[0].spawned);
  EXPECT_TRUE(out.alts[1].spawned);
}

TEST(AltVirtual, AcceptanceTestRejectsAtSync) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  auto out = run_alternatives(
      rt, root,
      {Alternative{"bad-result", nullptr,
                   [](AltContext& ctx) {
                     ctx.space().store<int>(0, -1);
                     ctx.work(1);
                   },
                   [](const World& w) { return w.space().load<int>(0) >= 0; }},
       spin("good", 100)});
  EXPECT_EQ(out.winner, 1u);
}

TEST(AltVirtual, ResultBytesDelivered) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  auto out = run_alternatives(
      rt, root,
      {Alternative{"r", nullptr,
                   [](AltContext& ctx) {
                     ctx.set_result_string("hello");
                     ctx.work(1);
                   },
                   nullptr}});
  EXPECT_EQ(std::string(out.result.begin(), out.result.end()), "hello");
}

TEST(AltVirtual, ProcessorLimitSerializesWork) {
  Runtime rt1(virtual_config(1));
  World r1 = rt1.make_root();
  auto out1 =
      run_alternatives(rt1, r1, {spin("a", 100, false), spin("b", 100)});
  EXPECT_EQ(out1.elapsed, 200);  // serialized on one processor

  Runtime rt2(virtual_config(2));
  World r2 = rt2.make_root();
  auto out2 =
      run_alternatives(rt2, r2, {spin("a", 100, false), spin("b", 100)});
  EXPECT_EQ(out2.elapsed, 100);  // truly parallel
}

TEST(AltVirtual, DeterministicAcrossRuns) {
  auto run_once = [] {
    Runtime rt(virtual_config(2));
    World root = rt.make_root();
    std::vector<Alternative> alts;
    for (int i = 0; i < 6; ++i) {
      alts.push_back(Alternative{
          "alt" + std::to_string(i), nullptr,
          [](AltContext& ctx) {
            // Work depends only on the per-alternative stream.
            ctx.work(static_cast<VDuration>(100 + ctx.rng().next_below(900)));
          },
          nullptr});
    }
    return run_alternatives(rt, root, alts);
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.elapsed, b.elapsed);
}

TEST(AltVirtual, OverheadChargedWithCalibratedModel) {
  RuntimeConfig cfg = virtual_config(2);
  cfg.cost = CostModel::calibrated_hp();
  Runtime rt(cfg);
  World root = rt.make_root();
  root.space().store<int>(0, 1);  // one resident page
  auto out = run_alternatives(
      rt, root,
      {Alternative{"w", nullptr,
                   [](AltContext& ctx) {
                     ctx.space().store<int>(0, 2);  // one COW break
                     ctx.work(10);
                   },
                   nullptr},
       spin("l", 100000)});
  EXPECT_GT(out.overhead.setup, 0);
  EXPECT_GT(out.overhead.copying, 0);
  EXPECT_GT(out.overhead.commit, 0);
  EXPECT_GT(out.overhead.elimination, 0);
  EXPECT_GT(out.elapsed, 10);
}

TEST(AltVirtual, SyncEliminationCostsMoreThanAsync) {
  RuntimeConfig cfg = virtual_config(2);
  cfg.cost = CostModel::calibrated_3b2();
  auto run_mode = [&](Elimination e) {
    Runtime rt(cfg);
    World root = rt.make_root();
    AltOptions opts;
    opts.elimination = e;
    return run_alternatives(
        rt, root, {spin("w", 10), spin("l1", 100000), spin("l2", 100000)},
        opts);
  };
  auto sync = run_mode(Elimination::kSynchronous);
  auto async = run_mode(Elimination::kAsynchronous);
  EXPECT_GT(sync.elapsed, async.elapsed);
  EXPECT_EQ(sync.overhead.elimination, 2 * async.overhead.elimination);
}

TEST(AltVirtual, ProcessStatusesRecorded) {
  Runtime rt(virtual_config(3));
  World root = rt.make_root();
  auto out = run_alternatives(
      rt, root,
      {spin("win", 10), spin("abort", 5, false), spin("killed", 500)});
  ASSERT_TRUE(out.winner.has_value());
  ProcessTable& t = rt.processes();
  EXPECT_EQ(t.status(out.alts[0].pid), ProcStatus::kSynced);
  EXPECT_EQ(t.status(out.alts[1].pid), ProcStatus::kFailed);
  EXPECT_EQ(t.status(out.alts[2].pid), ProcStatus::kEliminated);
}

TEST(AltVirtual, AltReportIndicesAreOneBased) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  auto out = run_alternatives(rt, root, {spin("a", 1), spin("b", 2)});
  EXPECT_EQ(out.alts[0].index, 1u);
  EXPECT_EQ(out.alts[1].index, 2u);
}

TEST(AltVirtual, NestedBlocksCompose) {
  Runtime rt(virtual_config(2));
  World root = rt.make_root();
  auto out = run_alternatives(
      rt, root,
      {Alternative{"outer", nullptr,
                   [&](AltContext& ctx) {
                     // An inner speculative block inside an alternative.
                     auto inner = run_alternatives(
                         rt, ctx.world(),
                         {Alternative{"inner-a", nullptr,
                                      [](AltContext& c2) {
                                        c2.space().store<int>(64, 7);
                                        c2.work(5);
                                      },
                                      nullptr}});
                     EXPECT_FALSE(inner.failed);
                     ctx.work(inner.elapsed);
                   },
                   nullptr}});
  EXPECT_FALSE(out.failed);
  EXPECT_EQ(root.space().load<int>(64), 7);
}

TEST(AltVirtual, BuilderApi) {
  Runtime rt(virtual_config());
  World root = rt.make_root();
  auto out = AltBlock(rt, root)
                 .alt("one", [](AltContext& ctx) { ctx.work(50); })
                 .alt("two", [](AltContext& ctx) { ctx.work(10); })
                 .timeout(vt_sec(1))
                 .elimination(Elimination::kSynchronous)
                 .run();
  EXPECT_EQ(out.winner, 1u);
  EXPECT_EQ(out.winner_name, "two");
}

}  // namespace
}  // namespace mw
