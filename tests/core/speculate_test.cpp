#include "core/speculate.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

RuntimeConfig virtual_config() {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = 4;
  cfg.cost = CostModel::free();
  cfg.page_size = 64;
  cfg.num_pages = 32;
  return cfg;
}

TEST(Speculate, ReturnsWinnersValue) {
  Runtime rt(virtual_config());
  auto r = speculate<int>(
      rt, {{"slow", [](AltContext& ctx) {
              ctx.work(100);
              return 1;
            }, nullptr},
           {"fast", [](AltContext& ctx) {
              ctx.work(10);
              return 2;
            }, nullptr}});
  ASSERT_TRUE(r.value.has_value());
  EXPECT_EQ(*r.value, 2);
  EXPECT_EQ(r.winner_name, "fast");
}

TEST(Speculate, DoubleValues) {
  Runtime rt(virtual_config());
  auto r = speculate<double>(
      rt, {{"pi", [](AltContext& ctx) {
              ctx.work(1);
              return 3.14159;
            }, nullptr}});
  ASSERT_TRUE(r.value.has_value());
  EXPECT_DOUBLE_EQ(*r.value, 3.14159);
}

TEST(Speculate, StructValues) {
  struct Point {
    int x;
    int y;
  };
  Runtime rt(virtual_config());
  auto r = speculate<Point>(
      rt, {{"p", [](AltContext& ctx) {
              ctx.work(1);
              return Point{3, 4};
            }, nullptr}});
  ASSERT_TRUE(r.value.has_value());
  EXPECT_EQ(r.value->x, 3);
  EXPECT_EQ(r.value->y, 4);
}

TEST(Speculate, FailedAlternativesSkipped) {
  Runtime rt(virtual_config());
  auto r = speculate<int>(
      rt, {{"dies", [](AltContext& ctx) -> int {
              ctx.fail("nope");
            }, nullptr},
           {"lives", [](AltContext& ctx) {
              ctx.work(50);
              return 7;
            }, nullptr}});
  ASSERT_TRUE(r.value.has_value());
  EXPECT_EQ(*r.value, 7);
}

TEST(Speculate, AllFailGivesNullopt) {
  Runtime rt(virtual_config());
  auto r = speculate<int>(
      rt, {{"a", [](AltContext& ctx) -> int { ctx.fail(""); }, nullptr},
           {"b", [](AltContext& ctx) -> int { ctx.fail(""); }, nullptr}});
  EXPECT_FALSE(r.value.has_value());
  EXPECT_EQ(r.outcome.failure, AltFailure::kAllFailed);
}

TEST(Speculate, GuardsApply) {
  Runtime rt(virtual_config());
  auto r = speculate<int>(
      rt, {{"guarded-out", [](AltContext& ctx) {
              ctx.work(1);
              return 1;
            }, [](const World&) { return false; }},
           {"allowed", [](AltContext& ctx) {
              ctx.work(100);
              return 2;
            }, nullptr}});
  ASSERT_TRUE(r.value.has_value());
  EXPECT_EQ(*r.value, 2);
}

TEST(Speculate, TimeoutFails) {
  Runtime rt(virtual_config());
  AltOptions opts;
  opts.timeout = 10;
  auto r = speculate<int>(rt,
                          {{"too-slow", [](AltContext& ctx) {
                              ctx.work(10'000);
                              return 1;
                            }, nullptr}},
                          opts);
  EXPECT_FALSE(r.value.has_value());
  EXPECT_EQ(r.outcome.failure, AltFailure::kTimeout);
}

TEST(Speculate, ThreadBackendWorksToo) {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kThread;
  cfg.page_size = 64;
  cfg.num_pages = 32;
  Runtime rt(cfg);
  auto r = speculate<int>(
      rt, {{"only", [](AltContext&) { return 11; }, nullptr}});
  ASSERT_TRUE(r.value.has_value());
  EXPECT_EQ(*r.value, 11);
}

}  // namespace
}  // namespace mw
