// Deterministic scheduler model/property suite. The kPool backend's
// deterministic mode runs every task on the calling thread in an order
// drawn from a seed — each seed is one reproducible interleaving of the
// work-stealing scheduler. The property: on scripted races whose winner is
// semantically unique, every seed must produce the same observable outcome
// as the kThread backend — same winners, same failure kinds, same
// committed root-world bytes, clean audit — while the execution *order*
// varies freely across seeds.
//
// CI shards the seed sweep with MW_FAULT_SEED_BASE / MW_FAULT_SEED_COUNT
// (the fault-matrix convention); a failing seed is a replay handle.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "core/runtime_auditor.hpp"
#include "core/spec_scheduler.hpp"

namespace mw {
namespace {

constexpr int kRaces = 10;

struct ScriptRun {
  std::vector<int> winners;            // per race; -1 = block failed
  std::vector<AltFailure> failures;    // per race
  std::vector<std::uint64_t> digest;   // committed root bytes, slot by slot
  std::string order;                   // execution order of alt bodies
  bool audit_clean = false;
  std::string audit_text;
  SchedStats sched;                    // zeroed for non-pool backends
};

/// Runs the scripted race sequence. Race r has three alternatives; the one
/// at index r%3 stores a distinct value and syncs, the others fail — the
/// winner is semantically unique, so the outcome must not depend on the
/// schedule. Race 5 is the all-fail block (failure is the (n+1)-th
/// alternative). `order` logs which bodies actually ran, in what order.
ScriptRun run_script(AltBackend backend, std::uint64_t pool_seed) {
  RuntimeConfig cfg;
  cfg.backend = backend;
  cfg.page_size = 256;
  cfg.num_pages = 16;
  cfg.pool.deterministic_seed = pool_seed;
  cfg.pool.workers = 2;
  Runtime rt(cfg);

  ScriptRun out;
  RuntimeAuditor auditor;
  World root = rt.make_root("script");
  auditor.add_world(root);
  std::mutex order_mu;

  for (int r = 0; r < kRaces; ++r) {
    const int w = r % 3;
    const bool all_fail = r == 5;
    std::vector<Alternative> race;
    for (int a = 0; a < 3; ++a) {
      const std::string name(1, static_cast<char>('a' + a));
      race.push_back(Alternative{
          name, nullptr,
          [&, r, a, w, all_fail, name](AltContext& ctx) {
            {
              std::lock_guard<std::mutex> lk(order_mu);
              out.order += name;
            }
            ctx.work(vt_us(20));
            if (all_fail || a != w) ctx.fail("scripted loss");
            ctx.space().store<std::uint64_t>(
                8ull * static_cast<std::uint64_t>(r % 8),
                1000ull + static_cast<std::uint64_t>(r));
            ctx.set_result_string(name);
          },
          nullptr, 0.0});
    }
    const AltOutcome o = run_alternatives(rt, root, race, {});
    out.winners.push_back(o.winner ? static_cast<int>(*o.winner) : -1);
    out.failures.push_back(o.failure);
    if (all_fail) {
      EXPECT_TRUE(o.failed) << "race " << r;
    } else {
      EXPECT_FALSE(o.failed) << "race " << r;
      EXPECT_EQ(o.winner_name, std::string(1, static_cast<char>('a' + w)));
    }
  }

  for (std::uint64_t s = 0; s < 8; ++s)
    out.digest.push_back(root.space().load<std::uint64_t>(8 * s));
  const AuditReport audit = auditor.run(rt.processes());
  out.audit_clean = audit.clean();
  out.audit_text = audit.to_string();
  if (backend == AltBackend::kPool) out.sched = rt.scheduler().stats();
  return out;
}

void expect_equivalent(const ScriptRun& a, const ScriptRun& b,
                       const std::string& label) {
  EXPECT_EQ(a.winners, b.winners) << label;
  EXPECT_EQ(a.failures, b.failures) << label;
  EXPECT_EQ(a.digest, b.digest) << label;
  EXPECT_TRUE(a.audit_clean) << label << "\n" << a.audit_text;
  EXPECT_TRUE(b.audit_clean) << label << "\n" << b.audit_text;
}

TEST(SchedModel, DeterministicPoolMatchesThreadBackend) {
  const ScriptRun thread_run = run_script(AltBackend::kThread, 0);
  const ScriptRun pool_run = run_script(AltBackend::kPool, 3);
  expect_equivalent(thread_run, pool_run, "thread vs pool(seed=3)");
}

TEST(SchedModel, SameSeedReplaysTheIdenticalSchedule) {
  const ScriptRun a = run_script(AltBackend::kPool, 17);
  const ScriptRun b = run_script(AltBackend::kPool, 17);
  expect_equivalent(a, b, "seed 17 replay");
  EXPECT_EQ(a.order, b.order);  // not just outcome: the schedule itself
  EXPECT_EQ(a.sched.executed, b.sched.executed);
  EXPECT_EQ(a.sched.stolen, b.sched.stolen);
  EXPECT_EQ(a.sched.revoked, b.sched.revoked);
}

TEST(SchedModel, SeedsExploreDifferentInterleavings) {
  // Equal-priority tasks: the owner/thief coin varies LIFO vs FIFO
  // tie-breaking, so the bodies' execution order must differ across seeds
  // even though every outcome is identical.
  std::vector<std::string> orders;
  for (std::uint64_t seed = 1; seed <= 16; ++seed)
    orders.push_back(run_script(AltBackend::kPool, seed).order);
  bool any_different = false;
  for (const std::string& o : orders)
    if (o != orders.front()) any_different = true;
  EXPECT_TRUE(any_different)
      << "16 seeds produced one schedule: the coin is not wired";
}

TEST(SchedModel, EnvSeedSweepIsEquivalentToTheThreadBackend) {
  const char* base_env = std::getenv("MW_FAULT_SEED_BASE");
  const char* count_env = std::getenv("MW_FAULT_SEED_COUNT");
  const std::uint64_t base =
      base_env ? std::strtoull(base_env, nullptr, 10) : 1;
  const std::uint64_t count =
      count_env ? std::strtoull(count_env, nullptr, 10) : 16;
  const ScriptRun reference = run_script(AltBackend::kThread, 0);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    const ScriptRun run = run_script(AltBackend::kPool, seed);
    expect_equivalent(reference, run, "seed=" + std::to_string(seed));
  }
}

TEST(SchedModel, PriorityHintsDoNotChangeTheScriptedOutcome) {
  // Priorities reorder execution, never selection: boosting a scripted
  // loser must not let it win.
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kPool;
  cfg.page_size = 256;
  cfg.num_pages = 16;
  cfg.pool.deterministic_seed = 9;
  cfg.pool.workers = 2;
  Runtime rt(cfg);
  World root = rt.make_root("prio");
  std::vector<Alternative> race;
  race.push_back({"boosted-loser", nullptr,
                  [](AltContext& ctx) { ctx.fail("still loses"); }, nullptr,
                  /*priority=*/5.0});
  race.push_back({"winner", nullptr,
                  [](AltContext& ctx) { ctx.space().store<int>(0, 7); },
                  nullptr, /*priority=*/-1.0});
  const AltOutcome out = run_alternatives(rt, root, race, {});
  ASSERT_FALSE(out.failed);
  EXPECT_EQ(out.winner_name, "winner");
  EXPECT_EQ(root.space().load<int>(0), 7);
}

}  // namespace
}  // namespace mw
