// Timeout-path coverage across backends: when every child hangs, alt_wait's
// deadline must still fire and select the failure alternative — "choose a
// value clearly unacceptable to the application" (§2.2) only works if a
// wedged child cannot wedge the parent.
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/alt_posix.hpp"
#include "core/runtime.hpp"

namespace mw {
namespace {

Runtime make_runtime(AltBackend backend) {
  RuntimeConfig cfg;
  cfg.backend = backend;
  return Runtime(cfg);
}

TEST(AltTimeoutVirtual, AllHungSelectsFailureAtDeadline) {
  Runtime rt = make_runtime(AltBackend::kVirtual);
  World root = rt.make_root();
  const AltOutcome out = AltBlock(rt, root)
                             .alt("h1", [](AltContext& ctx) { ctx.hang(); })
                             .alt("h2", [](AltContext& ctx) { ctx.hang(); })
                             .timeout(vt_ms(50))
                             .run();
  EXPECT_TRUE(out.failed);
  EXPECT_EQ(out.failure, AltFailure::kTimeout);
  EXPECT_GE(out.elapsed, vt_ms(50));
  for (const AltReport& r : out.alts)
    EXPECT_EQ(rt.processes().status(r.pid), ProcStatus::kEliminated);
}

TEST(AltTimeoutVirtual, HungSiblingDoesNotDelayWinner) {
  Runtime rt = make_runtime(AltBackend::kVirtual);
  World root = rt.make_root();
  const AltOutcome out =
      AltBlock(rt, root)
          .alt("worker", [](AltContext& ctx) { ctx.work(vt_ms(5)); })
          .alt("hanger", [](AltContext& ctx) { ctx.hang(); })
          .timeout(vt_ms(100))
          .run();
  ASSERT_FALSE(out.failed);
  EXPECT_EQ(out.winner_name, "worker");
  EXPECT_LT(out.elapsed, vt_ms(100));
}

TEST(AltTimeoutVirtual, InfiniteTimeoutWithAllHungStillReturns) {
  // No deadline: the hung tasks are modelled with a finite (huge) duration,
  // so the block still resolves — as a failure — instead of wedging.
  Runtime rt = make_runtime(AltBackend::kVirtual);
  World root = rt.make_root();
  const AltOutcome out = AltBlock(rt, root)
                             .alt("h", [](AltContext& ctx) { ctx.hang(); })
                             .run();
  EXPECT_TRUE(out.failed);
}

TEST(AltTimeoutVirtual, MixOfHangAndFailTimesOut) {
  // The failer aborts early; the hanger outlives the deadline: the parent
  // must not report kAllFailed (a child was still nominally running).
  Runtime rt = make_runtime(AltBackend::kVirtual);
  World root = rt.make_root();
  const AltOutcome out =
      AltBlock(rt, root)
          .alt("failer", [](AltContext& ctx) { ctx.fail("nope"); })
          .alt("hanger", [](AltContext& ctx) { ctx.hang(); })
          .timeout(vt_ms(50))
          .run();
  EXPECT_TRUE(out.failed);
  EXPECT_EQ(out.failure, AltFailure::kTimeout);
}

TEST(AltTimeoutThread, AllHungSelectsFailureAtDeadline) {
  Runtime rt = make_runtime(AltBackend::kThread);
  World root = rt.make_root();
  const AltOutcome out = AltBlock(rt, root)
                             .alt("h1", [](AltContext& ctx) { ctx.hang(); })
                             .alt("h2", [](AltContext& ctx) { ctx.hang(); })
                             .timeout(vt_ms(200))  // µs of wall time
                             .run();
  EXPECT_TRUE(out.failed);
  EXPECT_EQ(out.failure, AltFailure::kTimeout);
  // The hung children were eliminated; the block returned (we are here),
  // so alt_wait did not wedge.
  for (const AltReport& r : out.alts)
    EXPECT_TRUE(is_terminal(rt.processes().status(r.pid)));
}

TEST(AltTimeoutThread, HungSiblingIsEliminatedByWinner) {
  Runtime rt = make_runtime(AltBackend::kThread);
  World root = rt.make_root();
  const AltOutcome out =
      AltBlock(rt, root)
          .alt("worker",
               [](AltContext& ctx) {
                 ctx.sleep_for(vt_ms(2));
                 ctx.set_result_string("w");
               })
          .alt("hanger", [](AltContext& ctx) { ctx.hang(); })
          .timeout(vt_sec(10))
          .run();
  ASSERT_FALSE(out.failed);
  EXPECT_EQ(out.winner_name, "worker");
}

TEST(AltTimeoutPosix, SpinningChildrenCannotOutliveTheDeadline) {
  PosixAltBlock block;
  switch (block.alt_spawn(2)) {
    case 0: {
      const auto winner = block.parent_wait(/*timeout_us=*/150'000);
      EXPECT_FALSE(winner.has_value());  // failure alternative selected
      break;
    }
    case 1:
    case 2:
      for (;;) ::usleep(10'000);  // hang: never sync, never abort
  }
}

}  // namespace
}  // namespace mw
