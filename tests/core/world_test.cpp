#include "core/world.hpp"

#include <gtest/gtest.h>

namespace mw {
namespace {

class WorldTest : public ::testing::Test {
 protected:
  ProcessTable table_;
};

TEST_F(WorldTest, RootWorldIsRunningAndCertain) {
  World w(table_, 64, 16, "root");
  EXPECT_NE(w.pid(), kNoPid);
  EXPECT_EQ(table_.status(w.pid()), ProcStatus::kRunning);
  EXPECT_TRUE(w.certain());
}

TEST_F(WorldTest, ForkAlternativeSetsSiblingRivalry) {
  World parent(table_, 64, 16);
  Pid a = table_.create(parent.pid());
  Pid b = table_.create(parent.pid());
  World child = parent.fork_alternative(a, {a, b});
  EXPECT_EQ(child.pid(), a);
  EXPECT_TRUE(child.predicates().assumes_completes(a));
  EXPECT_TRUE(child.predicates().assumes_fails(b));
  EXPECT_FALSE(child.certain());
}

TEST_F(WorldTest, ForkInheritsParentAssumptions) {
  World parent(table_, 64, 16);
  parent.predicates().assume_completes(77);
  Pid a = table_.create(parent.pid());
  World child = parent.fork_alternative(a, {a});
  EXPECT_TRUE(child.predicates().assumes_completes(77));
}

TEST_F(WorldTest, ChildSharesPagesUntilWrite) {
  World parent(table_, 64, 16);
  parent.space().store<int>(0, 42);
  Pid a = table_.create(parent.pid());
  World child = parent.fork_alternative(a, {a});
  EXPECT_EQ(child.space().load<int>(0), 42);
  EXPECT_GE(child.shared_pages_with(parent), 1u);
  child.space().store<int>(0, 43);
  EXPECT_EQ(parent.space().load<int>(0), 42);
  EXPECT_EQ(child.space().load<int>(0), 43);
}

TEST_F(WorldTest, CommitAbsorbsChildState) {
  World parent(table_, 64, 16);
  parent.space().store<int>(0, 1);
  Pid a = table_.create(parent.pid());
  World child = parent.fork_alternative(a, {a});
  child.space().store<int>(0, 99);
  child.space().store<int>(100, 7);
  const Pid parent_pid = parent.pid();
  parent.commit_from(std::move(child));
  EXPECT_EQ(parent.space().load<int>(0), 99);
  EXPECT_EQ(parent.space().load<int>(100), 7);
  // "up to and including maintenance of the process id".
  EXPECT_EQ(parent.pid(), parent_pid);
}

TEST_F(WorldTest, CloneWithPredicatesMakesNewProcess) {
  World w(table_, 64, 16);
  w.space().store<int>(0, 5);
  PredicateSet preds;
  preds.assume_completes(3);
  World copy = w.clone_with_predicates(preds, "split");
  EXPECT_NE(copy.pid(), w.pid());
  EXPECT_EQ(copy.space().load<int>(0), 5);
  EXPECT_TRUE(copy.predicates().assumes_completes(3));
  EXPECT_EQ(table_.status(copy.pid()), ProcStatus::kRunning);
}

TEST_F(WorldTest, SiblingWorldsAreIsolated) {
  World parent(table_, 64, 16);
  parent.space().store<int>(0, 10);
  Pid a = table_.create(parent.pid());
  Pid b = table_.create(parent.pid());
  World wa = parent.fork_alternative(a, {a, b});
  World wb = parent.fork_alternative(b, {a, b});
  wa.space().store<int>(0, 11);
  wb.space().store<int>(0, 12);
  EXPECT_EQ(wa.space().load<int>(0), 11);
  EXPECT_EQ(wb.space().load<int>(0), 12);
  EXPECT_EQ(parent.space().load<int>(0), 10);
}

}  // namespace
}  // namespace mw
