// Property tests for the adaptive speculation policy engine
// (core/spec_policy.hpp), swept over MW_FAULT_SEED_BASE / MW_FAULT_SEED_COUNT
// like the fault matrices. The properties under test are the engine's
// contract, not any particular tuning:
//
//   * kStatic is bit-for-bit pass-through: every decision returns its static
//     input, no step advances, no trace events — a kStatic pool run replays
//     exactly, per seed;
//   * decisions are pure in (config, snapshot, seed, step): identical inputs
//     give identical outputs across repeated calls, fresh engines, and
//     concurrent callers (thread count must not matter);
//   * the epsilon-explore floor guarantees every tracked position takes the
//     top slot at least once per window;
//   * decide_width never leaves [min(min_width, budget), budget], and a
//     shrunken width never rejects a race the static budget admits;
//   * latency-reservoir cold start: before min_latency_samples the adaptive
//     hedge delay falls back to the static delay — never to 0.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "core/spec_policy.hpp"
#include "util/rng.hpp"

namespace mw {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t def) {
  const char* v = std::getenv(name);
  return v ? std::strtoull(v, nullptr, 10) : def;
}

std::uint64_t sweep_base() { return env_u64("MW_FAULT_SEED_BASE", 1); }
std::uint64_t sweep_count() { return env_u64("MW_FAULT_SEED_COUNT", 8); }

/// A fabricated race outcome: k spawned positions, `winner` (0-based)
/// succeeded, the rest ran and failed.
AltOutcome fake_race(std::size_t k, std::size_t winner) {
  AltOutcome out;
  out.winner = winner;
  out.alts.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    out.alts[i].index = i + 1;
    out.alts[i].spawned = true;
    out.alts[i].ran = true;
    out.alts[i].success = i == winner;
    if (i != winner) out.alts[i].pages_copied = 1;
  }
  return out;
}

/// A seeded pseudo-random snapshot: any field combination the accumulators
/// could reach, for bound properties that must hold on all of them.
PolicySnapshot random_snapshot(Rng& rng) {
  PolicySnapshot s;
  s.races = rng.next_below(100);
  s.work_total = static_cast<double>(rng.next_below(1000));
  s.work_wasted = s.work_total * rng.next_double();
  s.admissions = rng.next_below(100);
  s.admission_deferrals = rng.next_below(100);
  s.alts.resize(1 + rng.next_below(6));
  for (PolicyAltStat& a : s.alts) {
    a.spawned = rng.next_below(50);
    a.wins = a.spawned == 0 ? 0 : rng.next_below(a.spawned + 1);
    a.last_boost_step = rng.next_below(20);
  }
  s.latency_samples = rng.next_below(32);
  s.latency_p50 = static_cast<VDuration>(rng.next_below(1000));
  s.latency_p95 = s.latency_p50 + static_cast<VDuration>(rng.next_below(1000));
  return s;
}

TEST(SpecPolicy, StaticDecisionsArePureStaticPassThrough) {
  const std::uint64_t base = sweep_base();
  for (std::uint64_t seed = base; seed < base + sweep_count(); ++seed) {
    Rng rng(seed);
    PolicyConfig cfg;
    cfg.mode = PolicyMode::kStatic;
    for (int trial = 0; trial < 20; ++trial) {
      const PolicySnapshot s = random_snapshot(rng);
      const std::size_t budget = rng.next_below(16);
      EXPECT_EQ(SpecPolicy::decide_width(cfg, s, budget), budget);
      std::vector<double> bases(1 + rng.next_below(5));
      for (double& b : bases) b = rng.next_double();
      const PolicyPlan plan =
          SpecPolicy::decide_plan(cfg, s, seed, trial, bases);
      EXPECT_EQ(plan.priority, bases);
      EXPECT_FALSE(plan.explored);
      ASSERT_EQ(plan.order.size(), bases.size());
      for (std::size_t i = 0; i < plan.order.size(); ++i) {
        EXPECT_EQ(plan.order[i], i) << "static order must be identity";
      }
      const VDuration delay = 1 + static_cast<VDuration>(rng.next_below(500));
      EXPECT_EQ(SpecPolicy::decide_hedge_delay(cfg, s, delay), delay);
      EXPECT_TRUE(SpecPolicy::decide_split(cfg, s, trial, 4));
    }
  }
}

TEST(SpecPolicy, StaticWrappersNeverAdvanceStateOrStats) {
  SpecPolicy policy{PolicyConfig{}};  // default config is kStatic
  policy.observe_race(fake_race(4, 1));
  (void)policy.admission_width(8);
  const PolicyPlan plan = policy.plan_race(7, {0.5, 0.25});
  EXPECT_EQ(plan.priority, (std::vector<double>{0.5, 0.25}));
  (void)policy.hedge_delay(vt_ms(2));
  EXPECT_TRUE(policy.allow_split(0, 4));
  const PolicyStats st = policy.stats();
  EXPECT_EQ(st.plans, 0u);
  EXPECT_EQ(st.explores, 0u);
  EXPECT_EQ(st.width_decisions, 0u);
  EXPECT_EQ(st.hedge_decisions, 0u);
  EXPECT_EQ(st.splits_vetoed, 0u);
}

/// One deterministic-pool run of scripted races under a given policy mode:
/// the winners and per-position report flags are the replay fingerprint.
std::string pool_fingerprint(std::uint64_t seed, PolicyMode mode) {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kPool;
  cfg.page_size = 256;
  cfg.num_pages = 16;
  cfg.seed = seed;
  cfg.pool.deterministic_seed = seed;
  cfg.pool.workers = 2;
  cfg.pool.deterministic_steal_prob = 0.25;
  cfg.policy.mode = mode;
  Runtime rt(cfg);
  World root = rt.make_root("replay");
  std::string fp;
  Rng script(seed);
  for (int r = 0; r < 12; ++r) {
    const std::size_t winner = script.next_below(3);
    std::vector<Alternative> race;
    for (std::size_t i = 0; i < 3; ++i) {
      if (i == winner) {
        race.push_back({"w", nullptr,
                        [](AltContext& ctx) { ctx.space().store<int>(0, 1); },
                        nullptr, 0.0});
      } else {
        race.push_back({"l", nullptr,
                        [](AltContext& ctx) { ctx.fail("scripted"); },
                        nullptr, 0.0});
      }
    }
    const AltOutcome out = run_alternatives(rt, root, race, {});
    fp += out.winner ? std::to_string(*out.winner) : "x";
    for (const AltReport& a : out.alts) {
      fp += a.ran ? 'r' : (a.revoked ? 'v' : '.');
    }
    fp += '/';
  }
  return fp;
}

TEST(SpecPolicy, StaticPoolRunReplaysBitForBitPerSeed) {
  const std::uint64_t base = sweep_base();
  for (std::uint64_t seed = base; seed < base + sweep_count(); ++seed) {
    const std::string a = pool_fingerprint(seed, PolicyMode::kStatic);
    const std::string b = pool_fingerprint(seed, PolicyMode::kStatic);
    EXPECT_EQ(a, b) << "seed=" << seed;
  }
}

TEST(SpecPolicy, AdaptivePoolRunReplaysBitForBitPerSeed) {
  // Adaptive decisions must be as replayable as static ones: the policy's
  // rng is keyed (seed, step), never the wall clock or the callers' state.
  const std::uint64_t base = sweep_base();
  for (std::uint64_t seed = base; seed < base + sweep_count(); ++seed) {
    const std::string a = pool_fingerprint(seed, PolicyMode::kAdaptive);
    const std::string b = pool_fingerprint(seed, PolicyMode::kAdaptive);
    EXPECT_EQ(a, b) << "seed=" << seed;
  }
}

TEST(SpecPolicy, IdenticalSnapshotAndSeedGiveIdenticalDecisions) {
  const std::uint64_t base = sweep_base();
  for (std::uint64_t seed = base; seed < base + sweep_count(); ++seed) {
    Rng rng(seed);
    PolicyConfig cfg;
    cfg.mode = PolicyMode::kAdaptive;
    const PolicySnapshot s = random_snapshot(rng);
    const std::vector<double> bases{0.0, 0.5, 0.25, 0.75};
    const std::uint64_t step = 1 + rng.next_below(100);
    const PolicyPlan ref = SpecPolicy::decide_plan(cfg, s, seed, step, bases);
    const std::size_t ref_width = SpecPolicy::decide_width(cfg, s, 8);
    const VDuration ref_delay = SpecPolicy::decide_hedge_delay(cfg, s, 100);

    // Concurrent callers: the decision functions are pure, so the thread
    // count must not matter. Any divergence is a determinism bug.
    constexpr int kThreads = 8;
    std::vector<PolicyPlan> plans(kThreads);
    std::vector<std::size_t> widths(kThreads);
    std::vector<VDuration> delays(kThreads);
    {
      std::vector<std::thread> threads;
      threads.reserve(kThreads);
      for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
          plans[t] = SpecPolicy::decide_plan(cfg, s, seed, step, bases);
          widths[t] = SpecPolicy::decide_width(cfg, s, 8);
          delays[t] = SpecPolicy::decide_hedge_delay(cfg, s, 100);
        });
      }
      for (std::thread& th : threads) th.join();
    }
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(plans[t].priority, ref.priority) << "seed=" << seed;
      EXPECT_EQ(plans[t].order, ref.order) << "seed=" << seed;
      EXPECT_EQ(plans[t].top, ref.top) << "seed=" << seed;
      EXPECT_EQ(plans[t].deferred, ref.deferred) << "seed=" << seed;
      EXPECT_EQ(plans[t].explored, ref.explored) << "seed=" << seed;
      EXPECT_EQ(widths[t], ref_width) << "seed=" << seed;
      EXPECT_EQ(delays[t], ref_delay) << "seed=" << seed;
    }
  }
}

TEST(SpecPolicy, TwoEnginesFedTheSameHistoryPlanIdentically) {
  const std::uint64_t base = sweep_base();
  for (std::uint64_t seed = base; seed < base + sweep_count(); ++seed) {
    PolicyConfig cfg;
    cfg.mode = PolicyMode::kAdaptive;
    cfg.seed = seed;
    SpecPolicy a(cfg);
    SpecPolicy b(cfg);
    Rng script(seed);
    const std::vector<double> bases{0.0, 0.0, 0.0};
    for (int r = 0; r < 50; ++r) {
      const PolicyPlan pa = a.plan_race(0, bases);
      const PolicyPlan pb = b.plan_race(0, bases);
      ASSERT_EQ(pa.order, pb.order) << "seed=" << seed << " race=" << r;
      ASSERT_EQ(pa.explored, pb.explored) << "seed=" << seed << " race=" << r;
      const AltOutcome out = fake_race(3, script.next_below(3));
      a.observe_race(out);
      b.observe_race(out);
    }
  }
}

TEST(SpecPolicy, ExploreFloorBoostsEveryPositionOncePerWindow) {
  const std::uint64_t base = sweep_base();
  constexpr std::size_t kAlts = 4;
  for (std::uint64_t seed = base; seed < base + sweep_count(); ++seed) {
    PolicyConfig cfg;
    cfg.mode = PolicyMode::kAdaptive;
    cfg.seed = seed;
    cfg.epsilon = 0.0;  // isolate the floor from the epsilon draw
    cfg.explore_window = 8;
    SpecPolicy policy(cfg);
    // Position 0 wins every race: without the floor the plan would boost
    // position 0 forever and starve the rest.
    policy.observe_race(fake_race(kAlts, 0));
    const std::vector<double> bases(kAlts, 0.0);
    std::vector<std::uint64_t> last_top(kAlts, 0);
    constexpr std::uint64_t kPlans = 200;
    // Eligibility begins explore_window steps after the last boost; with
    // k-1 starved competitors a position then waits at most k-1 more plans
    // for its turn as the stalest.
    const std::uint64_t bound = cfg.explore_window + kAlts;
    for (std::uint64_t p = 1; p <= kPlans; ++p) {
      const PolicyPlan plan = policy.plan_race(0, bases);
      ASSERT_LT(plan.top, kAlts);
      last_top[plan.top] = p;
      for (std::size_t i = 0; i < kAlts; ++i) {
        EXPECT_LE(p - last_top[i], bound)
            << "seed=" << seed << ": position " << i << " starved at plan "
            << p;
      }
      policy.observe_race(fake_race(kAlts, 0));
    }
    for (std::size_t i = 0; i < kAlts; ++i) {
      EXPECT_GT(last_top[i], 0u)
          << "seed=" << seed << ": position " << i << " never explored";
    }
  }
}

TEST(SpecPolicy, WidthStaysWithinBudgetBoundsOnAnySnapshot) {
  const std::uint64_t base = sweep_base();
  for (std::uint64_t seed = base; seed < base + sweep_count(); ++seed) {
    Rng rng(seed);
    PolicyConfig cfg;
    cfg.mode = PolicyMode::kAdaptive;
    for (int trial = 0; trial < 50; ++trial) {
      const PolicySnapshot s = random_snapshot(rng);
      for (std::size_t budget : {std::size_t{0}, std::size_t{1},
                                 std::size_t{2}, std::size_t{5},
                                 std::size_t{8}, std::size_t{16}}) {
        const std::size_t w = SpecPolicy::decide_width(cfg, s, budget);
        EXPECT_LE(w, budget);
        EXPECT_GE(w, std::min(cfg.min_width, budget));
      }
    }
  }
}

TEST(SpecPolicy, AdaptiveWidthNeverRejectsARaceTheStaticBudgetAdmits) {
  // High wasted-work history shrinks the width, but the scheduler clamps
  // the effective budget to what the race needs: a 4-world race on a
  // max_live_worlds=4 pool must still admit with the controller at its
  // floor, and the live-world count must never exceed the static budget.
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kPool;
  cfg.page_size = 256;
  cfg.num_pages = 16;
  cfg.seed = 11;
  cfg.pool.deterministic_seed = 11;
  cfg.pool.workers = 2;
  cfg.pool.max_live_worlds = 4;
  cfg.policy.mode = PolicyMode::kAdaptive;
  cfg.policy.min_races = 1;  // the controller reacts from the first race
  Runtime rt(cfg);
  World root = rt.make_root("clamp");
  for (int r = 0; r < 24; ++r) {
    std::vector<Alternative> race;
    for (int i = 0; i < 4; ++i) {
      const bool win = i == 0;
      race.push_back({win ? "w" : "l", nullptr,
                      [win](AltContext& ctx) {
                        ctx.work(100);  // losers burn work: waste stays high
                        if (!win) ctx.fail("scripted");
                        ctx.space().store<int>(0, 1);
                      },
                      nullptr, 0.0});
    }
    const AltOutcome out = run_alternatives(rt, root, race, {});
    EXPECT_FALSE(out.failed) << "race " << r << " rejected or failed";
    EXPECT_LE(rt.scheduler().live_worlds(), cfg.pool.max_live_worlds);
  }
  EXPECT_EQ(rt.scheduler().stats().admission_rejected, 0u);
}

TEST(SpecPolicy, HedgeDelayFallsBackToStaticWhileReservoirIsCold) {
  PolicyConfig cfg;
  cfg.mode = PolicyMode::kAdaptive;
  cfg.min_latency_samples = 8;
  cfg.hedge_floor = 1;
  SpecPolicy policy(cfg);
  const VDuration static_delay = vt_ms(2);
  // No samples at all: static fallback, never 0.
  EXPECT_EQ(policy.hedge_delay(static_delay), static_delay);
  // Short of the minimum: still the static fallback, even though the
  // reservoir already holds (degenerate, tiny) percentiles.
  for (int i = 0; i < 7; ++i) policy.observe_latency(10);
  EXPECT_EQ(policy.hedge_delay(static_delay), static_delay);
  EXPECT_EQ(policy.stats().hedge_fallbacks, 2u);
  // Warm: the adaptive delay is the observed p95 (here 10), not the static
  // delay and definitely not 0.
  policy.observe_latency(10);
  const VDuration warm = policy.hedge_delay(static_delay);
  EXPECT_EQ(warm, 10);
  EXPECT_GT(warm, 0);
  EXPECT_EQ(policy.stats().hedge_fallbacks, 2u);  // no new fallback
}

TEST(SpecPolicy, ColdStartSnapshotNeverYieldsZeroHedgeDelay) {
  const std::uint64_t base = sweep_base();
  for (std::uint64_t seed = base; seed < base + sweep_count(); ++seed) {
    Rng rng(seed);
    PolicyConfig cfg;
    cfg.mode = PolicyMode::kAdaptive;
    for (int trial = 0; trial < 50; ++trial) {
      PolicySnapshot s = random_snapshot(rng);
      const VDuration static_delay =
          1 + static_cast<VDuration>(rng.next_below(1000));
      if (trial % 2 == 0) s.latency_samples = rng.next_below(8);  // cold
      const VDuration d = SpecPolicy::decide_hedge_delay(cfg, s, static_delay);
      EXPECT_GT(d, 0) << "seed=" << seed;
      if (s.latency_samples < cfg.min_latency_samples) {
        EXPECT_EQ(d, static_delay) << "seed=" << seed;
      }
    }
  }
}

}  // namespace
}  // namespace mw
