#include "core/fork_backend.hpp"

#include <unistd.h>

#include <gtest/gtest.h>

namespace mw {
namespace {

TEST(ForkBackend, SingleWinner) {
  auto out = run_alternatives_fork(
      {ForkAlternative{"only", [](std::vector<std::uint8_t>& r) {
                         r = {1, 2, 3};
                         return true;
                       }}});
  EXPECT_FALSE(out.failed);
  EXPECT_EQ(out.winner, 0u);
  EXPECT_EQ(out.result, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(ForkBackend, FastChildBeatsSlowChild) {
  auto out = run_alternatives_fork(
      {ForkAlternative{"slow",
                       [](std::vector<std::uint8_t>& r) {
                         ::usleep(300'000);
                         r = {9};
                         return true;
                       }},
       ForkAlternative{"fast", [](std::vector<std::uint8_t>& r) {
                         r = {7};
                         return true;
                       }}});
  EXPECT_FALSE(out.failed);
  EXPECT_EQ(out.winner, 1u);
  EXPECT_EQ(out.result, (std::vector<std::uint8_t>{7}));
}

TEST(ForkBackend, AbortingChildrenYieldFailure) {
  auto out = run_alternatives_fork(
      {ForkAlternative{"a", [](std::vector<std::uint8_t>&) { return false; }},
       ForkAlternative{"b", [](std::vector<std::uint8_t>&) { return false; }}});
  EXPECT_TRUE(out.failed);
  EXPECT_FALSE(out.winner.has_value());
}

TEST(ForkBackend, TimeoutOnHangingChild) {
  auto out = run_alternatives_fork(
      {ForkAlternative{"hang",
                       [](std::vector<std::uint8_t>&) {
                         ::usleep(10'000'000);
                         return true;
                       }}},
      ForkOptions{.timeout_us = 100'000});
  EXPECT_TRUE(out.failed);
  EXPECT_LT(out.elapsed_sec, 5.0);
}

TEST(ForkBackend, ChildStateChangesAreIsolated) {
  // The child's address space is a COW copy: parent memory is untouched.
  static int shared_value = 10;
  auto out = run_alternatives_fork(
      {ForkAlternative{"mutator", [](std::vector<std::uint8_t>& r) {
                         shared_value = 999;
                         r = {static_cast<std::uint8_t>(shared_value == 999)};
                         return true;
                       }}});
  EXPECT_FALSE(out.failed);
  EXPECT_EQ(out.result[0], 1);      // the child saw its own write
  EXPECT_EQ(shared_value, 10);      // the parent never did
}

TEST(ForkBackend, ResultTruncatedToCapacity) {
  ForkOptions opts;
  opts.result_bytes = 4;
  auto out = run_alternatives_fork(
      {ForkAlternative{"big", [](std::vector<std::uint8_t>& r) {
                         r.assign(100, 5);
                         return true;
                       }}},
      opts);
  EXPECT_EQ(out.result.size(), 4u);
}

TEST(ForkBackend, EmptyBlockFails) {
  auto out = run_alternatives_fork({});
  EXPECT_TRUE(out.failed);
}

TEST(ForkBackend, SynchronousEliminationAlsoWins) {
  ForkOptions opts;
  opts.synchronous_elimination = true;
  auto out = run_alternatives_fork(
      {ForkAlternative{"fast",
                       [](std::vector<std::uint8_t>& r) {
                         r = {1};
                         return true;
                       }},
       ForkAlternative{"hang", [](std::vector<std::uint8_t>&) {
                         ::usleep(10'000'000);
                         return true;
                       }}},
      opts);
  EXPECT_FALSE(out.failed);
  EXPECT_EQ(out.winner, 0u);
  EXPECT_LT(out.elapsed_sec, 5.0);
}

TEST(ForkBackend, MeasureForkLatencyIsPositive) {
  const double sec = measure_fork_latency(32, 4096);
  EXPECT_GT(sec, 0.0);
  EXPECT_LT(sec, 1.0);
}

TEST(ForkBackend, MeasureCowCopyRateIsPositive) {
  const double rate = measure_cow_copy_rate(64, 4096);
  EXPECT_GT(rate, 0.0);
}

}  // namespace
}  // namespace mw
