#include <gtest/gtest.h>

#include <atomic>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"

namespace mw {
namespace {

RuntimeConfig thread_config() {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kThread;
  cfg.page_size = 64;
  cfg.num_pages = 64;
  return cfg;
}

TEST(AltThread, SingleAlternativeWins) {
  Runtime rt(thread_config());
  World root = rt.make_root();
  auto out = run_alternatives(
      rt, root,
      {Alternative{"only", nullptr,
                   [](AltContext& ctx) { ctx.space().store<int>(0, 42); },
                   nullptr}});
  EXPECT_FALSE(out.failed);
  EXPECT_EQ(out.winner, 0u);
  EXPECT_EQ(root.space().load<int>(0), 42);
}

TEST(AltThread, FirstSuccessfulSyncWins) {
  Runtime rt(thread_config());
  World root = rt.make_root();
  // One alternative finishes immediately; the other spins until cancelled.
  std::atomic<bool> slow_started{false};
  auto out = run_alternatives(
      rt, root,
      {Alternative{"quick", nullptr,
                   [](AltContext& ctx) { ctx.space().store<int>(0, 1); },
                   nullptr},
       Alternative{"spin", nullptr,
                   [&](AltContext& ctx) {
                     slow_started = true;
                     for (;;) ctx.checkpoint();  // unwinds when eliminated
                   },
                   nullptr}});
  EXPECT_FALSE(out.failed);
  EXPECT_EQ(out.winner, 0u);
  EXPECT_EQ(root.space().load<int>(0), 1);
}

TEST(AltThread, AllAbortIsFailure) {
  Runtime rt(thread_config());
  World root = rt.make_root();
  auto out = run_alternatives(
      rt, root,
      {Alternative{"a", nullptr, [](AltContext& ctx) { ctx.fail("x"); },
                   nullptr},
       Alternative{"b", nullptr,
                   [](AltContext&) { throw std::runtime_error("y"); },
                   nullptr}});
  EXPECT_TRUE(out.failed);
  EXPECT_EQ(out.failure, AltFailure::kAllFailed);
}

TEST(AltThread, TimeoutKillsSpinners) {
  Runtime rt(thread_config());
  World root = rt.make_root();
  AltOptions opts;
  opts.timeout = 50'000;  // 50 ms
  auto out = run_alternatives(
      rt, root,
      {Alternative{"spin", nullptr,
                   [](AltContext& ctx) {
                     for (;;) ctx.checkpoint();
                   },
                   nullptr}},
      opts);
  EXPECT_TRUE(out.failed);
  EXPECT_EQ(out.failure, AltFailure::kTimeout);
  EXPECT_EQ(rt.processes().status(out.alts[0].pid), ProcStatus::kEliminated);
}

TEST(AltThread, LoserWorldDiscarded) {
  Runtime rt(thread_config());
  World root = rt.make_root();
  root.space().store<int>(0, 5);
  auto out = run_alternatives(
      rt, root,
      {Alternative{"winner", nullptr, [](AltContext&) {}, nullptr},
       Alternative{"loser", nullptr,
                   [](AltContext& ctx) {
                     ctx.space().store<int>(0, 666);
                     for (;;) ctx.checkpoint();
                   },
                   nullptr}});
  EXPECT_EQ(out.winner, 0u);
  EXPECT_EQ(root.space().load<int>(0), 5);
}

TEST(AltThread, GuardAndAcceptApply) {
  Runtime rt(thread_config());
  World root = rt.make_root();
  auto out = run_alternatives(
      rt, root,
      {Alternative{"rejected-by-guard", [](const World&) { return false; },
                   [](AltContext& ctx) { ctx.space().store<int>(0, 1); },
                   nullptr},
       Alternative{"rejected-by-accept", nullptr,
                   [](AltContext& ctx) { ctx.space().store<int>(0, 2); },
                   [](const World&) { return false; }},
       Alternative{"accepted", nullptr,
                   [](AltContext& ctx) { ctx.space().store<int>(0, 3); },
                   [](const World& w) { return w.space().load<int>(0) == 3; }}});
  EXPECT_EQ(out.winner, 2u);
  EXPECT_EQ(root.space().load<int>(0), 3);
}

TEST(AltThread, ResultBytesDelivered) {
  Runtime rt(thread_config());
  World root = rt.make_root();
  auto out = run_alternatives(
      rt, root,
      {Alternative{"r", nullptr,
                   [](AltContext& ctx) { ctx.set_result_string("worlds"); },
                   nullptr}});
  EXPECT_EQ(std::string(out.result.begin(), out.result.end()), "worlds");
}

TEST(AltThread, SynchronousEliminationWaitsForLosers) {
  Runtime rt(thread_config());
  World root = rt.make_root();
  std::atomic<bool> loser_exited{false};
  AltOptions opts;
  opts.elimination = Elimination::kSynchronous;
  auto out = run_alternatives(
      rt, root,
      {Alternative{"w", nullptr, [](AltContext&) {}, nullptr},
       Alternative{"l", nullptr,
                   [&](AltContext& ctx) {
                     struct OnExit {
                       std::atomic<bool>* flag;
                       ~OnExit() { *flag = true; }
                     } guard{&loser_exited};
                     for (;;) ctx.checkpoint();
                   },
                   nullptr}},
      opts);
  EXPECT_EQ(out.winner, 0u);
  // Synchronous elimination means the loser terminated before the block
  // returned.
  EXPECT_TRUE(loser_exited.load());
}

TEST(AltThread, ManyAlternativesStress) {
  Runtime rt(thread_config());
  World root = rt.make_root();
  std::vector<Alternative> alts;
  for (int i = 0; i < 16; ++i) {
    alts.push_back(Alternative{
        "alt" + std::to_string(i), nullptr,
        [i](AltContext& ctx) {
          ctx.space().store<int>(0, i);
          if (i != 7) ctx.fail("only 7 succeeds");
        },
        nullptr});
  }
  auto out = run_alternatives(rt, root, alts);
  EXPECT_EQ(out.winner, 7u);
  EXPECT_EQ(root.space().load<int>(0), 7);
}

TEST(AltThread, StatusesAfterBlock) {
  Runtime rt(thread_config());
  World root = rt.make_root();
  auto out = run_alternatives(
      rt, root,
      {Alternative{"w", nullptr, [](AltContext&) {}, nullptr},
       Alternative{"f", nullptr, [](AltContext& ctx) { ctx.fail(""); },
                   nullptr}});
  ASSERT_TRUE(out.winner.has_value());
  EXPECT_EQ(rt.processes().status(out.alts[0].pid), ProcStatus::kSynced);
  EXPECT_EQ(rt.processes().status(out.alts[1].pid), ProcStatus::kFailed);
}

}  // namespace
}  // namespace mw
